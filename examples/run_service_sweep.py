#!/usr/bin/env python3
"""MPH as a service: a parameter sweep of coupled jobs through the
orchestrator.

A climate group rarely runs one coupled job; they run *sweeps* — the
same atmosphere/ocean layout over a grid of scenarios.  This example
drives such a sweep through :class:`repro.service.Orchestrator`:

* every scenario becomes one JSON **job document** (same components and
  processor map, different entry arguments);
* the orchestrator admits them all up front and runs them on a bounded
  worker pool;
* because the documents share a layout key, the handshake layout is
  resolved once and cached — and on the process backend the jobs after
  the first reuse a **resident worker world** (no new fork, bootstrap,
  or handshake);
* every outcome is staged as deterministic JSON under an output
  directory.

Run:  python examples/run_service_sweep.py
"""

import asyncio
import json
import tempfile
from pathlib import Path

from repro import components_setup

#: Scenario grid: (label, CO2 multiplier) — the sweep dimension.
SCENARIOS = [("control", 1.0), ("doubled", 2.0), ("quadrupled", 4.0)]


def model(comm, env):
    """One component of the coupled model (both components run this).

    The service convention: ``env.program`` is the component name from
    the job document, so one callable serves any component.
    """
    mph = components_setup(comm, env.program, env=env)
    co2 = float(env.argv[env.argv.index("--co2") + 1])

    # A toy "coupling": the atmosphere computes a forcing and sends it
    # to the ocean's matching local rank; the ocean responds with heat
    # uptake proportional to the forcing.
    if mph.comp_name() == "atmosphere":
        forcing = 3.7 * (co2 - 1.0) + mph.local_proc_id()
        mph.send(forcing, "ocean", mph.local_proc_id(), tag=1)
        uptake = mph.recv("ocean", mph.local_proc_id(), tag=2)
        return {"forcing": forcing, "uptake": uptake}
    forcing = mph.recv("atmosphere", mph.local_proc_id(), tag=1)
    uptake = round(0.9 * forcing, 6)
    mph.send(uptake, "atmosphere", mph.local_proc_id(), tag=2)
    return {"uptake": uptake}


PROGRAMS = {"model": model}


def make_document(label: str, co2: float, backend: str) -> dict:
    """One sweep point as a JSON job document."""
    return {
        "mph_job": 1,
        "name": f"sweep-{label}",
        "components": [
            {"name": "atmosphere", "nprocs": 2, "program": "model",
             "argv": ["--co2", str(co2)]},
            {"name": "ocean", "nprocs": 2, "program": "model",
             "argv": ["--co2", str(co2)]},
        ],
        "runtime": {"backend": backend},
        "output": {"save": ["values", "document"]},
    }


async def run_sweep(backend: str, output_dir: Path) -> None:
    from repro.service import Orchestrator

    async with Orchestrator(
        PROGRAMS, max_workers=2, output_dir=output_dir
    ) as orch:
        handles = [
            await orch.submit(make_document(label, co2, backend))
            for label, co2 in SCENARIOS
        ]
        for handle in handles:
            await handle.wait()
            assert handle.state == "done", (handle.state, handle.error)
            result = json.loads((handle.staged / "result.json").read_text())
            atm0 = result["components"]["atmosphere"][0]
            warm = " (resident world)" if handle.outcome.warm else ""
            print(
                f"  [{backend}] {result['name']:<16} forcing={atm0['forcing']:<5} "
                f"uptake={atm0['uptake']}{warm}"
            )
        stats = orch.runtime.stats
        print(
            f"  [{backend}] layout cache: {orch.runtime.layouts.hits} hits / "
            f"{orch.runtime.layouts.misses} miss; "
            f"worlds built: {stats['worlds_built']}"
        )


def main() -> None:
    out = Path(tempfile.mkdtemp(prefix="mph-service-sweep-"))
    print(f"sweep of {len(SCENARIOS)} scenarios, staged under {out}\n")
    print("thread backend (isolated world per job):")
    asyncio.run(run_sweep("thread", out / "thread"))
    print("\nprocess backend (resident world reused across the sweep):")
    asyncio.run(run_sweep("process", out / "process"))


if __name__ == "__main__":
    main()
