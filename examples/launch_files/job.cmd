! poe-style command file: one line per MPI task (paper section 6).
atmosphere
atmosphere
atmosphere
atmosphere
ocean
ocean
land
coupler
