"""Component programs for the command-line launch demo.

The paper's MPH distribution shipped "convenient MPH testing codes,
compile/run scripts on all major platforms" (§9); this directory is that
bundle for the simulator: a program module, a registration file
(``processors_map.in``) and a poe-style command file (``job.cmd``), wired
together by ``mphrun``:

    mphrun --cmdfile examples/launch_files/job.cmd \\
           --programs models \\
           --registry examples/launch_files/processors_map.in

(run from inside ``examples/launch_files``, or put it on PYTHONPATH).
Each program is an ordinary executable entry point: handshake, inquire,
exchange one message with the coupler, report.
"""

from repro import components_setup


def _component(name: str):
    def program(world, env):
        mph = components_setup(world, name, env=env)
        if mph.local_proc_id() == 0:
            mph.send(f"{name} checking in", "coupler", 0, tag=1)
            return mph.recv("coupler", 0, tag=2)
        return f"{name} worker {mph.local_proc_id()}"

    program.__name__ = name
    return program


def coupler(world, env):
    """Collects one check-in from every other component and replies."""
    mph = components_setup(world, "coupler", env=env)
    if mph.local_proc_id() != 0:
        return "coupler worker"
    seen = []
    for _ in range(mph.total_components() - 1):
        msg, sender, sender_rank = mph.recv_any(tag=1)
        seen.append(sender)
        mph.send(f"ack {sender}", sender, sender_rank, tag=2)
    return f"coupler saw {sorted(seen)}"


atmosphere = _component("atmosphere")
ocean = _component("ocean")
land = _component("land")

#: The registry ``mphrun --programs models`` resolves program names in.
PROGRAMS = {
    "atmosphere": atmosphere,
    "ocean": ocean,
    "land": land,
    "coupler": coupler,
}
