#!/usr/bin/env python3
"""Quickstart: the paper's Section 4.1 climate system, end to end.

Five single-component executables — atmosphere, ocean, land, ice, coupler —
are launched as one MPMD job (SCME mode).  Each calls
``components_setup`` with nothing but its own name-tag; MPH's handshake
does the rest: every executable discovers the others, gets its component
communicator, and can message any peer by ``(component name, local rank)``.

Run:  python examples/quickstart.py
"""

from repro import components_setup, mph_run

# The registration file of paper §4.1, verbatim: names only, order
# irrelevant, processor counts decided by the launch command below.
REGISTRY = """
BEGIN
atmosphere
ocean
land
ice
coupler
END
"""


def make_component(name: str):
    """Build the 'executable' for one component: a callable that will run
    on every one of its MPI processes."""

    def component(world, env):
        # The single MPH call of paper §4.1:
        #   atmosphere_World = MPH_components_setup(name1="atmosphere")
        mph = components_setup(world, name, env=env)
        comm = mph.component_comm()

        # Inquiry functions (paper §5.3).
        print(
            f"[{mph.comp_name()}] local {mph.local_proc_id()}/{comm.size}, "
            f"global {mph.global_proc_id()}, "
            f"{mph.total_components()} components in the application, "
            f"executable spans world ranks "
            f"{mph.exe_low_proc_limit()}..{mph.exe_up_proc_limit()}"
        )

        # Inter-component messaging (paper §5.2): every component's local
        # processor 0 reports to the coupler; the coupler answers.
        if name != "coupler" and mph.local_proc_id() == 0:
            mph.send(f"hello from {name}", "coupler", 0, tag=1)
            reply = mph.recv("coupler", 0, tag=2)
            return reply
        if name == "coupler" and mph.local_proc_id() == 0:
            for _ in range(mph.total_components() - 1):
                msg, sender, sender_rank = mph.recv_any(tag=1)
                print(f"[coupler] {msg!r} (from {sender} local {sender_rank})")
                mph.send(f"ack {sender}", sender, sender_rank, tag=2)
            return "coupler done"
        return None

    component.__name__ = name
    return component


def main() -> None:
    executables = [
        (make_component("atmosphere"), 4),
        (make_component("ocean"), 2),
        (make_component("land"), 2),
        (make_component("ice"), 1),
        (make_component("coupler"), 1),
    ]
    result = mph_run(executables, registry=REGISTRY)

    print("\nreplies received by component rank 0s:")
    for name in ("atmosphere", "ocean", "land", "ice"):
        print(f"  {name:<11} -> {result.by_executable(name)[0]!r}")


if __name__ == "__main__":
    main()
