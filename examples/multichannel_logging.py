#!/usr/bin/env python3
"""Multi-channel output redirection (paper §5.4).

Five components print freely; without redirection everything lands
interleaved on the launching terminal.  One ``MPH_redirect_output`` call
per process routes each component's local processor 0 to its own
``<component>.log`` while every other processor shares one combined file —
and log names can be overridden per component through environment
variables (``MPH_LOG_<NAME>``), "defined by run time environment variables
either in command line or in batch run script".

Run:  python examples/multichannel_logging.py
"""

import tempfile
from pathlib import Path

from repro import components_setup, mph_run

REGISTRY = """
BEGIN
atmosphere
ocean
coupler
END
"""


def make_component(name: str, nsteps: int = 3):
    def component(world, env):
        mph = components_setup(world, name, env=env)
        log_path = mph.redirect_output()
        for step in range(nsteps):
            # Ordinary prints — the component code does nothing special.
            print(f"{name} step {step}: local rank {mph.local_proc_id()} reporting")
        return str(log_path)

    component.__name__ = name
    return component


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="mph_logs_"))
    result = mph_run(
        [(make_component("atmosphere"), 2), (make_component("ocean"), 2), (make_component("coupler"), 1)],
        registry=REGISTRY,
        workdir=workdir,
        # Override one component's log name via environment variable.
        env_vars={"MPH_LOG_OCEAN": str(workdir / "ocean_custom.log")},
    )

    print(f"logs written under {workdir}:\n")
    for path in sorted(workdir.iterdir()):
        print(f"--- {path.name} ---")
        print(path.read_text().rstrip())
        print()

    print("per-process log targets:", result.values())


if __name__ == "__main__":
    main()
