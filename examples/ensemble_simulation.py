#!/usr/bin/env python3
"""Ensemble simulation with a multi-instance executable (paper §4.4).

The paper's first MIME scenario: "4 ocean ensembles are running
concurrently using multi-instance executable, while a single-component
executable is running simultaneously collecting statistics and controlling
the evolution of different ensembles."

Each instance gets its own parameters through the registration file's
argument fields (``albedo=...``), exactly the ``MPH_get_argument``
mechanism.  The statistics executable computes *nonlinear order
statistics* (median, percentiles, spread) on the fly each step — the thing
the paper says "cannot be done if the K runs are performed as independent
runs" — and dynamically halts the ensemble once the spread stabilises.

Run:  python examples/ensemble_simulation.py
"""

from dataclasses import replace

from repro import components_setup, mph_run, multi_instance
from repro.climate import LatLonGrid, OceanModel
from repro.core.ensemble import EnsembleCollector, EnsembleMember

K = 4
PROCS_PER_INSTANCE = 2
MAX_STEPS = 30
GRID = LatLonGrid(8, 16, name="ocean")
DT = 3600.0

# Four Ocean instances, each with a perturbed albedo and its own
# input/output names in the argument fields (paper §4.4 registry shape).
REGISTRY = f"""
BEGIN
Multi_Instance_Begin
Ocean1 0 1   in1.nc out1.nc albedo=0.08
Ocean2 2 3   in2.nc out2.nc albedo=0.10
Ocean3 4 5   in3.nc out3.nc albedo=0.12
Ocean4 6 7   in4.nc out4.nc albedo=0.14
Multi_Instance_End
statistics
END
"""


def ocean(world, env):
    """The single ocean executable, replicated as {K} instances."""
    mph = multi_instance(world, "Ocean", env=env)
    member = EnsembleMember(mph, "statistics")

    # Per-instance configuration through MPH_get_argument (paper §4.4).
    albedo = mph.get_argument("albedo", float)
    infile = mph.get_argument(field_num=1)
    params = replace(OceanModel.default_params(), albedo=albedo)
    model = OceanModel(mph.component_comm(), GRID, params)

    steps = 0
    while True:
        model.step(DT)
        steps += 1
        member.report(steps, model.temperature.data)
        control = member.receive_control()
        if control.get("stop"):
            break
    return {
        "instance": mph.comp_name(),
        "albedo": albedo,
        "infile": infile,
        "steps": steps,
        "final_mean_T": model.mean_temperature(),
    }


def statistics(world, env):
    """On-the-fly ensemble statistics and dynamic control."""
    import numpy as np

    mph = components_setup(world, "statistics", env=env)
    collector = EnsembleCollector.for_prefix(mph, "Ocean")

    history = []
    step = 0
    while True:
        step += 1
        stats = collector.collect(step)
        # Verification against a synthetic "analysis" field: rank histogram
        # and CRPS — per-step nonlinear verification scores, computable
        # only because all K fields coexist in memory.
        analysis = stats.mean + 0.001 * np.sin(np.arange(stats.mean.size)).reshape(stats.mean.shape)
        history.append(
            {
                "step": step,
                "mean": float(stats.mean.mean()),
                "median": float(stats.median.mean()),
                "p90": float(stats.percentile(90).mean()),
                "spread": stats.spread(),
                "crps": stats.crps(analysis),
                "rank_hist": stats.rank_histogram(analysis).tolist(),
            }
        )
        # Dynamic control (paper §2.5(b)): stop once the ensemble spread
        # stops growing, or at the step budget.
        grown = len(history) < 3 or history[-1]["spread"] > history[-2]["spread"] * 1.001
        stop = (not grown) or step >= MAX_STEPS
        collector.broadcast_same_control({"stop": stop})
        if stop:
            break
    return history


def main() -> None:
    result = mph_run(
        [(ocean, K * PROCS_PER_INSTANCE), (statistics, 1)], registry=REGISTRY
    )

    print("per-instance outcomes:")
    seen = set()
    for value in result.by_executable("ocean"):
        if value["instance"] in seen:
            continue
        seen.add(value["instance"])
        print(
            f"  {value['instance']}: albedo={value['albedo']:.2f} "
            f"infile={value['infile']} steps={value['steps']} "
            f"<T>={value['final_mean_T']:.3f} K"
        )

    history = result.by_executable("statistics")[0]
    print(f"\nensemble statistics ({len(history)} collection steps, zero files written):")
    for row in history[:3] + history[-2:]:
        print(
            f"  step {row['step']:>3}: mean {row['mean']:.4f}  median {row['median']:.4f}  "
            f"p90 {row['p90']:.4f}  spread {row['spread']:.5f}  crps {row['crps']:.5f}"
        )
    print(f"\nfinal-step rank histogram vs the analysis field: {history[-1]['rank_hist']}")
    print("nonlinear order statistics (median/p90/rank-histogram/CRPS) were computed")
    print("on the fly — impossible for K independent jobs without storing every field.")


if __name__ == "__main__":
    main()
