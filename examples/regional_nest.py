#!/usr/bin/env python3
"""Regional nesting: the WRF/MM5 coupling pattern over MPH (paper §7).

"MPH is adopted in NCAR's Weather Research and Forecast (WRF) model, the
new generation of the mesoscale model (MM5).  Many countries use MM5 for
their regional mid-range weather/climate forecast."

Two executables: a global atmosphere on a coarse grid, and a limited-area
nest covering a mid-latitude box at 3× resolution.  Each global step, the
parent field crosses to the nest by name-addressed MPH messaging; the
nest interpolates it conservatively onto its fine grid, relaxes its
boundary ring toward the frame (Davies nudging), and takes three fine
substeps per parent step — one-way nesting, exactly the operational
pattern.

Run:  python examples/regional_nest.py
"""

import numpy as np

from repro import components_setup, mph_run
from repro.climate import AtmosphereModel, LatLonGrid
from repro.climate.nesting import RegionSpec, RegionalGrid, RegionalModel

PARENT = LatLonGrid(16, 32, name="global")
SPEC = RegionSpec(row0=6, row1=11, col0=8, col1=16, refinement=3)
NSTEPS = 12
SUBSTEPS = 3
DT = 3600.0
FRAME_TAG = 61


def global_atm(world, env):
    mph = components_setup(world, "global_atm", env=env)
    params = AtmosphereModel.default_params()
    model = AtmosphereModel(mph.component_comm(), PARENT, params)
    # The toy global atmosphere absorbs shortwave here (standalone EBM).
    model.absorbed_solar = lambda: model._local_insolation()  # type: ignore[method-assign]
    for step in range(NSTEPS):
        model.step(DT)
        full = model.temperature.gather_global(root=0)
        if mph.local_proc_id() == 0:
            mph.send((step, full), "nest", 0, tag=FRAME_TAG)
    return model.mean_temperature()


def nest(world, env):
    mph = components_setup(world, "nest", env=env)
    comm = mph.component_comm()
    rgrid = RegionalGrid(PARENT, SPEC)
    model = RegionalModel(
        comm,
        rgrid,
        AtmosphereModel.default_params(),
        relax_width=3,
        relax_rate=0.4,
        t_init=lambda la, lo: np.full_like(la, 285.0),  # cold-started nest
    )
    history = []
    for step in range(NSTEPS):
        frame = None
        if comm.rank == 0:
            got_step, parent_full = mph.recv("global_atm", 0, tag=FRAME_TAG)
            assert got_step == step
            frame = rgrid.from_parent(parent_full)
        model.set_frame(frame)
        for _ in range(SUBSTEPS):
            model.step(DT / SUBSTEPS)
        history.append(model.mean_temperature())
    return history


def main() -> None:
    result = mph_run([(global_atm, 4), (nest, 2)], registry="BEGIN\nglobal_atm\nnest\nEND")
    parent_T = result.by_executable(0)[0]
    nest_T = result.by_executable(1)[0]
    rgrid = RegionalGrid(PARENT, SPEC)
    print(f"global grid {PARENT.nlat}x{PARENT.nlon}; nest {rgrid.nlat}x{rgrid.nlon} "
          f"({SPEC.refinement}x refinement) over rows {SPEC.row0}:{SPEC.row1}, "
          f"cols {SPEC.col0}:{SPEC.col1}")
    print(f"global <T> after {NSTEPS} steps: {parent_T:.3f} K")
    print("nest region <T> per parent step (cold start, pulled to the parent frame):")
    print("  " + "  ".join(f"{t:.2f}" for t in nest_T))
    assert nest_T[-1] > nest_T[0], "boundary forcing must warm the cold-started nest"
    print("one-way nesting: boundary frames flowed global -> nest over MPH messaging")


if __name__ == "__main__":
    main()
