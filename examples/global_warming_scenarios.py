#!/usr/bin/env python3
"""Global-warming scenarios: the paper's second MIME use case (§4.4).

"In a global warming scenario simulation, 3 instances of an atmospheric
model are running concurrently, each testing a different warming scenario
with different CO2 emission rates, but all couple to the same ocean
circulation model which feels the 'average' effects of the atmosphere."

Three atmosphere instances run with different greenhouse strengths (the
OLR coefficient ``A`` lowered per the CO2 field in the registration file);
one shared ocean receives the *average* air–sea flux of the three
scenarios and returns its SST to all of them.

Run:  python examples/global_warming_scenarios.py
"""

from dataclasses import replace

import numpy as np

from repro import components_setup, mph_run, multi_instance
from repro.climate import AtmosphereModel, LatLonGrid, OceanModel
from repro.climate.regrid import regrid

NSTEPS = 24
DT = 3600.0
ATM_GRID = LatLonGrid(8, 16, name="atm")
OCN_GRID = LatLonGrid(12, 24, name="ocn")
K_AIR_SEA = 20.0  # air–sea exchange coefficient [W m^-2 K^-1]

SST_TAG, FLUX_TAG = 501, 502

# Three scenarios: higher CO2 -> weaker OLR (smaller A), more warming.
REGISTRY = """
BEGIN
Multi_Instance_Begin
Scenario_low  0 0  co2=380
Scenario_mid  1 1  co2=560
Scenario_high 2 2  co2=840
Multi_Instance_End
ocean
END
"""


def atmosphere(world, env):
    """One warming scenario per instance; all coupled to the one ocean."""
    mph = multi_instance(world, "Scenario", env=env)
    co2 = mph.get_argument("co2", int)
    # Logarithmic greenhouse forcing: each CO2 doubling traps ~4 W/m^2.
    forcing = 4.0 * np.log2(co2 / 380.0)
    params = replace(
        AtmosphereModel.default_params(),
        solar_constant=1361.0,
        albedo=0.3,
        olr_a=225.0 - forcing,
    )

    def warm_start(lat, lon):
        return AtmosphereModel.default_initial_condition(lat, lon)

    model = AtmosphereModel(mph.component_comm(), ATM_GRID, params, t_init=warm_start)
    # Scenario atmospheres do absorb shortwave here (no separate surface).
    model.absorbed_solar = lambda: model._local_insolation()  # type: ignore[method-assign]

    for step in range(NSTEPS):
        # Receive the shared SST (broadcast by the ocean to every scenario).
        sst_on_atm = mph.recv("ocean", 0, SST_TAG)
        flux = K_AIR_SEA * (sst_on_atm - model.temperature.data)
        # Tell the ocean what this scenario drew from it.
        mph.send((mph.comp_name(), step, -flux), "ocean", 0, FLUX_TAG)
        model.step(DT, flux)
    return {
        "scenario": mph.comp_name(),
        "co2": co2,
        "forcing_wm2": forcing,
        "final_mean_T": model.mean_temperature(),
    }


def ocean(world, env):
    """The single ocean, feeling the average of the three scenarios."""
    mph = components_setup(world, "ocean", env=env)
    model = OceanModel(mph.component_comm(), OCN_GRID, OceanModel.default_params())
    scenarios = [c.name for c in mph.layout.components if c.name.startswith("Scenario")]

    mean_T = []
    for step in range(NSTEPS):
        sst_on_atm = regrid(model.temperature.data, OCN_GRID, ATM_GRID)
        for name in scenarios:
            mph.send(sst_on_atm, name, 0, SST_TAG)
        # Average the scenario fluxes — the ocean "feels the average
        # effects of the atmosphere" (paper §4.4).
        fluxes = []
        for name in scenarios:
            _, got_step, flux = mph.recv(name, 0, FLUX_TAG)
            assert got_step == step
            fluxes.append(flux)
        mean_flux_atm = np.mean(fluxes, axis=0)
        model.step(DT, regrid(mean_flux_atm, ATM_GRID, OCN_GRID))
        mean_T.append(model.mean_temperature())
    return {"ocean_mean_T": mean_T}


def main() -> None:
    result = mph_run([(atmosphere, 3), (ocean, 1)], registry=REGISTRY)

    print("scenario outcomes after", NSTEPS, "coupled steps:")
    rows = sorted(result.by_executable("atmosphere"), key=lambda r: r["co2"])
    for row in rows:
        print(
            f"  {row['scenario']:<14} CO2 {row['co2']:>4} ppm  "
            f"forcing {row['forcing_wm2']:+.2f} W/m^2  "
            f"<T> {row['final_mean_T']:.3f} K"
        )
    temps = [r["final_mean_T"] for r in rows]
    assert temps == sorted(temps), "warming must increase with CO2"
    print("\nmonotonic warming with CO2: yes")
    ocn = result.by_executable("ocean")[0]["ocean_mean_T"]
    print(f"shared ocean <T>: {ocn[0]:.3f} K -> {ocn[-1]:.3f} K (feels the scenario average)")


if __name__ == "__main__":
    main()
