#!/usr/bin/env python3
"""Model integration over the Grid (paper §9, future work (c)).

Two clusters — "nersc" running the ocean, "ncar" running the atmosphere —
each an independent MPI universe with its own ``COMM_WORLD`` and its own
intra-cluster MPH handshake, coupled across a simulated wide-area link
with 20 ms latency.  ``grid_setup`` exchanges the component directories
between sites; after that, components address each other by
``(cluster, component, local rank)``.

Run:  python examples/cross_site_coupling.py
"""

import numpy as np

from repro import components_setup
from repro.climate import AtmosphereModel, LatLonGrid, OceanModel
from repro.grid import ClusterSpec, run_grid

GRID = LatLonGrid(8, 16)
NSTEPS = 5
DT = 3600.0
K = 20.0  # air–sea exchange coefficient [W m^-2 K^-1]
SST_TAG, FLUX_TAG = 11, 12


def ocean(world, env):
    """Runs on cluster 'nersc'."""
    mph = components_setup(world, "ocean", env=env)
    from repro.grid import grid_setup

    gmph = grid_setup(mph, env.grid_cluster, env.grid_channel)
    model = OceanModel(mph.component_comm(), GRID, OceanModel.default_params())

    for step in range(NSTEPS):
        full = model.temperature.gather_global(root=0)
        flux = None
        if mph.local_proc_id() == 0:
            gmph.send((step, full), "ncar", "atmosphere", 0, tag=SST_TAG)
            (got_step, flux), src, _ = gmph.recv(tag=FLUX_TAG)
            assert got_step == step and src == "ncar"
        comm = mph.component_comm()
        flux = comm.bcast(flux, root=0)
        start, stop = model.temperature.rows_range
        model.step(DT, flux[start:stop])
    return model.mean_temperature()


def atmosphere(world, env):
    """Runs on cluster 'ncar'."""
    mph = components_setup(world, "atmosphere", env=env)
    from repro.grid import grid_setup

    gmph = grid_setup(mph, env.grid_cluster, env.grid_channel)
    model = AtmosphereModel(mph.component_comm(), GRID, AtmosphereModel.default_params())

    for step in range(NSTEPS):
        full_atm = model.temperature.gather_global(root=0)
        flux = None
        if mph.local_proc_id() == 0:
            (got_step, sst), src, _ = gmph.recv(tag=SST_TAG)
            assert got_step == step
            air_sea = K * (sst - full_atm)  # warms the atmosphere
            gmph.send((step, -air_sea), src, "ocean", 0, tag=FLUX_TAG)
            flux = air_sea
        comm = mph.component_comm()
        flux = comm.bcast(flux, root=0)
        start, stop = model.temperature.rows_range
        model.step(DT, flux[start:stop])
    return model.mean_temperature()


def main() -> None:
    results = run_grid(
        [
            ClusterSpec("nersc", [(ocean, 2)], registry="BEGIN\nocean\nEND"),
            ClusterSpec("ncar", [(atmosphere, 2)], registry="BEGIN\natmosphere\nEND"),
        ],
        latency=0.02,  # 20 ms wide-area one-way latency
    )
    print(f"after {NSTEPS} cross-site coupled steps (20 ms WAN latency):")
    print(f"  ocean      <T> = {results['nersc'].values()[0]:.3f} K  (cluster nersc)")
    print(f"  atmosphere <T> = {results['ncar'].values()[0]:.3f} K  (cluster ncar)")
    print("each cluster kept its own COMM_WORLD; only the coupling fields crossed the WAN")


if __name__ == "__main__":
    main()
