#!/usr/bin/env python3
"""PCM-style master program: MCSE mode, paper §4.2 verbatim.

One executable contains every component as a subroutine; a master program
dispatches each processor to its component with ``PROC_in_component``.
The paper's example — 3 components on 36 processors::

    BEGIN
    Multi_Component_Begin
    atmosphere 0 15
    ocean 16 31
    coupler 32 35
    Multi_Component_End
    END

"Note that subroutine names do not have to be the same as the
corresponding name-tags.  We use '_xyz', '_abc' etc to emphasize this
fact."

Run:  python examples/pcm_style_single_executable.py
"""

from repro import components_setup, mph_run
from repro.mpi import MAX

REGISTRY = """
BEGIN
Multi_Component_Begin
atmosphere 0 15
ocean 16 31
coupler 32 35
Multi_Component_End
END
"""


def ocean_xyz(comm, mph):
    """The 'ocean' subroutine (name deliberately different from the tag)."""
    total = comm.allreduce(1)
    return f"ocean_xyz on {total} procs, I am local {comm.rank}"


def atmosphere(comm, mph):
    """The 'atmosphere' subroutine."""
    peak = comm.allreduce(comm.rank, op=MAX)
    return f"atmosphere local {comm.rank}, highest local rank {peak}"


def coupler_abc(comm, mph):
    """The 'coupler' subroutine: pings ocean's local processor 0."""
    if comm.rank == 0:
        mph.send("coupler ping", "ocean", 0, tag=9)
    return f"coupler_abc local {comm.rank}"


def master(world, env):
    """The master program of paper §4.2: one setup call naming all three
    components, then PROC_in_component dispatch."""
    mph = components_setup(world, "atmosphere", "ocean", "coupler", env=env)

    result = None
    comm = mph.proc_in_component("ocean")
    if comm is not None:
        if comm.rank == 0:
            # Prove inter-component messaging works inside one executable.
            ping = mph.recv("coupler", 0, tag=9)
            result = ocean_xyz(comm, mph) + f" ({ping!r})"
        else:
            result = ocean_xyz(comm, mph)
    comm = mph.proc_in_component("atmosphere")
    if comm is not None:
        result = atmosphere(comm, mph)
    comm = mph.proc_in_component("coupler")
    if comm is not None:
        result = coupler_abc(comm, mph)
    return result


def main() -> None:
    result = mph_run([(master, 36)], registry=REGISTRY)
    values = result.values()
    print("world rank  0 (atmosphere local 0):", values[0])
    print("world rank 16 (ocean local 0):     ", values[16])
    print("world rank 31 (ocean local 15):    ", values[31])
    print("world rank 32 (coupler local 0):   ", values[32])


if __name__ == "__main__":
    main()
