#!/usr/bin/env python3
"""The full toy CCSM under every MPH execution mode.

Runs the coupled atmosphere/ocean/land/sea-ice system (paper §7) in SCME,
MCSE, MCME and overlapping-MCME modes, prints the evolution of the global
mean temperatures, audits the energy books, and verifies that **every mode
produces bitwise-identical physics** — the unified-interface promise of
the paper's Section 3.

Run:  python examples/coupled_climate.py
"""

import numpy as np

from repro.climate import CCSMConfig, energy_report, run_ccsm

MODES = ("scme", "mcse", "mcme", "mcme_overlap")


def main() -> None:
    cfg = CCSMConfig(nsteps=12)
    # Full overlap requires land and atmosphere on the same processor set
    # (the §4.3 registry overlaps them completely).
    overlap_procs = dict(cfg.procs, land=cfg.procs["atmosphere"])
    reference = None

    for mode in MODES:
        mode_cfg = CCSMConfig(nsteps=12, procs=overlap_procs) if mode == "mcme_overlap" else cfg
        diags = run_ccsm(mode, mode_cfg)
        print(f"\n=== mode {mode} ===")
        for kind in ("atmosphere", "ocean", "land", "ice"):
            series = diags[kind]["mean_T"]
            print(
                f"  {kind:<11} <T> {series[0]:8.3f} K -> {series[-1]:8.3f} K "
                f"({diags[kind]['size']} procs)"
            )
        if "mean_thickness" in diags["ice"]:
            h = diags["ice"]["mean_thickness"]
            print(f"  {'ice h':<11} {h[0]:8.4f} m -> {h[-1]:8.4f} m")
        report = energy_report(diags)
        print(
            f"  energy audit: coupler imbalance {report.coupler_residual:.3e}, "
            f"unexplained drift {report.relative_unexplained():.3e} (relative)"
        )

        final = {k: diags[k]["final_field"] for k in ("atmosphere", "ocean", "land", "ice")}
        if reference is None:
            reference = final
            continue
        for kind, field in final.items():
            if not np.array_equal(field, reference[kind]):
                raise SystemExit(f"mode {mode}: {kind} differs from the scme reference!")
        print("  physics identical to the scme reference: yes (bitwise)")

    # The same system, exchanging through MPH_comm_join collectives (§5.1)
    # instead of name-addressed point-to-point messages (§5.2).
    join_cfg = CCSMConfig(nsteps=12, exchange="join")
    join_diags = run_ccsm("scme", join_cfg)
    assert reference is not None
    ok = all(
        np.array_equal(join_diags[k]["final_field"], reference[k])
        for k in ("atmosphere", "ocean", "land", "ice")
    )
    print(f"\ncomm_join-based exchange matches p2p exchange bitwise: {ok}")


if __name__ == "__main__":
    main()
