"""Legacy setup shim for environments without the `wheel` package.

The project is fully described in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation`` (legacy editable install) on
offline machines whose setuptools cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
