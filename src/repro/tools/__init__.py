"""Command-line tools.

* :mod:`repro.tools.mphrun` — the ``mphrun`` MPMD launcher front-end;
* :mod:`repro.tools.registry_lint` — ``mph-registry``, offline
  registration-file validation and layout preview;
* :mod:`repro.tools.apidoc` — the API-reference generator.

Modules are not imported here so ``python -m repro.tools.<tool>`` runs
without double-import warnings; import the tool module you need.
"""

__all__: list[str] = []
