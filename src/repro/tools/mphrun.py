"""``mphrun`` — launch a multi-executable MPH job from the command line.

The front-end the paper's platforms provide as ``poe -pgmmodel mpmd
-cmdfile ...`` or ``mpirun -np 16 atm : -np 8 ocn``, for this simulator::

    mphrun --registry processors_map.in --programs my_models \\
           --spec "-np 4 atmosphere : -np 2 ocean : -np 1 coupler"

    mphrun --registry processors_map.in --programs my_models:PROGRAMS \\
           --cmdfile job.cmd --rank-policy round_robin

``--programs`` names an importable module; program names from the launch
spec are resolved against its ``PROGRAMS`` dict (or a different attribute
given after ``:``).  Each program is a callable ``fn(world, env)``.

Exit status: 0 on success, 1 on any failure (parse error, missing program,
component handshake failure, rank exception, deadlock) with the diagnosis
on stderr.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.launcher.cmdfile import parse_mpirun_spec, parse_poe_cmdfile
from repro.launcher.job import MpmdJob
from repro.launcher.smp import Machine


def build_parser() -> argparse.ArgumentParser:
    """The ``mphrun`` argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="mphrun",
        description="Launch a multi-component multi-executable MPH job.",
    )
    launch = parser.add_mutually_exclusive_group(required=True)
    launch.add_argument(
        "--cmdfile",
        type=Path,
        help="poe-style command file: one line per MPI task naming its program",
    )
    launch.add_argument(
        "--spec",
        help="mpirun-style MPMD spec: '-np 4 atm : -np 2 ocn'",
    )
    parser.add_argument(
        "--programs",
        required=True,
        help="importable module providing the program registry; "
        "'pkg.module' (uses its PROGRAMS dict) or 'pkg.module:ATTR'",
    )
    parser.add_argument(
        "--registry",
        type=Path,
        help="the MPH registration file (processors_map.in)",
    )
    parser.add_argument(
        "--rank-policy",
        choices=("block", "round_robin"),
        default="block",
        help="global-rank assignment policy (default: block)",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=0,
        help="validate placement on an SMP machine with this many nodes",
    )
    parser.add_argument(
        "--cpus-per-node",
        type=int,
        default=16,
        help="CPUs per SMP node when --nodes is given (default: 16)",
    )
    parser.add_argument(
        "--workdir",
        type=Path,
        help="directory for component log files",
    )
    parser.add_argument(
        "--env",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="job environment variable (repeatable), e.g. MPH_LOG_OCEAN=o.log",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="wall-clock budget in seconds (default: 300)",
    )
    parser.add_argument(
        "--show-assignment",
        action="store_true",
        help="print the planned executable -> world-rank assignment before running",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-executable summary"
    )
    return parser


def _load_programs(spec: str):
    module_name, _, attr = spec.partition(":")
    attr = attr or "PROGRAMS"
    module = importlib.import_module(module_name)
    try:
        programs = getattr(module, attr)
    except AttributeError:
        raise ReproError(
            f"module {module_name!r} has no attribute {attr!r}; expose a dict of "
            "program-name -> callable"
        ) from None
    if not isinstance(programs, dict):
        raise ReproError(f"{module_name}:{attr} must be a dict, got {type(programs).__name__}")
    return programs


def _parse_env(pairs: Sequence[str]) -> dict[str, str]:
    out: dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ReproError(f"--env expects KEY=VALUE, got {pair!r}")
        out[key] = value
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.cmdfile is not None:
            specs = parse_poe_cmdfile(args.cmdfile.read_text())
        else:
            specs = parse_mpirun_spec(args.spec)
        programs = _load_programs(args.programs)
        machine = (
            Machine.homogeneous(args.nodes, args.cpus_per_node) if args.nodes else None
        )
        job = MpmdJob(
            specs,
            programs=programs,
            rank_policy=args.rank_policy,
            machine=machine,
            env_vars=_parse_env(args.env),
            workdir=args.workdir,
            registry=args.registry,
        )
        if args.show_assignment:
            from repro.launcher.rankmap import assign_ranks

            assignment = assign_ranks([s.nprocs for s in job.specs], args.rank_policy)
            print(f"planned assignment ({args.rank_policy}):")
            for i, spec in enumerate(job.specs):
                ranks = assignment[i]
                print(f"  [{i}] {spec.program:<16} world ranks {ranks[0]}..{ranks[-1]}"
                      if ranks == list(range(ranks[0], ranks[-1] + 1))
                      else f"  [{i}] {spec.program:<16} world ranks {ranks}")
        result = job.run(timeout=args.timeout)
    except ReproError as exc:
        print(f"mphrun: error: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:  # noqa: BLE001 - rank exceptions surface here
        print(f"mphrun: job failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    if not args.quiet:
        total = sum(s.nprocs for s in result.specs)
        print(f"mphrun: job completed on {total} processes, "
              f"{len(result.specs)} executables ({args.rank_policy} ranks)")
        for i, spec in enumerate(result.specs):
            values = result.by_executable(i)
            shown = values[0] if values else None
            print(f"  [{i}] {spec.program:<16} x{spec.nprocs:<3} "
                  f"ranks {result.assignment[i][0]}..{result.assignment[i][-1]} "
                  f"-> {shown!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
