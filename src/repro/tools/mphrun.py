"""``mphrun`` — launch a multi-executable MPH job from the command line.

The front-end the paper's platforms provide as ``poe -pgmmodel mpmd
-cmdfile ...`` or ``mpirun -np 16 atm : -np 8 ocn``, for this simulator::

    mphrun --registry processors_map.in --programs my_models \\
           --spec "-np 4 atmosphere : -np 2 ocean : -np 1 coupler"

    mphrun --registry processors_map.in --programs my_models:PROGRAMS \\
           --cmdfile job.cmd --rank-policy round_robin

``--programs`` names an importable module; program names from the launch
spec are resolved against its ``PROGRAMS`` dict (or a different attribute
given after ``:``).  Each program is a callable ``fn(world, env)``.

Exit status: 0 on success, 1 on any failure (parse error, missing program,
component handshake failure, rank exception, deadlock) with the diagnosis
on stderr.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.launcher.cmdfile import ExecutableSpec, parse_mpirun_spec, parse_poe_cmdfile
from repro.launcher.job import POOL_PROGRAM, MpmdJob, reserve_pool_program
from repro.launcher.smp import Machine


def build_parser() -> argparse.ArgumentParser:
    """The ``mphrun`` argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="mphrun",
        description="Launch a multi-component multi-executable MPH job.",
    )
    launch = parser.add_mutually_exclusive_group(required=True)
    launch.add_argument(
        "--cmdfile",
        type=Path,
        help="poe-style command file: one line per MPI task naming its program",
    )
    launch.add_argument(
        "--spec",
        help="mpirun-style MPMD spec: '-np 4 atm : -np 2 ocn'",
    )
    parser.add_argument(
        "--programs",
        required=True,
        help="importable module providing the program registry; "
        "'pkg.module' (uses its PROGRAMS dict) or 'pkg.module:ATTR'",
    )
    parser.add_argument(
        "--registry",
        type=Path,
        help="the MPH registration file (processors_map.in)",
    )
    parser.add_argument(
        "--pool",
        type=int,
        default=0,
        metavar="N",
        help="launch N reserve-pool processes alongside the job; each "
        "parks in await_assignment until a component grow() admits it "
        "or release_pool() dismisses it (requires --registry)",
    )
    parser.add_argument(
        "--rank-policy",
        choices=("block", "round_robin"),
        default="block",
        help="global-rank assignment policy (default: block)",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=0,
        help="validate placement on an SMP machine with this many nodes",
    )
    parser.add_argument(
        "--cpus-per-node",
        type=int,
        default=16,
        help="CPUs per SMP node when --nodes is given (default: 16)",
    )
    parser.add_argument(
        "--workdir",
        type=Path,
        help="directory for component log files",
    )
    parser.add_argument(
        "--env",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="job environment variable (repeatable), e.g. MPH_LOG_OCEAN=o.log",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="wall-clock budget in seconds (default: 300)",
    )
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="execution backend: 'thread' simulates ranks as threads of "
        "this process; 'process' execs every rank as its own "
        "'python -m repro.tools.mphchild' over the socket transport "
        "(true multi-executable, as on the paper's platforms)",
    )
    parser.add_argument(
        "--transport",
        choices=("auto", "unix", "tcp", "shm"),
        default="auto",
        help="process backend: wire between ranks — 'shm' uses mmap "
        "rings and zero-copy pages for same-node pairs with sockets "
        "across nodes, 'auto' picks shm per pair where available "
        "(default: auto)",
    )
    parser.add_argument(
        "--log-dir",
        type=Path,
        help="process backend: directory for per-process stdout logs "
        "(<program>.<local_index>.log)",
    )
    parser.add_argument(
        "--show-assignment",
        action="store_true",
        help="print the planned executable -> world-rank assignment before running",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-executable summary"
    )
    return parser


def _load_programs(spec: str):
    module_name, _, attr = spec.partition(":")
    attr = attr or "PROGRAMS"
    module = importlib.import_module(module_name)
    try:
        programs = getattr(module, attr)
    except AttributeError:
        raise ReproError(
            f"module {module_name!r} has no attribute {attr!r}; expose a dict of "
            "program-name -> callable"
        ) from None
    if not isinstance(programs, dict):
        raise ReproError(f"{module_name}:{attr} must be a dict, got {type(programs).__name__}")
    return programs


def _parse_env(pairs: Sequence[str]) -> dict[str, str]:
    out: dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ReproError(f"--env expects KEY=VALUE, got {pair!r}")
        out[key] = value
    return out


def _run_exec_backend(specs, args) -> "JobResult":
    """Run the job with every rank ``exec``'d as its own executable.

    Builds the same assignment an :class:`MpmdJob` would, then hands the
    per-rank program metadata to
    :func:`repro.mpi.procbackend.run_exec_job`; each child resolves its
    program itself (see :mod:`repro.tools.mphchild`) — the parent ships
    names, never code.
    """
    from repro.launcher.job import JobResult
    from repro.launcher.rankmap import assign_ranks
    from repro.mpi.procbackend import run_exec_job
    from repro.mpi.world import WorldConfig

    sizes = [s.nprocs for s in specs]
    assignment = assign_ranks(sizes, args.rank_policy)
    machine = Machine.homogeneous(args.nodes, args.cpus_per_node) if args.nodes else None
    placement = machine.place(sizes, assignment) if machine else None

    env_vars = _parse_env(args.env)
    world_size = sum(sizes)
    metas: list[dict] = [None] * world_size  # type: ignore[list-item]
    labels: list[str] = [""] * world_size
    for exe_index, ranks in enumerate(assignment):
        spec = specs[exe_index]
        for local_index, world_rank in enumerate(ranks):
            labels[world_rank] = f"{spec.program}.{local_index}"
            metas[world_rank] = {
                "programs": args.programs,
                "program": spec.program,
                "exe_index": exe_index,
                "local_index": local_index,
                "argv": tuple(spec.argv),
                "vars": env_vars,
                "workdir": str(args.workdir) if args.workdir else None,
                "registry": str(args.registry) if args.registry else None,
            }
            if spec.program == POOL_PROGRAM:
                # The child resolves this rank to the built-in reserve
                # program instead of looking --programs up by name.
                metas[world_rank]["pool"] = True
    # --nodes doubles as the transport topology: the same SMP node
    # count that validates placement also scopes which rank pairs the
    # shm/auto transports treat as same-node (rings) vs cross-node
    # (sockets), and where hierarchical collectives draw their levels.
    config = WorldConfig(
        backend="process",
        transport=args.transport,
        nodes=args.nodes or None,
    )
    procs = run_exec_job(
        world_size,
        metas,
        config=config,
        timeout=args.timeout,
        log_dir=str(args.log_dir) if args.log_dir else None,
        labels=labels,
    )
    return JobResult(
        procs=procs, specs=list(specs), assignment=assignment, placement=placement
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.cmdfile is not None:
            specs = parse_poe_cmdfile(args.cmdfile.read_text())
        else:
            specs = parse_mpirun_spec(args.spec)
        if args.pool < 0:
            raise ReproError(f"--pool expects a non-negative count, got {args.pool}")
        if args.pool:
            if args.registry is None:
                raise ReproError(
                    "--pool needs --registry: reserve processes join the "
                    "MPH init exchange before parking"
                )
            if any(s.program == POOL_PROGRAM for s in specs):
                raise ReproError(
                    f"program name {POOL_PROGRAM!r} is reserved for --pool ranks"
                )
            specs = list(specs) + [ExecutableSpec(POOL_PROGRAM, args.pool)]
        if args.show_assignment:
            from repro.launcher.rankmap import assign_ranks

            assignment = assign_ranks([s.nprocs for s in specs], args.rank_policy)
            print(f"planned assignment ({args.rank_policy}):")
            for i, spec in enumerate(specs):
                ranks = assignment[i]
                print(f"  [{i}] {spec.program:<16} world ranks {ranks[0]}..{ranks[-1]}"
                      if ranks == list(range(ranks[0], ranks[-1] + 1))
                      else f"  [{i}] {spec.program:<16} world ranks {ranks}")
        if args.backend == "process":
            # Resolve the program module in the parent too, so a typo'd
            # --programs fails fast here instead of in every child.
            _load_programs(args.programs)
            result = _run_exec_backend(specs, args)
        else:
            programs = _load_programs(args.programs)
            if args.pool:
                programs = {**programs, POOL_PROGRAM: reserve_pool_program}
            machine = (
                Machine.homogeneous(args.nodes, args.cpus_per_node)
                if args.nodes
                else None
            )
            job = MpmdJob(
                specs,
                programs=programs,
                rank_policy=args.rank_policy,
                machine=machine,
                env_vars=_parse_env(args.env),
                workdir=args.workdir,
                registry=args.registry,
            )
            result = job.run(timeout=args.timeout)
    except ReproError as exc:
        print(f"mphrun: error: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:  # noqa: BLE001 - rank exceptions surface here
        print(f"mphrun: job failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    # A job can "complete" with per-rank failures that did not abort the
    # world (e.g. a component dead by survivable fail-stop crash).  That
    # must not masquerade as success: name every failed component and
    # fail the whole job.
    failed = result.failures()
    if failed:
        for rank, program, exc in failed:
            print(
                f"mphrun: component {program!r} (world rank {rank}) failed: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
        return 1

    if not args.quiet:
        total = sum(s.nprocs for s in result.specs)
        print(f"mphrun: job completed on {total} processes, "
              f"{len(result.specs)} executables ({args.rank_policy} ranks)")
        for i, spec in enumerate(result.specs):
            values = result.by_executable(i)
            shown = values[0] if values else None
            print(f"  [{i}] {spec.program:<16} x{spec.nprocs:<3} "
                  f"ranks {result.assignment[i][0]}..{result.assignment[i][-1]} "
                  f"-> {shown!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
