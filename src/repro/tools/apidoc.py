"""API-reference generator: ``python -m repro.tools.apidoc > docs/api.md``.

Walks the public surface (everything exported through each subpackage's
``__all__``) and emits a markdown reference from the docstrings' first
paragraphs — kept in-repo so the reference regenerates from the code and
can never drift silently.
"""

from __future__ import annotations

import importlib
import inspect
import sys
from typing import Iterable

#: Subpackages documented, in reading order.
PACKAGES = [
    "repro",
    "repro.mpi",
    "repro.launcher",
    "repro.service",
    "repro.core",
    "repro.grid",
    "repro.coupling",
    "repro.climate",
    "repro.baselines",
    "repro.tools",
]


def first_paragraph(obj) -> str:
    """The first docstring paragraph, flattened to one line."""
    doc = inspect.getdoc(obj) or ""
    para = doc.split("\n\n", 1)[0]
    return " ".join(para.split())


def signature_of(obj) -> str:
    """A display signature for callables (empty for classes that hide
    their constructor and for non-callables)."""
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""


def public_members(module) -> Iterable[tuple[str, object]]:
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        yield name, getattr(module, name)


def render_module(name: str) -> str:
    module = importlib.import_module(name)
    lines = [f"## `{name}`", "", first_paragraph(module), ""]
    classes, functions, constants = [], [], []
    for member_name, obj in public_members(module):
        if inspect.isclass(obj):
            classes.append((member_name, obj))
        elif inspect.isroutine(obj):
            functions.append((member_name, obj))
        elif not inspect.ismodule(obj):
            constants.append((member_name, obj))

    if classes:
        lines.append("### Classes")
        lines.append("")
        for member_name, obj in classes:
            lines.append(f"* **`{member_name}`** — {first_paragraph(obj)}")
            methods = [
                (m_name, m)
                for m_name, m in inspect.getmembers(obj, inspect.isfunction)
                if not m_name.startswith("_") and m.__qualname__.startswith(obj.__name__)
            ]
            for m_name, m in methods:
                summary = first_paragraph(m)
                if summary:
                    lines.append(f"    * `.{m_name}{signature_of(m)}` — {summary}")
        lines.append("")
    if functions:
        lines.append("### Functions")
        lines.append("")
        for member_name, obj in functions:
            lines.append(f"* **`{member_name}{signature_of(obj)}`** — {first_paragraph(obj)}")
        lines.append("")
    if constants:
        lines.append("### Constants")
        lines.append("")
        for member_name, obj in constants:
            rep = repr(obj)
            if len(rep) > 60:
                rep = type(obj).__name__
            lines.append(f"* **`{member_name}`** = `{rep}`")
        lines.append("")
    return "\n".join(lines)


def render() -> str:
    """The full API reference as markdown."""
    parts = [
        "# API reference",
        "",
        "Generated from docstrings by `python -m repro.tools.apidoc`;",
        "regenerate after changing any public surface.",
        "",
    ]
    for name in PACKAGES:
        parts.append(render_module(name))
    return "\n".join(parts) + "\n"


def main() -> int:
    """Entry point: write the reference to stdout."""
    sys.stdout.write(render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
