"""``mph-registry`` — validate and explain a registration file.

The registration file is the one input a user hand-edits, so a fast
offline checker saves whole failed job submissions::

    mph-registry processors_map.in
    mph-registry processors_map.in --sizes 20,32,1   # check a launch plan

Without ``--sizes`` the file is parsed and validated and its structure
printed.  With per-executable process counts (command-file order), the
full launch is simulated *offline*: sizes are checked against the
registered ranges and the resolved layout — the same table
``Layout.describe()`` prints inside a running job — is shown.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.layout import ExecutableInfo, Layout
from repro.core.names import RESERVED_PSET_NAMES
from repro.core.registry import (
    MultiComponentEntry,
    MultiInstanceEntry,
    Registry,
    SingleComponentEntry,
)
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    """The ``mph-registry`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="mph-registry",
        description="Validate an MPH registration file and preview its layout.",
    )
    parser.add_argument("registry", type=Path, help="the processors_map.in file")
    parser.add_argument(
        "--sizes",
        help="comma-separated process count per executable (registry entry order) "
        "to simulate the launch and print the resolved layout",
    )
    parser.add_argument(
        "--rank-policy",
        choices=("block", "round_robin"),
        default="block",
        help="rank-assignment policy for the simulated layout (default: block)",
    )
    return parser


def plan_layout(registry: Registry, sizes: Sequence[int], rank_policy: str = "block") -> Layout:
    """Resolve the layout a launch with these per-entry sizes would get.

    Performs the same validation the runtime handshake does (size vs
    registered ranges), without running anything.
    """
    from repro.launcher.rankmap import assign_ranks

    if len(sizes) != len(registry.entries):
        raise ReproError(
            f"registry has {len(registry.entries)} executables; got {len(sizes)} sizes"
        )
    for entry, size in zip(registry.entries, sizes):
        if isinstance(entry, (MultiComponentEntry, MultiInstanceEntry)):
            if entry.nprocs != size:
                raise ReproError(
                    f"executable {entry.component_names} registers local processors "
                    f"0..{entry.nprocs - 1} ({entry.nprocs}) but the plan gives it {size}"
                )
        elif size < 1:
            raise ReproError(f"executable {entry.component_names} needs >= 1 process")
    assignment = assign_ranks(list(sizes), rank_policy)
    exes = [
        ExecutableInfo(
            exe_id=i,
            entry_index=i,
            kind=entry.kind,
            world_ranks=tuple(assignment[i]),
            component_names=entry.component_names,
            has_overlap=isinstance(entry, MultiComponentEntry) and entry.has_overlap,
        )
        for i, entry in enumerate(registry.entries)
    ]
    return Layout(registry, exes)


def lint_reserved_names(registry: Registry) -> list[str]:
    """Component names that collide with reserved ``mph://`` pset names.

    The sessions layer names every component's process set
    ``mph://component/<name>`` and accepts shorthand lookups
    (``session.pset("world")``).  A component literally named ``world``
    (or ``pool``, ``self``, ...) would be shadowed by the built-in pset
    of the same name, so the registry checker rejects it before a job
    ever launches.  Returns one message per violation.
    """
    problems = []
    for entry in registry.entries:
        for name in entry.component_names:
            if name in RESERVED_PSET_NAMES:
                problems.append(
                    f"component name {name!r} collides with the reserved "
                    f"mph:// process-set name mph://{name}; rename it "
                    "(session.pset() shorthand would always resolve to the "
                    "built-in pset instead of the component)"
                )
    return problems


def describe_registry(registry: Registry) -> str:
    """A structural summary of a parsed registration file."""
    lines = [
        f"{len(registry.entries)} executables, {registry.total_components} components"
    ]
    for i, entry in enumerate(registry.entries):
        if isinstance(entry, SingleComponentEntry):
            spec = entry.component
            extra = f"  fields: {' '.join(spec.fields)}" if spec.fields else ""
            lines.append(f"  [{i}] single-component: {spec.name} (size from launcher){extra}")
        elif isinstance(entry, MultiComponentEntry):
            overlap = " (overlapping)" if entry.has_overlap else ""
            lines.append(
                f"  [{i}] multi-component on {entry.nprocs} procs{overlap}:"
            )
            for spec in entry.components:
                lines.append(f"        {spec.name} locals {spec.low}..{spec.high}")
            idle = entry.uncovered_indices()
            if idle:
                lines.append(f"        warning: local processors {idle} run no component")
        else:
            lines.append(f"  [{i}] multi-instance on {entry.nprocs} procs:")
            for spec in entry.instances:
                fields = f"  {' '.join(spec.fields)}" if spec.fields else ""
                lines.append(f"        {spec.name} locals {spec.low}..{spec.high}{fields}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    try:
        registry = Registry.from_file(args.registry)
    except (ReproError, OSError) as exc:
        print(f"mph-registry: INVALID: {exc}", file=sys.stderr)
        return 1
    problems = lint_reserved_names(registry)
    if problems:
        for problem in problems:
            print(f"mph-registry: INVALID: {problem}", file=sys.stderr)
        return 1
    print(f"{args.registry}: OK")
    print(describe_registry(registry))
    if args.sizes:
        try:
            sizes = [int(s) for s in args.sizes.split(",")]
            layout = plan_layout(registry, sizes, args.rank_policy)
        except (ReproError, ValueError) as exc:
            print(f"mph-registry: launch plan invalid: {exc}", file=sys.stderr)
            return 1
        print(f"\nsimulated launch ({args.rank_policy}, {sum(sizes)} processes):")
        print(layout.describe())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
