"""``mphchild`` — the exec-mode rank of a process-backend MPH job.

``mphrun --backend process`` spawns one of these per world rank::

    python -m repro.tools.mphchild --rendezvous unix:/tmp/.../rendezvous.sock \\
           --rank 3 --family unix --sockdir /tmp/...

This is the paper's MIME property made real: every rank is an
independently ``exec``'d executable that knows *nothing* at startup
except where the rendezvous is and which rank it plays.  Everything else
— world size, the peer address map, the
:class:`~repro.mpi.world.WorldConfig`, and *what program to run* — comes
down the control socket in the welcome frame's per-rank ``meta`` dict:

``programs``
    Importable module spec (``pkg.module`` or ``pkg.module:ATTR``)
    resolved exactly like ``mphrun --programs``.
``program``
    Program name to look up in that registry.
``exe_index`` / ``local_index`` / ``argv`` / ``vars`` / ``workdir`` /
``registry``
    The :class:`~repro.launcher.job.JobEnv` fields, as in the thread
    backend — except ``output`` is a real
    :class:`~repro.core.redirect.ProcessOutput` (fd-level §5.4
    redirection), because this process owns its stdout.

The child's stdout/stderr are whatever ``mphrun`` wired up (a per-process
log file under ``--log-dir``); its exit status is 0 whenever the
bootstrap succeeded — a failing *program* is reported in-band through
the result frame, while a failed bootstrap exits nonzero so the parent
can name the dead component.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.redirect import ProcessOutput
from repro.launcher.job import JobEnv
from repro.mpi.procbackend import _parse_addr, child_session


def _resolve(meta: dict):
    """Build the rank entry point from the welcome metadata."""
    from repro.tools.mphrun import _load_programs

    name = meta["program"]
    if meta.get("pool"):
        # --pool reserve rank: runs the built-in parking program, never a
        # registry lookup (POOL_PROGRAM is not a user program name).
        from repro.launcher.job import reserve_pool_program as fn
    else:
        programs = _load_programs(meta["programs"])
        if name not in programs:
            raise KeyError(
                f"program {name!r} not found in {meta['programs']!r} "
                f"(has: {sorted(programs)})"
            )
        fn = programs[name]
    workdir = meta.get("workdir")
    env = JobEnv(
        program=name,
        exe_index=meta["exe_index"],
        local_index=meta["local_index"],
        argv=tuple(meta.get("argv", ())),
        vars=dict(meta.get("vars", {})),
        workdir=Path(workdir) if workdir else None,
        registry=meta.get("registry"),
        output=ProcessOutput(),
    )
    return fn, env


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(prog="mphchild")
    parser.add_argument("--rendezvous", required=True)
    parser.add_argument("--rank", type=int, required=True)
    parser.add_argument("--family", choices=("unix", "tcp"), default="unix")
    parser.add_argument("--sockdir", required=True)
    parser.add_argument(
        "--nprocs",
        type=int,
        default=None,
        help="world size (needed by the tree bootstrap to shape the relay tree)",
    )
    parser.add_argument(
        "--bootstrap",
        choices=("tree", "flat"),
        default="flat",
        help="address-exchange scheme, as resolved by the parent",
    )
    parser.add_argument(
        "--fanout", type=int, default=8, help="arity of the bootstrap relay tree"
    )
    args = parser.parse_args(argv)

    def run(comm, meta):
        fn, env = _resolve(meta)
        return fn(comm, env)

    child_session(
        _parse_addr(args.rendezvous),
        args.rank,
        args.family,
        args.sockdir,
        run,
        nprocs=args.nprocs,
        bootstrap=args.bootstrap,
        fanout=args.fanout,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
