"""``mphserve`` — run job documents through the MPH service from the
command line.

The thin CLI over :class:`repro.service.orchestrator.Orchestrator`:
each positional argument is a JSON job-document file (``-`` for stdin),
all of them are submitted concurrently against one runtime (so
same-layout process jobs share resident worker worlds), outcomes are
staged under ``--output-dir``, and a one-line verdict per job goes to
stdout.  Exit status is the number of jobs that did not finish ``done``
(capped at 125), so shells and CI can gate on it.

Programs come from ``--programs MODULE[:ATTR]`` exactly as ``mphrun``
loads them: *MODULE* is imported, *ATTR* (default ``PROGRAMS``) must be
a dict of program-name -> ``fn(comm, env)``.

Examples
--------
Run two documents with the demo catalog, four at a time::

    mphserve --programs my_models --workers 4 \\
        --output-dir out/ jobs/coupled.json jobs/ensemble.json

Validate a document without running it::

    mphserve --check jobs/coupled.json
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

from repro.errors import JobSpecError, ReproError
from repro.service.jobdoc import JobDocument
from repro.service.orchestrator import JobState, Orchestrator


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mphserve",
        description="Run MPH job documents through the service orchestrator.",
    )
    parser.add_argument(
        "documents",
        nargs="+",
        metavar="JOB.json",
        help="job-document files ('-' reads one document from stdin)",
    )
    parser.add_argument(
        "--programs",
        metavar="MODULE[:ATTR]",
        help="program catalog: import MODULE and use its ATTR dict "
        "(default attribute: PROGRAMS); required unless --check",
    )
    parser.add_argument(
        "--output-dir",
        metavar="DIR",
        help="stage job outcomes under DIR (one subdirectory per job id)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent jobs in flight (default: 2)",
    )
    parser.add_argument(
        "--max-queued",
        type=int,
        default=64,
        metavar="N",
        help="admission bound on the submission queue (default: 64)",
    )
    parser.add_argument(
        "--max-resident",
        type=int,
        default=2,
        metavar="N",
        help="resident worker worlds to keep for process-backend reuse "
        "(default: 2; 0 disables the warm path)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the documents and print their layout keys; run nothing",
    )
    return parser


def _read_document(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def _check(paths: Sequence[str]) -> int:
    bad = 0
    for path in paths:
        try:
            doc = JobDocument.from_json(_read_document(path))
        except (JobSpecError, OSError) as exc:
            print(f"{path}: INVALID: {exc}")
            bad += 1
        else:
            print(
                f"{path}: ok name={doc.name!r} world_size={doc.world_size} "
                f"backend={doc.runtime.backend} layout={doc.layout_key()[:16]}"
            )
    return min(bad, 125)


async def _serve(args: argparse.Namespace, programs: dict) -> int:
    async with Orchestrator(
        programs,
        max_workers=args.workers,
        max_queued=args.max_queued,
        max_resident=args.max_resident,
        output_dir=args.output_dir,
    ) as orch:
        handles = []
        for path in args.documents:
            try:
                text = _read_document(path)
            except OSError as exc:
                print(f"{path}: cannot read: {exc}", file=sys.stderr)
                handles.append((path, None))
                continue
            handles.append((path, await orch.submit(text)))
        failed = 0
        for path, handle in handles:
            if handle is None:
                failed += 1
                continue
            await handle.wait()
            line = f"{path}: {handle.job_id} {handle.state}"
            if handle.state == JobState.DONE:
                if handle.staged is not None:
                    line += f" -> {handle.staged}"
                if handle.outcome is not None and handle.outcome.warm:
                    line += " (warm)"
            else:
                failed += 1
                if handle.error:
                    line += f": {handle.error}"
            print(line)
        return min(failed, 125)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.check:
        return _check(args.documents)
    if not args.programs:
        print("mphserve: --programs is required to run jobs (see --check)", file=sys.stderr)
        return 2
    from repro.tools.mphrun import _load_programs

    try:
        programs = _load_programs(args.programs)
    except (ReproError, ImportError) as exc:
        print(f"mphserve: {exc}", file=sys.stderr)
        return 2
    try:
        return asyncio.run(_serve(args, programs))
    except ReproError as exc:
        print(f"mphserve: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
