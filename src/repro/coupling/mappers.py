"""Mappers: interpolation between non-conformal interface discretizations.

Two coupled components rarely share an interface discretization; a mapper
carries a field from one side's points (or grid) to the other's.  Every
mapper here is a fixed *linear* operator built once from the two
discretizations — application is a matrix product, deterministic and
bitwise reproducible — so mapped coupling loops keep the solver theory
(spectral radii compose) and the schedule-independence guarantees.

Three mappers, one contract:

* :class:`NearestNeighbourMapper` — each destination point copies its
  nearest source point (ties broken toward the lower index); works for
  points in any dimension.
* :class:`LinearMapper` — 1-D linear interpolation between sorted
  coordinate sets, clamped at the ends.
* :class:`ConservativeGridMapper` — the existing
  :class:`~repro.climate.regrid.ConservativeRegridder` behind the mapper
  interface, for lat–lon grid interfaces whose *area integral* must
  survive the trip (flux exchange).
"""

from __future__ import annotations

import numpy as np

from repro.coupling.component import Component
from repro.errors import CouplingError


class Mapper(Component):
    """Base class: a linear map from source to destination interface data.

    Subclasses fill :attr:`matrix` (dense ``(n_dst, n_src)``) or override
    :meth:`__call__` entirely (grid mappers map 2-D fields directly).
    """

    #: Dense mapping matrix, ``dst = matrix @ src`` (1-D mappers).
    matrix: np.ndarray

    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Map source interface *values* to the destination discretization."""
        values = np.asarray(values, dtype=float)
        n_dst, n_src = self.matrix.shape
        if values.shape != (n_src,):
            raise CouplingError(
                f"{type(self).__name__}: values shape {values.shape} != ({n_src},)"
            )
        return self.matrix @ values


def _as_points(coords: np.ndarray, what: str) -> np.ndarray:
    pts = np.asarray(coords, dtype=float)
    if pts.ndim == 1:
        pts = pts[:, None]
    if pts.ndim != 2 or len(pts) == 0:
        raise CouplingError(f"{what} coordinates must be a non-empty (n,) or (n, d) array")
    return pts


class NearestNeighbourMapper(Mapper):
    """Each destination point takes the value of its nearest source point.

    >>> m = NearestNeighbourMapper([0.0, 1.0], [0.1, 0.4, 0.9])
    >>> m(np.array([5.0, 7.0]))
    array([5., 5., 7.])
    """

    def __init__(self, src_coords, dst_coords):
        super().__init__()
        src = _as_points(src_coords, "source")
        dst = _as_points(dst_coords, "destination")
        if src.shape[1] != dst.shape[1]:
            raise CouplingError(
                f"coordinate dimensions differ: source {src.shape[1]}-D, "
                f"destination {dst.shape[1]}-D"
            )
        # Pairwise squared distances; argmin takes the lowest index on ties.
        d2 = ((dst[:, None, :] - src[None, :, :]) ** 2).sum(axis=2)
        nearest = np.argmin(d2, axis=1)
        self.matrix = np.zeros((len(dst), len(src)))
        self.matrix[np.arange(len(dst)), nearest] = 1.0
        #: Destination-point -> source-point index map (diagnostic).
        self.nearest = nearest


class LinearMapper(Mapper):
    """1-D linear interpolation from sorted source coordinates onto
    destination coordinates, clamped to the end values outside the source
    range (matrix form of ``np.interp``).
    """

    def __init__(self, src_coords, dst_coords):
        super().__init__()
        src = np.asarray(src_coords, dtype=float)
        dst = np.asarray(dst_coords, dtype=float)
        if src.ndim != 1 or dst.ndim != 1 or len(src) < 2:
            raise CouplingError(
                "LinearMapper needs 1-D coordinates with at least two source points"
            )
        if not np.all(np.diff(src) > 0):
            raise CouplingError("LinearMapper source coordinates must be strictly increasing")
        self.matrix = np.zeros((len(dst), len(src)))
        # For each destination point, the bracketing source interval.
        hi = np.clip(np.searchsorted(src, dst), 1, len(src) - 1)
        lo = hi - 1
        w = (dst - src[lo]) / (src[hi] - src[lo])
        w = np.clip(w, 0.0, 1.0)  # clamp outside the source range
        rows = np.arange(len(dst))
        self.matrix[rows, lo] = 1.0 - w
        self.matrix[rows, hi] += w


class ConservativeGridMapper(Mapper):
    """The conservative lat–lon regridder as a mapper: 2-D fields between
    :class:`~repro.climate.grid.LatLonGrid` interfaces, with the area
    integral preserved to round-off (what flux exchange needs).

    Generalizes the coupler's internal
    :class:`~repro.climate.regrid.ConservativeRegridder` into the
    pluggable-mapper contract; the flat-vector form (:attr:`matrix` as
    the Kronecker product of the two 1-D remaps) is exposed lazily for
    solvers that operate on packed iterates.
    """

    def __init__(self, src_grid, dst_grid):
        super().__init__()
        from repro.climate.regrid import ConservativeRegridder

        self.src_grid = src_grid
        self.dst_grid = dst_grid
        self._regridder = ConservativeRegridder(src_grid, dst_grid)
        self._flat_matrix = None

    @property
    def matrix(self) -> np.ndarray:  # type: ignore[override]
        """The flat-vector map (``C-order`` raveled fields), built on
        first use — ``dst.ravel() = matrix @ src.ravel()``."""
        if self._flat_matrix is None:
            self._flat_matrix = np.kron(
                self._regridder.lat_matrix, self._regridder.lon_matrix
            )
        return self._flat_matrix

    def __call__(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if values.ndim == 1:
            if values.shape != (self.src_grid.nlat * self.src_grid.nlon,):
                raise CouplingError(
                    f"flat field length {values.shape[0]} != source grid "
                    f"{self.src_grid.shape}"
                )
            return self._regridder(values.reshape(self.src_grid.shape)).ravel()
        return self._regridder(values)

    def conservation_error(self, field: np.ndarray) -> float:
        """Relative area-integral error of mapping *field* (~1e-15)."""
        return self._regridder.conservation_error(field)
