"""Coupled solvers: the iteration that drives an implicit coupling step.

An implicit coupling step solves the interface fixed point ``x = F(x)``,
where evaluating ``F`` means running the coupled components once from the
step's start state.  Evaluations are the expensive part — each one is a
full exchange-and-solve over the transport — so the solvers differ only
in how they turn the residual history into the next iterate:

* :class:`GaussSeidelSolver` — relaxed fixed point ``x + ω r`` on the
  *sequentially composed* operator (each participant sees the newest
  partner data within an iteration);
* :class:`JacobiSolver` — the same update on the *joint* iterate with all
  participants evaluated from the previous iterate simultaneously
  (participants can run concurrently; spectral radius is the square root
  of Gauss-Seidel's, i.e. ~2× the iterations);
* :class:`AitkenSolver` — dynamic relaxation: ω is re-estimated each
  iteration from consecutive residuals (the secant in 1-D);
* :class:`IQNILSSolver` — the quasi-Newton IQN-ILS scheme: a least-squares
  secant model of the residual surface built from this step's iterates,
  optionally reusing the models of up to *reuse_steps* previous coupling
  steps (bounded window), with QR column filtering to drop
  (near-)linearly-dependent secant pairs.

Every solver runs the same loop (:meth:`CoupledSolver.solve_solution_step`):
evaluate, record the residual into the convergence criterion, stop or
update.  All updates are plain deterministic numpy — results are bitwise
identical across message schedules and execution backends.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.coupling.component import Component
from repro.coupling.criteria import ConvergenceCriterion
from repro.coupling.interface import InterfaceSpec
from repro.errors import CouplingError

#: Type of the interface operator a solver iterates on: one coupled
#: evaluation, ``y = F(x)``.
Operator = Callable[[np.ndarray], np.ndarray]


@dataclass
class SolveResult:
    """Outcome of one coupling step's iteration."""

    #: The final interface vector (the last evaluation ``F(x)`` — the
    #: state the participants actually hold on commit).
    x: np.ndarray
    #: Operator evaluations performed.
    iterations: int
    #: Whether the convergence criterion was met within the budget.
    converged: bool
    #: 2-norm of the interface residual per iteration.
    residual_norms: List[float] = field(default_factory=list)


class CoupledSolver(Component):
    """Base class: the evaluate / check / update loop of one coupling step.

    Parameters
    ----------
    criterion :
        The convergence criterion (its lifecycle is driven by this
        solver).
    max_iterations :
        Evaluation budget per coupling step.
    strict :
        Raise :class:`~repro.errors.CouplingError` when the budget is
        exhausted unconverged (default: return ``converged=False``).
    """

    #: ``"sequential"`` (compose participants within an iteration) or
    #: ``"parallel"`` (joint iterate, participants evaluated concurrently)
    #: — how a driver should shape the operator it hands to this solver.
    mode = "sequential"

    def __init__(
        self,
        criterion: ConvergenceCriterion,
        max_iterations: int = 50,
        strict: bool = False,
    ):
        super().__init__()
        if max_iterations < 1:
            raise CouplingError(f"max_iterations must be >= 1, got {max_iterations}")
        self.criterion = criterion
        self.max_iterations = int(max_iterations)
        self.strict = bool(strict)
        #: Iterations of every completed coupling step, in step order.
        self.iterations_per_step: List[int] = []

    # -- lifecycle cascades to the criterion -----------------------------------

    def initialize(self) -> None:
        super().initialize()
        self.criterion.initialize()

    def initialize_solution_step(self) -> None:
        super().initialize_solution_step()
        self.criterion.initialize_solution_step()

    def finalize_solution_step(self) -> None:
        super().finalize_solution_step()
        self.criterion.finalize_solution_step()

    def finalize(self) -> None:
        super().finalize()
        self.criterion.finalize()

    # -- the loop ---------------------------------------------------------------

    def solve_solution_step(
        self,
        x0: np.ndarray,
        operate: Operator,
        spec: Optional[InterfaceSpec] = None,
    ) -> SolveResult:
        """Iterate the coupling step to convergence from initial guess
        *x0*; returns the :class:`SolveResult` with the final evaluation."""
        self._require_in_step("solve_solution_step")
        x = np.array(x0, dtype=float)
        y = x
        norms: List[float] = []
        converged = False
        iterations = 0
        for k in range(self.max_iterations):
            y = np.asarray(operate(x), dtype=float)
            if y.shape != x.shape:
                raise CouplingError(
                    f"operator returned shape {y.shape}, iterate is {x.shape}"
                )
            r = y - x
            iterations = k + 1
            self.criterion.update(r, spec)
            norms.append(float(np.linalg.norm(r)))
            self._observe(k, x, y, r)
            if self.criterion.is_satisfied():
                converged = True
                break
            x = self._next(k, x, y, r)
        if not converged and self.strict:
            raise CouplingError(
                f"{type(self).__name__}: coupling step {self.step_index} did not "
                f"converge in {self.max_iterations} iterations "
                f"(last residual {norms[-1]:.3e})"
            )
        self.iterations_per_step.append(iterations)
        return SolveResult(
            x=y, iterations=iterations, converged=converged, residual_norms=norms
        )

    # -- solver-specific pieces -------------------------------------------------

    def _observe(self, k: int, x: np.ndarray, y: np.ndarray, r: np.ndarray) -> None:
        """Bookkeeping hook, called after every evaluation (histories)."""

    def _next(self, k: int, x: np.ndarray, y: np.ndarray, r: np.ndarray) -> np.ndarray:
        """The next iterate from the current evaluation."""
        raise NotImplementedError


class GaussSeidelSolver(CoupledSolver):
    """Explicit fixed point with constant relaxation: ``x_{k+1} = x_k + ω r_k``
    (ω = 1 is plain Gauss-Seidel substitution)."""

    def __init__(
        self,
        criterion: ConvergenceCriterion,
        omega: float = 1.0,
        max_iterations: int = 50,
        strict: bool = False,
    ):
        super().__init__(criterion, max_iterations, strict)
        if not 0 < omega <= 2.0:
            raise CouplingError(f"omega must be in (0, 2], got {omega}")
        self.omega = float(omega)

    def _next(self, k: int, x: np.ndarray, y: np.ndarray, r: np.ndarray) -> np.ndarray:
        return x + self.omega * r


class JacobiSolver(GaussSeidelSolver):
    """The same relaxed update on the *joint* iterate: every participant is
    evaluated from the previous iterate, so evaluations within an
    iteration are independent (a driver runs them concurrently).  Slower
    to converge than Gauss-Seidel — its iteration-matrix spectral radius
    is the square root — but each iteration is one parallel wave."""

    mode = "parallel"


class AitkenSolver(CoupledSolver):
    """Aitken dynamic relaxation: ``ω_k`` re-estimated every iteration,

    .. math::

        \\omega_k = -\\omega_{k-1}
            \\frac{r_{k-1} \\cdot (r_k - r_{k-1})}{\\lVert r_k - r_{k-1} \\rVert^2},

    clipped to ``[-omega_max, omega_max]``.  The first iteration of a step
    reuses the last step's final ω (sign kept, magnitude capped at
    *omega_initial*), the classical warm start.
    """

    def __init__(
        self,
        criterion: ConvergenceCriterion,
        omega_initial: float = 0.1,
        omega_max: float = 2.0,
        max_iterations: int = 50,
        strict: bool = False,
    ):
        super().__init__(criterion, max_iterations, strict)
        if omega_initial == 0.0:
            raise CouplingError("omega_initial must be nonzero")
        self.omega_initial = float(omega_initial)
        self.omega_max = float(abs(omega_max))
        self._omega = float(omega_initial)
        self._r_prev: Optional[np.ndarray] = None
        #: ω used at each iteration of the current step (diagnostic).
        self.omega_history: List[float] = []

    def initialize_solution_step(self) -> None:
        super().initialize_solution_step()
        self._r_prev = None
        self.omega_history = []
        # Warm start: keep the converged ω's sign, cap its magnitude.
        cap = abs(self.omega_initial)
        self._omega = float(np.sign(self._omega) or 1.0) * min(abs(self._omega), cap)

    def _next(self, k: int, x: np.ndarray, y: np.ndarray, r: np.ndarray) -> np.ndarray:
        if self._r_prev is not None:
            dr = r - self._r_prev
            denom = float(dr @ dr)
            if denom > 0.0:
                omega = -self._omega * float(self._r_prev @ dr) / denom
                self._omega = float(np.clip(omega, -self.omega_max, self.omega_max))
        self._r_prev = np.array(r)
        self.omega_history.append(self._omega)
        return x + self._omega * r


class IQNILSSolver(CoupledSolver):
    """IQN-ILS: interface quasi-Newton with least-squares secant model.

    Each iteration pair contributes a secant column ``ΔR_i = r_i - r_{i-1}``
    / ``ΔY_i = y_i - y_{i-1}``; the update solves the least-squares problem
    ``min_c ||r_k + V c||`` and steps ``x_{k+1} = x_k + W c + r_k`` — a
    Newton step on the residual surface spanned by the observed secants.

    Parameters
    ----------
    reuse_steps :
        Bounded reuse window: secant columns from up to this many previous
        coupling steps are appended to the model (0 = none).  Reuse cuts
        the first iterations of a step dramatically once the interface
        Jacobian is roughly constant between steps.
    filter_eps :
        QR filtering threshold: columns whose ``|R_jj|`` falls below
        ``filter_eps × max_j |R_jj|`` are dropped (and the QR rebuilt)
        until the model is numerically full-rank — without it, reused or
        converged-step columns make the least squares singular.
    omega_initial :
        Relaxation of the model-free first iteration of a step when no
        reused columns exist yet.
    """

    def __init__(
        self,
        criterion: ConvergenceCriterion,
        reuse_steps: int = 2,
        filter_eps: float = 1e-10,
        omega_initial: float = 0.1,
        max_iterations: int = 50,
        strict: bool = False,
    ):
        super().__init__(criterion, max_iterations, strict)
        if reuse_steps < 0:
            raise CouplingError(f"reuse_steps must be >= 0, got {reuse_steps}")
        if not 0 <= filter_eps < 1:
            raise CouplingError(f"filter_eps must be in [0, 1), got {filter_eps}")
        self.reuse_steps = int(reuse_steps)
        self.filter_eps = float(filter_eps)
        self.omega_initial = float(omega_initial)
        self._v_cols: List[np.ndarray] = []  # newest first
        self._w_cols: List[np.ndarray] = []
        self._r_prev: Optional[np.ndarray] = None
        self._y_prev: Optional[np.ndarray] = None
        self._reused: deque = deque(maxlen=max(self.reuse_steps, 1))
        #: Columns dropped by the QR filter over the run (diagnostic).
        self.filtered_columns = 0

    def initialize_solution_step(self) -> None:
        super().initialize_solution_step()
        self._v_cols = []
        self._w_cols = []
        self._r_prev = None
        self._y_prev = None

    def finalize_solution_step(self) -> None:
        super().finalize_solution_step()
        if self.reuse_steps > 0 and self._v_cols:
            self._reused.append((list(self._v_cols), list(self._w_cols)))

    def _observe(self, k: int, x: np.ndarray, y: np.ndarray, r: np.ndarray) -> None:
        if self._r_prev is not None:
            self._v_cols.insert(0, r - self._r_prev)
            self._w_cols.insert(0, y - self._y_prev)
        self._r_prev = np.array(r)
        self._y_prev = np.array(y)

    def _model_columns(self) -> tuple:
        v_cols = list(self._v_cols)
        w_cols = list(self._w_cols)
        if self.reuse_steps > 0:
            for v_old, w_old in reversed(self._reused):
                v_cols.extend(v_old)
                w_cols.extend(w_old)
        return v_cols, w_cols

    def _next(self, k: int, x: np.ndarray, y: np.ndarray, r: np.ndarray) -> np.ndarray:
        v_cols, w_cols = self._model_columns()
        if not v_cols:
            return x + self.omega_initial * r
        # At most len(r) secant columns can be independent on this
        # interface; truncate (newest first) so the QR stays square.
        v_cols, w_cols = v_cols[: r.shape[0]], w_cols[: r.shape[0]]
        v = np.stack(v_cols, axis=1)
        w = np.stack(w_cols, axis=1)
        # QR filtering: drop near-dependent columns until full rank.
        while True:
            q, rmat = np.linalg.qr(v)
            diag = np.abs(np.diag(rmat))
            limit = self.filter_eps * float(diag.max()) if diag.size else 0.0
            bad = np.nonzero(diag <= limit)[0]
            if bad.size == 0 or v.shape[1] == 1:
                break
            keep = np.setdiff1d(np.arange(v.shape[1]), bad)
            self.filtered_columns += bad.size
            v = v[:, keep]
            w = w[:, keep]
        if np.abs(np.diag(rmat)).min() == 0.0:
            # Model fully degenerate (converged columns): fall back.
            return x + self.omega_initial * r
        c = _solve_upper(rmat, q.T @ (-r))
        return x + w @ c + r


def _solve_upper(rmat: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Back-substitution on an upper-triangular system (numpy-only)."""
    n = rmat.shape[0]
    c = np.zeros(n)
    for i in range(n - 1, -1, -1):
        c[i] = (b[i] - rmat[i, i + 1 :] @ c[i + 1 :]) / rmat[i, i]
    return c


# -- operator composition helpers ------------------------------------------------


def compose_operators(f1: Operator, f2: Operator) -> Operator:
    """The sequential (Gauss-Seidel) composition ``x -> f2(f1(x))``: each
    participant sees the newest partner data within an iteration."""

    def composed(x: np.ndarray) -> np.ndarray:
        return f2(f1(x))

    return composed


def joint_operator(f1: Operator, f2: Operator, n1: int, n2: int) -> Operator:
    """The parallel (Jacobi) joint operator on ``R^{n1+n2}``:
    ``(u, v) -> (f1(v), f2(u))`` — both participants evaluated from the
    previous iterate, fixed point at ``u* = f1(v*)``, ``v* = f2(u*)``."""

    def joint(z: np.ndarray) -> np.ndarray:
        if z.shape != (n1 + n2,):
            raise CouplingError(f"joint iterate shape {z.shape} != ({n1 + n2},)")
        u, v = z[:n1], z[n1:]
        return np.concatenate([f1(v), f2(u)])

    return joint
