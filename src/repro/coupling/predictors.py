"""Predictors: the initial interface guess at the start of a coupling step.

An implicit coupling step is an iteration to the fixed point
``x = F(x)``; the closer the first iterate starts, the fewer iterations
the solver burns.  A predictor extrapolates the converged interface
vectors of prior coupling steps — constant (reuse the last), linear, or
quadratic in step index — and is updated with each step's converged
result by the driver.

The first steps of a run, before enough history exists, degrade
gracefully to the highest extrapolation order the history supports (a
quadratic predictor acts linearly on step 1 and constantly on step 0).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.coupling.component import Component


class Predictor(Component):
    """Base class: a ring of converged interface vectors, newest last.

    Subclasses set :attr:`order` (extrapolation order; history demand is
    ``order + 1``) and inherit everything else.
    """

    #: Extrapolation order (0 = constant, 1 = linear, 2 = quadratic).
    order = 0

    def __init__(self) -> None:
        super().__init__()
        self._history: Deque[np.ndarray] = deque(maxlen=self.order + 1)

    def predict(self) -> Optional[np.ndarray]:
        """The initial iterate for the coming step, or ``None`` before any
        history exists (the driver then starts from the current state)."""
        n = len(self._history)
        if n == 0:
            return None
        h = list(self._history)
        if n == 1 or self.order == 0:
            return h[-1].copy()
        if n == 2 or self.order == 1:
            return 2.0 * h[-1] - h[-2]
        return 3.0 * h[-1] - 3.0 * h[-2] + h[-3]

    def update(self, converged: np.ndarray) -> None:
        """Record a coupling step's converged interface vector."""
        self._require_in_step("update")
        self._history.append(np.array(converged, dtype=float))

    @property
    def history_length(self) -> int:
        """Converged steps currently remembered."""
        return len(self._history)


class ConstantPredictor(Predictor):
    """Reuse the previous step's converged interface unchanged."""

    order = 0


class LinearPredictor(Predictor):
    """Linear extrapolation from the last two converged steps:
    ``2 x_{n-1} - x_{n-2}``."""

    order = 1


class QuadraticPredictor(Predictor):
    """Quadratic (Lagrange) extrapolation from the last three converged
    steps: ``3 x_{n-1} - 3 x_{n-2} + x_{n-3}``."""

    order = 2
