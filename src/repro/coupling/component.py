"""The coupling-component lifecycle contract.

Every building block of the coupling layer — coupled solvers, convergence
criteria, predictors, mappers — is a :class:`Component` with the same four
lifecycle hooks, so a coupling scheme is assembled from interchangeable
parts and a new solver or criterion drops in without touching the driver
or the transport (the CoCoNuT decomposition):

* :meth:`Component.initialize` / :meth:`Component.finalize` bracket the
  whole coupled calculation;
* :meth:`Component.initialize_solution_step` /
  :meth:`Component.finalize_solution_step` bracket one coupling step (one
  outer time step of the coupled system).

The base class enforces the ordering — a solver driven outside its
lifecycle is a bug in the driver, not a numerical mystery — and keeps the
current step index available to subclasses.
"""

from __future__ import annotations

from repro.errors import CouplingError


class Component:
    """Base class of every coupling component (solver, criterion,
    predictor, mapper).

    Subclasses override the hooks they need; all overrides must call
    ``super()`` so the lifecycle bookkeeping stays consistent.
    """

    def __init__(self) -> None:
        self._initialized = False
        self._in_step = False
        #: Index of the current (or last started) coupling step.
        self.step_index = -1

    # -- lifecycle --------------------------------------------------------------

    def initialize(self) -> None:
        """Start of the coupled calculation (called exactly once)."""
        if self._initialized:
            raise CouplingError(f"{type(self).__name__}.initialize called twice")
        self._initialized = True

    def initialize_solution_step(self) -> None:
        """Start of one coupling step."""
        self._require_initialized("initialize_solution_step")
        if self._in_step:
            raise CouplingError(
                f"{type(self).__name__}: coupling step {self.step_index} still open"
            )
        self._in_step = True
        self.step_index += 1

    def finalize_solution_step(self) -> None:
        """End of one coupling step."""
        self._require_initialized("finalize_solution_step")
        if not self._in_step:
            raise CouplingError(
                f"{type(self).__name__}.finalize_solution_step without an open step"
            )
        self._in_step = False

    def finalize(self) -> None:
        """End of the coupled calculation."""
        self._require_initialized("finalize")
        if self._in_step:
            raise CouplingError(
                f"{type(self).__name__}.finalize inside coupling step {self.step_index}"
            )
        self._initialized = False

    # -- helpers ----------------------------------------------------------------

    def _require_initialized(self, op: str) -> None:
        if not self._initialized:
            raise CouplingError(f"{type(self).__name__}.{op} before initialize")

    def _require_in_step(self, op: str) -> None:
        self._require_initialized(op)
        if not self._in_step:
            raise CouplingError(
                f"{type(self).__name__}.{op} outside a coupling step; call "
                "initialize_solution_step first"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} step={self.step_index}>"
