"""Coupling algorithms on top of MPH (:mod:`repro.coupling`).

The MPH paper's coupler exchanges fixed fluxes once per step (explicit
coupling); this package supplies what tightly coupled multi-physics needs
on the same infrastructure: implicit coupled solvers (Gauss-Seidel,
Jacobi, Aitken, IQN-ILS), composable convergence criteria, interface
predictors, and non-conformal interface mappers — each a
:class:`~repro.coupling.component.Component` with the same lifecycle, and
a driver/participant protocol that runs them over ``MPH_comm_join``
communicators on any execution backend.
"""

from repro.coupling.component import Component
from repro.coupling.criteria import (
    AbsoluteNorm,
    And,
    ConvergenceCriterion,
    IterationBound,
    Or,
    RelativeNorm,
)
from repro.coupling.driver import (
    CouplingDriver,
    LinearParticipant,
    Participant,
    ParticipantModel,
    serve_participant,
)
from repro.coupling.interface import InterfaceSpec, join_specs
from repro.coupling.mappers import (
    ConservativeGridMapper,
    LinearMapper,
    Mapper,
    NearestNeighbourMapper,
)
from repro.coupling.predictors import (
    ConstantPredictor,
    LinearPredictor,
    Predictor,
    QuadraticPredictor,
)
from repro.coupling.solvers import (
    AitkenSolver,
    CoupledSolver,
    GaussSeidelSolver,
    IQNILSSolver,
    JacobiSolver,
    SolveResult,
    compose_operators,
    joint_operator,
)

__all__ = [
    "Component",
    "ConvergenceCriterion",
    "AbsoluteNorm",
    "RelativeNorm",
    "IterationBound",
    "And",
    "Or",
    "InterfaceSpec",
    "join_specs",
    "Predictor",
    "ConstantPredictor",
    "LinearPredictor",
    "QuadraticPredictor",
    "Mapper",
    "NearestNeighbourMapper",
    "LinearMapper",
    "ConservativeGridMapper",
    "CoupledSolver",
    "SolveResult",
    "GaussSeidelSolver",
    "JacobiSolver",
    "AitkenSolver",
    "IQNILSSolver",
    "compose_operators",
    "joint_operator",
    "CouplingDriver",
    "Participant",
    "ParticipantModel",
    "LinearParticipant",
    "serve_participant",
]
