"""Interface data: the named fields a coupling iteration converges on.

Coupled solvers do linear algebra on one flat vector; convergence criteria
and mappers want *fields* (per-variable, per-discretization).  An
:class:`InterfaceSpec` fixes the bridge once — an ordered set of named
fields with shapes — and packs/unpacks between ``{name: array}`` dicts and
the flat iterate vector deterministically (field declaration order, C
order within a field), so every solver, criterion, and transport sees the
same layout and results stay bitwise schedule-independent.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

from repro.errors import CouplingError


class InterfaceSpec:
    """An ordered, shaped set of interface fields.

    >>> spec = InterfaceSpec([("temperature", (4,)), ("flux", (2, 3))])
    >>> spec.size
    10
    >>> vec = spec.pack({"temperature": np.zeros(4), "flux": np.ones((2, 3))})
    >>> spec.unpack(vec)["flux"].shape
    (2, 3)
    """

    def __init__(self, fields: Iterable[Tuple[str, Tuple[int, ...]]]):
        self.fields: Tuple[Tuple[str, Tuple[int, ...]], ...] = tuple(
            (str(name), tuple(int(n) for n in shape)) for name, shape in fields
        )
        if not self.fields:
            raise CouplingError("an interface needs at least one field")
        names = [name for name, _ in self.fields]
        if len(set(names)) != len(names):
            raise CouplingError(f"duplicate interface field names in {names}")
        self._slices: Dict[str, slice] = {}
        offset = 0
        for name, shape in self.fields:
            n = int(np.prod(shape, dtype=int)) if shape else 1
            self._slices[name] = slice(offset, offset + n)
            offset += n
        #: Total length of the packed iterate vector.
        self.size = offset

    @property
    def names(self) -> Tuple[str, ...]:
        """Field names in declaration order."""
        return tuple(name for name, _ in self.fields)

    def shape(self, name: str) -> Tuple[int, ...]:
        """Declared shape of field *name*."""
        for fname, fshape in self.fields:
            if fname == name:
                return fshape
        raise CouplingError(f"unknown interface field {name!r}; have {self.names}")

    def slice_of(self, name: str) -> slice:
        """Slice of field *name* within the packed vector."""
        if name not in self._slices:
            raise CouplingError(f"unknown interface field {name!r}; have {self.names}")
        return self._slices[name]

    def pack(self, fields: Mapping[str, np.ndarray]) -> np.ndarray:
        """Concatenate *fields* into the flat iterate vector (float64)."""
        missing = set(self.names) - set(fields)
        if missing:
            raise CouplingError(f"pack: missing interface fields {sorted(missing)}")
        out = np.empty(self.size, dtype=float)
        for name, shape in self.fields:
            data = np.asarray(fields[name], dtype=float)
            if data.shape != shape:
                raise CouplingError(
                    f"pack: field {name!r} has shape {data.shape}, declared {shape}"
                )
            out[self._slices[name]] = data.ravel()
        return out

    def unpack(self, vector: np.ndarray) -> Dict[str, np.ndarray]:
        """Split the flat iterate vector back into named field arrays."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.size,):
            raise CouplingError(
                f"unpack: vector shape {vector.shape} != ({self.size},)"
            )
        return {
            name: vector[self._slices[name]].reshape(shape)
            for name, shape in self.fields
        }

    def zeros(self) -> np.ndarray:
        """A zero iterate vector of this spec's size."""
        return np.zeros(self.size)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, InterfaceSpec) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{n}{s}" for n, s in self.fields)
        return f"InterfaceSpec({parts})"


def join_specs(*specs: InterfaceSpec) -> InterfaceSpec:
    """Concatenate several specs into one (for Jacobi-style joint
    iterates); field names are prefixed ``p<i>/`` to stay unique."""
    fields = []
    for i, spec in enumerate(specs):
        for name, shape in spec.fields:
            fields.append((f"p{i}/{name}", shape))
    return InterfaceSpec(fields)
