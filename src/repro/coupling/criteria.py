"""Convergence criteria: when has a coupling step converged?

A criterion watches the interface residual ``r_k = F(x_k) - x_k`` over the
iterations of one coupling step and answers :meth:`is_satisfied`.  The
building blocks are per-field (or whole-vector) residual norms —
:class:`AbsoluteNorm` against a fixed tolerance, :class:`RelativeNorm`
against the step's first residual — composable with ``&`` and ``|`` into
arbitrary and/or trees, so "absolute OR (relative AND at least 2 orders
dropped)" is one expression, not a new class.

Criteria are :class:`~repro.coupling.component.Component`\\ s: the driver
opens a step (resetting the history) and feeds every iteration's residual
through :meth:`ConvergenceCriterion.update`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.coupling.component import Component
from repro.coupling.interface import InterfaceSpec
from repro.errors import CouplingError


class ConvergenceCriterion(Component):
    """Base class: records the residual history of the current step.

    Subclasses implement :meth:`is_satisfied` over :attr:`residuals`
    (one entry per completed iteration).
    """

    def __init__(self) -> None:
        super().__init__()
        #: Residual vectors of the current coupling step, oldest first.
        self.residuals: List[np.ndarray] = []
        self._spec: Optional[InterfaceSpec] = None

    def initialize_solution_step(self) -> None:
        super().initialize_solution_step()
        self.residuals = []

    def update(self, residual: np.ndarray, spec: Optional[InterfaceSpec] = None) -> None:
        """Record one iteration's interface residual."""
        self._require_in_step("update")
        self.residuals.append(np.asarray(residual, dtype=float))
        if spec is not None:
            self._spec = spec

    def is_satisfied(self) -> bool:
        """Whether the step has converged under this criterion."""
        raise NotImplementedError

    def iterations(self) -> int:
        """Iterations recorded so far in the current step."""
        return len(self.residuals)

    # -- composition ------------------------------------------------------------

    def __and__(self, other: "ConvergenceCriterion") -> "And":
        return And(self, other)

    def __or__(self, other: "ConvergenceCriterion") -> "Or":
        return Or(self, other)

    # -- helpers ----------------------------------------------------------------

    def _field_residual(self, residual: np.ndarray, field: Optional[str]) -> np.ndarray:
        if field is None:
            return residual
        if self._spec is None:
            raise CouplingError(
                f"criterion watches field {field!r} but no InterfaceSpec was "
                "passed to update()"
            )
        return residual[self._spec.slice_of(field)]


class AbsoluteNorm(ConvergenceCriterion):
    """``||r_k|| <= tol`` (2-norm by default), optionally on one field.

    >>> c = AbsoluteNorm(tol=1e-6)
    """

    def __init__(self, tol: float, field: Optional[str] = None, ord: int = 2):
        super().__init__()
        if tol <= 0:
            raise CouplingError(f"AbsoluteNorm tol must be positive, got {tol}")
        self.tol = float(tol)
        self.field = field
        self.ord = ord

    def is_satisfied(self) -> bool:
        if not self.residuals:
            return False
        r = self._field_residual(self.residuals[-1], self.field)
        return float(np.linalg.norm(r, self.ord)) <= self.tol

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = f", field={self.field!r}" if self.field else ""
        return f"AbsoluteNorm(tol={self.tol}{where})"


class RelativeNorm(ConvergenceCriterion):
    """``||r_k|| <= tol * ||r_0||`` against the step's first residual,
    optionally on one field.  A step whose first residual is already zero
    is converged immediately."""

    def __init__(self, tol: float, field: Optional[str] = None, ord: int = 2):
        super().__init__()
        if not 0 < tol < 1:
            raise CouplingError(f"RelativeNorm tol must be in (0, 1), got {tol}")
        self.tol = float(tol)
        self.field = field
        self.ord = ord

    def is_satisfied(self) -> bool:
        if not self.residuals:
            return False
        r0 = self._field_residual(self.residuals[0], self.field)
        rk = self._field_residual(self.residuals[-1], self.field)
        ref = float(np.linalg.norm(r0, self.ord))
        if ref == 0.0:
            return True
        return float(np.linalg.norm(rk, self.ord)) <= self.tol * ref

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = f", field={self.field!r}" if self.field else ""
        return f"RelativeNorm(tol={self.tol}{where})"


class IterationBound(ConvergenceCriterion):
    """Satisfied after *n* iterations — compose with ``|`` as a safety
    valve, or use alone to force a fixed iteration count."""

    def __init__(self, n: int):
        super().__init__()
        if n < 1:
            raise CouplingError(f"IterationBound needs n >= 1, got {n}")
        self.n = int(n)

    def is_satisfied(self) -> bool:
        return len(self.residuals) >= self.n


class _Combined(ConvergenceCriterion):
    """Shared machinery of :class:`And` / :class:`Or`: lifecycle calls and
    residual updates fan out to every child."""

    def __init__(self, *children: ConvergenceCriterion):
        super().__init__()
        if len(children) < 2:
            raise CouplingError(f"{type(self).__name__} needs at least two criteria")
        self.children = tuple(children)

    def initialize(self) -> None:
        super().initialize()
        for c in self.children:
            c.initialize()

    def initialize_solution_step(self) -> None:
        super().initialize_solution_step()
        for c in self.children:
            c.initialize_solution_step()

    def update(self, residual: np.ndarray, spec: Optional[InterfaceSpec] = None) -> None:
        super().update(residual, spec)
        for c in self.children:
            c.update(residual, spec)

    def finalize_solution_step(self) -> None:
        super().finalize_solution_step()
        for c in self.children:
            c.finalize_solution_step()

    def finalize(self) -> None:
        super().finalize()
        for c in self.children:
            c.finalize()


class And(_Combined):
    """Converged when *every* child criterion is satisfied."""

    def is_satisfied(self) -> bool:
        return all(c.is_satisfied() for c in self.children)


class Or(_Combined):
    """Converged when *any* child criterion is satisfied."""

    def is_satisfied(self) -> bool:
        return any(c.is_satisfied() for c in self.children)
