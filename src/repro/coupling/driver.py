"""The coupling driver: solvers running over ``MPH_comm_join``.

The coupler executable owns the iteration; every participant executable
runs a small command server (:func:`serve_participant`).  Between them sits
one joint communicator per participant (``MPH_comm_join(participant,
coupler)``), and the whole protocol is five broadcast commands:

========  ==============================================================
command   meaning
========  ==============================================================
begin     a coupling step opens; snapshot your state
eval      here is your interface input — run a trial solve (sub-cycling
          and all) from the snapshot, gather your interface output back
commit    the step converged on your last trial; make it permanent
shrink    a peer died — shrink the world and rejoin
close     the coupled run is over
========  ==============================================================

Because commands and data move only over join communicators and component
collectives, the driver runs unchanged on the thread, process, and
process+shm backends — the transport underneath is MPH's problem.

Fault handling (``allow_partial=True``): when a participant dies
mid-iteration the coupler revokes the failed join and the global world,
commands the healthy joins to *shrink*, and everyone rebuilds over the
survivors via :meth:`~repro.core.mph.MPH.shrink_world`.  The dead
participant's interface is frozen at its last evaluated output and the
iteration restarts within the same step — degraded, but no survivor
hangs.  With ``allow_partial=False`` the coupler revokes everything and
re-raises, so every survivor fails fast instead of hanging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.coupling.component import Component
from repro.coupling.interface import InterfaceSpec, join_specs
from repro.coupling.mappers import Mapper
from repro.coupling.predictors import Predictor
from repro.coupling.solvers import CoupledSolver, SolveResult
from repro.errors import CouplingError, ProcessFailedError, RevokedError

CMD_BEGIN = "begin"
CMD_EVAL = "eval"
CMD_COMMIT = "commit"
CMD_SHRINK = "shrink"
CMD_CLOSE = "close"


# -- participant side --------------------------------------------------------------


class ParticipantModel:
    """What a participant executable plugs into :func:`serve_participant`.

    The driver may evaluate a step many times before committing it, so
    :meth:`evaluate` must always run from the state captured by the last
    :meth:`begin_step` (snapshot/restore semantics); ``begin_step`` may be
    re-issued for the same step after a fault recovery and must be
    idempotent.
    """

    def begin_step(self, step: int) -> None:
        """A coupling step opens: snapshot the restartable state."""

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """One trial solve from the snapshot with interface input *x*;
        returns this rank's block of the interface output."""
        raise NotImplementedError

    def commit(self) -> None:
        """The last trial converged: make it the permanent state."""

    def close(self) -> None:
        """The coupled run is over."""


class LinearParticipant(ParticipantModel):
    """An affine interface operator ``y = A x + b`` — the workhorse of the
    conformance and property suites (linear problems have known spectral
    radii and exact quasi-Newton behaviour).

    Multi-rank participants pass *rows* (this rank's slice of the output);
    the coupler concatenates the gathered blocks in rank order.
    """

    def __init__(self, matrix, offset=None, rows: Optional[slice] = None):
        self.matrix = np.asarray(matrix, dtype=float)
        self.offset = (
            np.zeros(self.matrix.shape[0])
            if offset is None
            else np.asarray(offset, dtype=float)
        )
        self.rows = rows
        self.evaluations = 0
        self.steps_committed = 0

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        self.evaluations += 1
        y = self.matrix @ x + self.offset
        return y if self.rows is None else y[self.rows]

    def commit(self) -> None:
        self.steps_committed += 1


def serve_participant(
    mph,
    model: ParticipantModel,
    participant: Optional[str] = None,
    coupler: str = "coupler",
    allow_partial: bool = False,
) -> Dict[str, Any]:
    """Run a participant's command loop until the coupler closes it.

    Collective over the participant's component.  Returns a small summary
    dict (``steps``, ``evaluations``, ``degraded``) for assertions.
    """
    name = participant or mph.comp_name()
    join = mph.comm_join(name, coupler)
    root = mph.component_size(name)  # coupler local 0's join rank
    steps = evaluations = degraded = 0
    while True:
        try:
            cmd, step, payload = join.bcast(None, root=root)
        except (ProcessFailedError, RevokedError):
            if not allow_partial:
                raise
            mph, join, root = _participant_shrink(mph, name, coupler)
            degraded += 1
            continue
        if cmd == CMD_BEGIN:
            model.begin_step(step)
        elif cmd == CMD_EVAL:
            y = model.evaluate(np.asarray(payload, dtype=float))
            evaluations += 1
            join.gather(np.asarray(y, dtype=float), root=root)
        elif cmd == CMD_COMMIT:
            model.commit()
            steps += 1
        elif cmd == CMD_SHRINK:
            mph, join, root = _participant_shrink(mph, name, coupler)
            degraded += 1
        elif cmd == CMD_CLOSE:
            model.close()
            break
        else:  # pragma: no cover - protocol corruption
            raise CouplingError(f"participant {name!r}: unknown command {cmd!r}")
    return {
        "component": name,
        "steps": steps,
        "evaluations": evaluations,
        "degraded": degraded,
    }


def _participant_shrink(mph, name: str, coupler: str):
    """Rebuild this participant's world view and join after a failure."""
    mph2 = mph.shrink_world()
    if coupler in mph2.dead_components:
        raise CouplingError(f"participant {name!r}: coupler {coupler!r} died")
    join = mph2.comm_join(name, coupler)
    return mph2, join, mph2.component_size(name)


# -- coupler side ------------------------------------------------------------------


@dataclass
class Participant:
    """Coupler-side declaration of one participant.

    *spec* is the participant's **input** interface; *to_next* maps its
    output onto the next participant's input discretization (``None`` when
    the two sides are conformal).  Participants couple in a ring: the
    output of each is the (mapped) input of the next, which for the common
    two-participant case is the usual cross exchange.
    """

    name: str
    spec: InterfaceSpec
    to_next: Optional[Mapper] = None


class _Proxy:
    """Coupler-side handle for one participant's join."""

    def __init__(self, decl: Participant):
        self.name = decl.name
        self.spec = decl.spec
        self.to_next = decl.to_next
        self.join = None
        self.size = 0
        self.frozen = False
        self.failed = False
        self.last_output: Optional[np.ndarray] = None

    def bind(self, mph, coupler: str) -> None:
        self.join = mph.comm_join(self.name, coupler)
        self.size = mph.component_size(self.name)

    @property
    def root(self) -> int:
        return self.size  # coupler local rank 0 sits just after the participant

    @property
    def live(self) -> bool:
        return self.join is not None and not self.frozen


class CouplingDriver(Component):
    """The coupler's side of the protocol: one coupled solver driven over
    the participants' join communicators.

    Collective over the coupler component (every coupler rank constructs
    the driver and calls the same methods; evaluation results are
    broadcast over the coupler's communicator so all ranks run the
    identical iteration).

    The iterate is the first participant's input vector in ``sequential``
    solver mode (participants evaluated in ring order within an
    iteration), or the concatenation of every participant's input in
    ``parallel`` mode (one concurrent evaluation wave per iteration, the
    Jacobi shape).
    """

    def __init__(
        self,
        mph,
        solver: CoupledSolver,
        participants: Sequence[Participant],
        predictor: Optional[Predictor] = None,
        coupler: Optional[str] = None,
        allow_partial: bool = False,
    ):
        super().__init__()
        if not participants:
            raise CouplingError("CouplingDriver needs at least one participant")
        self.mph = mph
        self.solver = solver
        self.predictor = predictor
        self.allow_partial = bool(allow_partial)
        self.coupler_name = coupler or mph.comp_name()
        self._cpl_comm = mph.component_comm(self.coupler_name)
        self._is_root = self._cpl_comm.rank == 0
        self._proxies = [_Proxy(decl) for decl in participants]
        for proxy in self._proxies:
            proxy.bind(mph, self.coupler_name)
        if solver.mode == "parallel":
            self.iterate_spec = join_specs(*(p.spec for p in self._proxies))
        else:
            self.iterate_spec = self._proxies[0].spec
        self._step = -1
        self._last_converged: Optional[np.ndarray] = None
        #: ``dead_components`` tuple of every shrink survived (diagnostic).
        self.degraded_events: List[tuple] = []

    # -- lifecycle cascades over solver / predictor / mappers -------------------

    def _children(self) -> List[Component]:
        kids: List[Component] = [self.solver]
        if self.predictor is not None:
            kids.append(self.predictor)
        kids.extend(p.to_next for p in self._proxies if p.to_next is not None)
        return kids

    def initialize(self) -> None:
        super().initialize()
        for c in self._children():
            c.initialize()

    def initialize_solution_step(self) -> None:
        super().initialize_solution_step()
        for c in self._children():
            c.initialize_solution_step()

    def finalize_solution_step(self) -> None:
        super().finalize_solution_step()
        for c in self._children():
            c.finalize_solution_step()

    def finalize(self) -> None:
        super().finalize()
        for c in self._children():
            c.finalize()

    # -- the coupled run --------------------------------------------------------

    def solve_time_step(self, x0: Optional[np.ndarray] = None) -> SolveResult:
        """Run one implicit coupling step to interface convergence.

        The initial iterate is *x0* if given, else the predictor's
        extrapolation, else the previous step's converged vector, else
        zeros.  Returns the solver's :class:`SolveResult`.
        """
        self.initialize_solution_step()
        self._step += 1
        self._broadcast_live(CMD_BEGIN)
        guess = x0
        if guess is None and self.predictor is not None:
            guess = self.predictor.predict()
        if guess is None:
            guess = self._last_converged
        if guess is None:
            guess = self.iterate_spec.zeros()
        guess = np.asarray(guess, dtype=float)
        if guess.shape != (self.iterate_spec.size,):
            raise CouplingError(
                f"initial iterate shape {guess.shape} != ({self.iterate_spec.size},)"
            )
        while True:
            try:
                result = self.solver.solve_solution_step(
                    guess, self._operate, self.iterate_spec
                )
                break
            except (ProcessFailedError, RevokedError):
                if not self.allow_partial:
                    self._abort()
                    raise
                self._degrade()
        self._broadcast_live(CMD_COMMIT)
        if self.predictor is not None:
            self.predictor.update(result.x)
        self._last_converged = np.array(result.x)
        self.finalize_solution_step()
        return result

    def solve(self, n_steps: int) -> List[SolveResult]:
        """Drive *n_steps* coupling steps (the whole-run convenience)."""
        return [self.solve_time_step() for _ in range(n_steps)]

    def close(self) -> None:
        """Release every participant's command loop and finalize.

        Safe to call after a step aborted with an error: an in-flight
        coupling step is abandoned first so teardown always succeeds and
        the participants' command loops are released.
        """
        if self._in_step:
            self.finalize_solution_step()
        self._broadcast_live(CMD_CLOSE)
        self.finalize()

    # -- the operator the solver iterates ---------------------------------------

    def _operate(self, x: np.ndarray) -> np.ndarray:
        if self.solver.mode == "parallel":
            return self._operate_parallel(x)
        v = np.asarray(x, dtype=float)
        n = len(self._proxies)
        for i, proxy in enumerate(self._proxies):
            y = self._evaluate(proxy, v)
            v = self._map(proxy, y, self._proxies[(i + 1) % n])
        return v

    def _operate_parallel(self, z: np.ndarray) -> np.ndarray:
        proxies = self._proxies
        n = len(proxies)
        offsets = np.cumsum([0] + [p.spec.size for p in proxies])
        xs = [z[offsets[i] : offsets[i + 1]] for i in range(n)]
        # Post every evaluation before collecting any: the participants
        # compute concurrently (the Jacobi wave).
        for proxy, x in zip(proxies, xs):
            if proxy.live:
                self._post_eval(proxy, x)
        outs = [
            self._frozen_output(p) if not p.live else self._collect_eval(p)
            for p in proxies
        ]
        new_inputs: List[Optional[np.ndarray]] = [None] * n
        for i, proxy in enumerate(proxies):
            new_inputs[(i + 1) % n] = self._map(proxy, outs[i], proxies[(i + 1) % n])
        return np.concatenate(new_inputs)

    def _evaluate(self, proxy: _Proxy, x: np.ndarray) -> np.ndarray:
        if not proxy.live:
            return self._frozen_output(proxy)
        self._post_eval(proxy, x)
        return self._collect_eval(proxy)

    def _post_eval(self, proxy: _Proxy, x: np.ndarray) -> None:
        if x.shape != (proxy.spec.size,):
            raise CouplingError(
                f"participant {proxy.name!r}: input shape {x.shape} != "
                f"({proxy.spec.size},)"
            )
        self._command(proxy, CMD_EVAL, x)

    def _collect_eval(self, proxy: _Proxy) -> np.ndarray:
        try:
            parts = proxy.join.gather(None, root=proxy.root)
        except (ProcessFailedError, RevokedError):
            proxy.failed = True
            raise
        if self._is_root:
            y = np.concatenate(
                [np.asarray(p, dtype=float).ravel() for p in parts[: proxy.size]]
            )
        else:
            y = None
        if self._cpl_comm.size > 1:
            y = self._cpl_comm.bcast(y, root=0)
        proxy.last_output = y
        return y

    def _frozen_output(self, proxy: _Proxy) -> np.ndarray:
        if proxy.last_output is None:
            raise CouplingError(
                f"participant {proxy.name!r} died before producing any interface "
                "data; nothing to freeze"
            )
        return proxy.last_output

    def _map(self, proxy: _Proxy, y: np.ndarray, nxt: _Proxy) -> np.ndarray:
        out = proxy.to_next(y) if proxy.to_next is not None else y
        if out.shape != (nxt.spec.size,):
            raise CouplingError(
                f"participant {proxy.name!r} output maps to shape {out.shape}, "
                f"but {nxt.name!r} expects ({nxt.spec.size},)"
            )
        return out

    # -- protocol plumbing ------------------------------------------------------

    def _command(self, proxy: _Proxy, cmd: str, payload: Any = None) -> None:
        obj = (cmd, self._step, payload) if self._is_root else None
        try:
            proxy.join.bcast(obj, root=proxy.root)
        except (ProcessFailedError, RevokedError):
            proxy.failed = True
            raise

    def _broadcast_live(self, cmd: str) -> None:
        for proxy in self._proxies:
            if proxy.live:
                self._command(proxy, cmd)

    # -- fault handling ---------------------------------------------------------

    def _abort(self) -> None:
        """Fail fast: revoke everything so no survivor hangs in a
        collective waiting for commands that will never come."""
        for proxy in self._proxies:
            if proxy.join is not None:
                try:
                    proxy.join.revoke()
                except Exception:  # pragma: no cover - already torn down
                    pass
        try:
            self.mph.global_world.revoke()
        except Exception:  # pragma: no cover - already torn down
            pass

    def _degrade(self) -> None:
        """Shrink the world around a dead participant and restart the
        interrupted coupling iteration with the survivors."""
        self.mph.global_world.revoke()
        for proxy in self._proxies:
            if not proxy.live:
                continue
            if proxy.failed:
                proxy.join.revoke()  # wake its surviving ranks, if any
            else:
                self._command(proxy, CMD_SHRINK)
        mph2 = self.mph.shrink_world()
        self.mph = mph2
        self.degraded_events.append(tuple(mph2.dead_components))
        self._cpl_comm = mph2.component_comm(self.coupler_name)
        for proxy in self._proxies:
            if not proxy.live:
                continue
            old_size = proxy.size
            if proxy.name in mph2.dead_components:
                proxy.frozen = True
                proxy.join = None
                proxy.failed = False
                continue
            proxy.bind(mph2, self.coupler_name)
            if proxy.size < old_size or proxy.failed:
                # Partial rank loss: the state is suspect — freeze the
                # interface and release the survivors.
                self._command(proxy, CMD_CLOSE)
                proxy.frozen = True
                proxy.join = None
            proxy.failed = False
        # Restart the interrupted iteration on a clean criterion.
        self.solver.finalize_solution_step()
        self.solver.initialize_solution_step()
        self._broadcast_live(CMD_BEGIN)
