"""Timing primitives used by the benchmark harness and diagnostics.

Following the hpc-parallel optimisation workflow (measure first, then
optimise), these helpers provide cheap wall-clock measurement with proper
use of the monotonic high-resolution clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Timer:
    """A context-manager stopwatch around ``time.perf_counter``.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        #: Elapsed seconds of the most recent timed region.
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class CountingTimer:
    """Accumulates total time and call count across many timed regions.

    Useful for instrumenting repeated operations (e.g. per-step coupling
    exchanges) where a single elapsed figure hides the per-call cost.
    """

    total: float = 0.0
    count: int = 0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "CountingTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.total += time.perf_counter() - self._start
        self.count += 1
        self._start = None

    @property
    def mean(self) -> float:
        """Mean seconds per timed region (0.0 before the first region)."""
        return self.total / self.count if self.count else 0.0
