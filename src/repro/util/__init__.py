"""Small shared utilities: text parsing helpers and timing primitives."""

from repro.util.text import strip_comment, tokenize_line, parse_scalar
from repro.util.timing import Timer, CountingTimer

__all__ = [
    "strip_comment",
    "tokenize_line",
    "parse_scalar",
    "Timer",
    "CountingTimer",
]
