"""Fortran-flavoured text parsing helpers for MPH input files.

The MPH registration file (``processors_map.in``) and the MPMD command file
use a simple line-oriented format with ``!`` comments (the Fortran comment
character, as seen in the paper's Section 4.3 example) and whitespace-
separated fields.  These helpers centralise the lexing rules so the registry
parser and the command-file parser share one set of conventions.
"""

from __future__ import annotations

#: Characters that begin a to-end-of-line comment.  ``!`` is what the paper's
#: examples use; ``#`` is accepted as a convenience for Python users.
COMMENT_CHARS = ("!", "#")


def strip_comment(line: str) -> str:
    """Return *line* with any trailing ``!`` or ``#`` comment removed.

    >>> strip_comment("atmosphere 0 15   ! overlap with atm")
    'atmosphere 0 15'
    """
    cut = len(line)
    for ch in COMMENT_CHARS:
        pos = line.find(ch)
        if pos != -1:
            cut = min(cut, pos)
    return line[:cut].rstrip()


def tokenize_line(line: str) -> list[str]:
    """Split *line* into whitespace-separated tokens after comment removal.

    Blank and comment-only lines yield an empty list.
    """
    return strip_comment(line).split()


def parse_scalar(text: str) -> int | float | str:
    """Parse *text* as an int if possible, else a float, else leave a string.

    This mirrors the behaviour of MPH's Fortran ``MPH_get_argument`` family,
    where the type of the output variable selects the conversion; in Python
    we infer the natural type and let callers request a specific one.

    >>> parse_scalar("3")
    3
    >>> parse_scalar("4.5")
    4.5
    >>> parse_scalar("finite_volume")
    'finite_volume'
    """
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_proc_range(tokens: list[str]) -> tuple[int, int]:
    """Parse a ``low high`` processor range from the first two tokens.

    Raises ``ValueError`` if the tokens are not integers or the range is
    inverted or negative, with a message suitable for wrapping in a
    :class:`repro.errors.RegistryError`.
    """
    if len(tokens) < 2:
        raise ValueError("expected 'low high' processor range")
    try:
        low, high = int(tokens[0]), int(tokens[1])
    except ValueError as exc:
        raise ValueError(f"processor range must be integers, got {tokens[:2]!r}") from exc
    if low < 0 or high < low:
        raise ValueError(f"invalid processor range {low}..{high}")
    return low, high
