"""repro — reproduction of MPH (Ding & He, IPPS 2004).

MPH ("Multiple Program-component Handshaking") integrates stand-alone and/or
semi-independent program components into a comprehensive simulation system on
distributed-memory architectures.  This package reproduces the complete MPH
library together with every substrate it depends on:

``repro.mpi``
    A simulated MPI implementation (threads as MPI processes, pickled
    value-semantics messaging, communicators, groups, collectives) whose API
    mirrors mpi4py.
``repro.launcher``
    An MPMD job-launch simulator: command files, rank-assignment policies,
    SMP node topology, and the shared ``COMM_WORLD`` startup condition that
    MPH's handshake resolves.
``repro.core``
    MPH itself: the registration file, the five execution modes (SCSE, MCSE,
    SCME, MCME, MIME), component handshaking, ``comm_join``, inter-component
    messaging, inquiry functions, per-instance argument passing, multi-channel
    output redirection, ensemble statistics, and dynamic migration.
``repro.climate``
    A CCSM-style toy coupled climate model (atmosphere / ocean / land /
    sea-ice / flux coupler) exercising MPH the way the paper's motivating
    application does.
``repro.baselines``
    The comparison approaches the paper discusses: a PCM-style hardwired
    monolithic single executable, a conventional independent-jobs ensemble,
    and file-based coupling.
"""

from repro._version import __version__
from repro.errors import (
    ReproError,
    MPIError,
    MPHError,
    RegistryError,
    LaunchError,
    DeadlockError,
    TransportError,
)
from repro.core.registry import Registry
from repro.core.mph import MPH, components_setup, multi_instance
from repro.core.session import (
    Session,
    components_session,
    instance_session,
    pool_session,
)
from repro.errors import SessionError
from repro.launcher.job import MpmdJob, mph_run

__all__ = [
    "__version__",
    "ReproError",
    "MPIError",
    "MPHError",
    "RegistryError",
    "LaunchError",
    "DeadlockError",
    "TransportError",
    "SessionError",
    "Registry",
    "MPH",
    "components_setup",
    "multi_instance",
    "Session",
    "components_session",
    "instance_session",
    "pool_session",
    "MpmdJob",
    "mph_run",
]
