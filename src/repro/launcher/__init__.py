"""MPMD job-launch simulator: command files, rank maps, SMP topology, jobs.

This package reproduces the *environment* MPH runs in — the vendor job
launchers of Section 6 of the paper.  It provides:

* :mod:`repro.launcher.cmdfile` — parsing of ``poe -cmdfile`` task files
  and ``mpirun`` MPMD colon specs;
* :mod:`repro.launcher.rankmap` — block and round-robin global-rank
  assignment (the handshake must be invariant to the launcher's choice);
* :mod:`repro.launcher.smp` — SMP node topology with the no-overlap
  allocation policy and node carving;
* :mod:`repro.launcher.job` — :class:`MpmdJob`, which loads executables
  onto one shared ``COMM_WORLD`` exactly as real MPMD launchers do.
"""

from repro.launcher.cmdfile import (
    ExecutableSpec,
    parse_mpirun_spec,
    parse_poe_cmdfile,
    resolve_programs,
)
from repro.launcher.job import JobEnv, JobResult, MpmdJob, mph_run
from repro.launcher.rankmap import POLICIES, assign_ranks, executable_of_rank
from repro.launcher.smp import CpuSlot, Machine, Placement, SmpNode

__all__ = [
    "ExecutableSpec",
    "parse_mpirun_spec",
    "parse_poe_cmdfile",
    "resolve_programs",
    "JobEnv",
    "JobResult",
    "MpmdJob",
    "mph_run",
    "POLICIES",
    "assign_ranks",
    "executable_of_rank",
    "CpuSlot",
    "Machine",
    "Placement",
    "SmpNode",
]
