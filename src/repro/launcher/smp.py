"""SMP cluster topology and the resource-allocation policy of Section 2.

The paper's platforms dictate two rules that shape MPH's whole design:

* "Executables are not allowed to overlap on processors, i.e. each
  processor or MPI process is exclusively owned by an executable";
* "On clusters of SMP architectures, it is allowed that two executables
  reside on one SMP node, each occupying different sets of processors."

:class:`Machine` models a cluster of SMP nodes and places executables under
those rules.  It also implements the paper's future-work item (a): "flexible
way to handle SMP nodes, i.e. recognizing a 16-cpu SMP node could be carved
into different number of MPI tasks" — see :meth:`Machine.carve`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import AllocationError


@dataclass(frozen=True)
class CpuSlot:
    """One CPU of one node: the unit of exclusive ownership."""

    node: int
    cpu: int


@dataclass
class SmpNode:
    """An SMP node: ``ncpus`` processors sharing memory.

    ``tasks`` is the number of MPI tasks this node is carved into; by
    default one task per CPU.  Carving into fewer tasks models hybrid
    MPI+threads executables that want whole-node slices.
    """

    node_id: int
    ncpus: int
    tasks: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.ncpus < 1:
            raise AllocationError(f"node {self.node_id}: ncpus must be >= 1, got {self.ncpus}")
        if self.tasks == -1:
            self.tasks = self.ncpus
        if not 1 <= self.tasks <= self.ncpus:
            raise AllocationError(
                f"node {self.node_id}: cannot carve {self.ncpus} cpus into {self.tasks} tasks"
            )

    @property
    def cpus_per_task(self) -> int:
        """CPUs owned by each MPI task on this node (floor division; the
        remainder CPUs are left to the node's last task)."""
        return self.ncpus // self.tasks

    def task_slots(self) -> list[tuple[CpuSlot, ...]]:
        """The CPU slots grouped per MPI task after carving."""
        per = self.cpus_per_task
        groups: list[tuple[CpuSlot, ...]] = []
        cpu = 0
        for t in range(self.tasks):
            width = per if t < self.tasks - 1 else self.ncpus - cpu
            groups.append(tuple(CpuSlot(self.node_id, cpu + i) for i in range(width)))
            cpu += width
        return groups


@dataclass
class Placement:
    """Result of placing a job's executables onto a machine."""

    #: ``task_cpus[world_rank]`` — CPU slots owned by that MPI task.
    task_cpus: list[tuple[CpuSlot, ...]]
    #: ``exe_of_rank[world_rank]`` — executable index owning that task.
    exe_of_rank: list[int]

    def node_of_rank(self, rank: int) -> int:
        """Node hosting a world rank."""
        return self.task_cpus[rank][0].node

    def executables_on_node(self, node_id: int) -> set[int]:
        """Which executables have at least one task on *node_id*."""
        return {
            self.exe_of_rank[r]
            for r, cpus in enumerate(self.task_cpus)
            if cpus[0].node == node_id
        }

    def validate_exclusive(self) -> None:
        """Assert the platform policy: every CPU owned by at most one task."""
        seen: dict[CpuSlot, int] = {}
        for rank, cpus in enumerate(self.task_cpus):
            for slot in cpus:
                if slot in seen:
                    raise AllocationError(
                        f"cpu {slot} owned by both world ranks {seen[slot]} and {rank}"
                    )
                seen[slot] = rank


class Machine:
    """A cluster of SMP nodes with the paper's allocation policy."""

    def __init__(self, nodes: Sequence[SmpNode]):
        if not nodes:
            raise AllocationError("a machine needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise AllocationError(f"duplicate node ids: {ids}")
        self.nodes = list(nodes)

    @classmethod
    def homogeneous(cls, n_nodes: int, cpus_per_node: int, tasks_per_node: int = -1) -> "Machine":
        """Convenience constructor for a uniform cluster."""
        return cls(
            [SmpNode(i, cpus_per_node, tasks_per_node) for i in range(n_nodes)]
        )

    @property
    def total_tasks(self) -> int:
        """MPI tasks available after carving every node."""
        return sum(n.tasks for n in self.nodes)

    def carve(self, node_id: int, tasks: int) -> None:
        """Re-carve one node into a different number of MPI tasks
        (future-work item (a) of the paper)."""
        for n in self.nodes:
            if n.node_id == node_id:
                if not 1 <= tasks <= n.ncpus:
                    raise AllocationError(
                        f"node {node_id}: cannot carve {n.ncpus} cpus into {tasks} tasks"
                    )
                n.tasks = tasks
                return
        raise AllocationError(f"no node with id {node_id}")

    def place(self, exe_sizes: Sequence[int], assignment: Sequence[Sequence[int]]) -> Placement:
        """Place a job on the machine.

        Tasks are laid out node-by-node in world-rank order (the standard
        launcher behaviour).  Executables may share a node but never a CPU;
        :class:`AllocationError` is raised when the job does not fit.

        Parameters
        ----------
        exe_sizes :
            Process counts per executable.
        assignment :
            World-rank assignment from
            :func:`repro.launcher.rankmap.assign_ranks`.
        """
        total = sum(exe_sizes)
        slots: list[tuple[CpuSlot, ...]] = []
        for node in self.nodes:
            slots.extend(node.task_slots())
        if total > len(slots):
            raise AllocationError(
                f"job needs {total} MPI tasks but the machine offers {len(slots)}"
            )
        exe_of_rank = [-1] * total
        for exe, ranks in enumerate(assignment):
            for r in ranks:
                if exe_of_rank[r] != -1:
                    raise AllocationError(
                        f"world rank {r} assigned to executables {exe_of_rank[r]} and {exe}"
                    )
                exe_of_rank[r] = exe
        if any(e == -1 for e in exe_of_rank):
            missing = [r for r, e in enumerate(exe_of_rank) if e == -1]
            raise AllocationError(f"world ranks {missing} assigned to no executable")
        placement = Placement(task_cpus=slots[:total], exe_of_rank=exe_of_rank)
        placement.validate_exclusive()
        return placement
