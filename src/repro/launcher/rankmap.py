"""Global-rank assignment policies for MPMD jobs.

When a job with *K* executables starts, "all executables share the same
MPI_Comm_World, but with different logical processor IDs.  How the processor
IDs are assigned to each executable depends on the job launching commands"
(paper, Section 6).  MPH must therefore work under *any* assignment; this
module provides the two policies real launchers use so tests can assert the
handshake result is invariant to the choice (experiment E13):

* ``block`` — executable *i* receives a contiguous block of ranks, in
  command-file order (IBM ``poe`` default);
* ``round_robin`` — ranks are dealt cyclically across executables until
  each is full (the ``-labelio``-style cyclic placement of some launchers).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import LaunchError

#: Names of the available policies.
POLICIES = ("block", "round_robin")


def assign_ranks(sizes: Sequence[int], policy: str = "block") -> list[list[int]]:
    """Assign world ranks ``0..sum(sizes)-1`` to executables.

    Parameters
    ----------
    sizes :
        Process count of each executable, in command-file order.
    policy :
        One of :data:`POLICIES`.

    Returns
    -------
    list of list of int
        ``result[i]`` is the sorted list of world ranks owned by executable
        *i*.  Executable-local processor index *p* corresponds to
        ``result[i][p]`` — i.e. local indices follow ascending world rank,
        which is the convention every real launcher documents.

    Raises
    ------
    LaunchError
        On an unknown policy or a non-positive executable size.
    """
    for i, n in enumerate(sizes):
        if n < 1:
            raise LaunchError(f"executable {i} requested {n} processes; need >= 1")
    total = sum(sizes)
    if policy == "block":
        out: list[list[int]] = []
        offset = 0
        for n in sizes:
            out.append(list(range(offset, offset + n)))
            offset += n
        return out
    if policy == "round_robin":
        out = [[] for _ in sizes]
        remaining = list(sizes)
        exe = 0
        for rank in range(total):
            # Find the next executable that still needs processes.
            for _ in range(len(sizes)):
                if remaining[exe] > 0:
                    break
                exe = (exe + 1) % len(sizes)
            out[exe].append(rank)
            remaining[exe] -= 1
            exe = (exe + 1) % len(sizes)
        return out
    raise LaunchError(f"unknown rank-assignment policy {policy!r}; expected one of {POLICIES}")


def executable_of_rank(assignment: Sequence[Sequence[int]], world_rank: int) -> tuple[int, int]:
    """Invert an assignment: return ``(executable index, local index)`` of
    *world_rank*.

    Raises
    ------
    LaunchError
        If the rank belongs to no executable (cannot happen for assignments
        produced by :func:`assign_ranks`).
    """
    for exe, ranks in enumerate(assignment):
        try:
            return exe, list(ranks).index(world_rank)
        except ValueError:
            continue
    raise LaunchError(f"world rank {world_rank} belongs to no executable")
