"""MPMD launch specifications: command files and mpirun-style colon specs.

The paper (Section 6): "on IBM SP, we use the MPMD mode, ``-pgmmodel mpmd``
to launch such a job.  Different executables are specified in a command file
using ``-cmdfile``.  Similar commands exist for Compaq Alpha clusters and
SGI Origin."

Two concrete formats are parsed here:

* **poe command file** — one line *per MPI task* naming the program that
  task runs (optionally with arguments).  Consecutive identical lines form
  one executable;
* **mpirun colon spec** — ``-np 16 atm : -np 8 ocn arg1`` segments.

Since this reproduction runs "executables" as Python callables, a parsed
spec holds program *names*; :func:`resolve_programs` binds names to
callables through a program registry, the stand-in for ``$PATH`` lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import LaunchError
from repro.util.text import tokenize_line


@dataclass(frozen=True)
class ExecutableSpec:
    """One executable of an MPMD job: program name, task count, argv."""

    program: str
    nprocs: int
    argv: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.program:
            raise LaunchError("executable spec needs a program name")
        if self.nprocs < 1:
            raise LaunchError(
                f"executable {self.program!r} requested {self.nprocs} processes; need >= 1"
            )


def parse_poe_cmdfile(text: str) -> list[ExecutableSpec]:
    """Parse an IBM-``poe``-style command file (one line per MPI task).

    >>> specs = parse_poe_cmdfile('''
    ... atm
    ... atm
    ... ocn -quick
    ... ''')
    >>> [(s.program, s.nprocs) for s in specs]
    [('atm', 2), ('ocn', 1)]
    """
    specs: list[ExecutableSpec] = []
    for raw in text.splitlines():
        tokens = tokenize_line(raw)
        if not tokens:
            continue
        program, argv = tokens[0], tuple(tokens[1:])
        if specs and specs[-1].program == program and specs[-1].argv == argv:
            last = specs[-1]
            specs[-1] = ExecutableSpec(last.program, last.nprocs + 1, last.argv)
        else:
            specs.append(ExecutableSpec(program, 1, argv))
    if not specs:
        raise LaunchError("command file lists no tasks")
    return specs


def parse_mpirun_spec(spec: str) -> list[ExecutableSpec]:
    """Parse an ``mpirun`` MPMD colon spec.

    >>> specs = parse_mpirun_spec("-np 16 atm : -np 8 ocn -fast")
    >>> [(s.program, s.nprocs, s.argv) for s in specs]
    [('atm', 16, ()), ('ocn', 8, ('-fast',))]
    """
    specs: list[ExecutableSpec] = []
    for segment in spec.split(":"):
        tokens = segment.split()
        if not tokens:
            raise LaunchError(f"empty segment in mpirun spec {spec!r}")
        if tokens[0] != "-np" and tokens[0] != "-n":
            raise LaunchError(f"segment must start with -np/-n: {segment.strip()!r}")
        if len(tokens) < 3:
            raise LaunchError(f"segment needs '-np <count> <program>': {segment.strip()!r}")
        try:
            nprocs = int(tokens[1])
        except ValueError as exc:
            raise LaunchError(f"bad process count {tokens[1]!r} in {segment.strip()!r}") from exc
        specs.append(ExecutableSpec(tokens[2], nprocs, tuple(tokens[3:])))
    return specs


#: A program registry maps program names to Python callables with the
#: executable entry-point signature ``fn(comm_world, env) -> result``.
ProgramRegistry = Mapping[str, Callable]


def resolve_programs(
    specs: Sequence[ExecutableSpec], programs: ProgramRegistry
) -> list[Callable]:
    """Bind each spec's program name to its callable.

    Raises
    ------
    LaunchError
        Naming the missing program and the available ones — the analogue of
        a shell's "command not found".
    """
    fns: list[Callable] = []
    for spec in specs:
        fn = programs.get(spec.program)
        if fn is None:
            raise LaunchError(
                f"program {spec.program!r} not found; registry has {sorted(programs)}"
            )
        fns.append(fn)
    return fns
