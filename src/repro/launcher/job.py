"""MPMD job execution: the environment MPH's handshake is born into.

An :class:`MpmdJob` reproduces the startup condition of Section 6 of the
paper: *K* executables are loaded onto disjoint subsets of one world, every
process sees only the shared ``COMM_WORLD`` and its own global rank, and no
process knows which executables occupy the other ranks.  Resolving that
ignorance is exactly MPH's job.

"Executables" here are Python callables with the signature
``fn(comm_world, env) -> result`` where *env* is a per-process
:class:`JobEnv` carrying the program's argv, the job's environment
variables, the registration file, and the multi-channel output manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

from repro.errors import LaunchError
from repro.launcher.cmdfile import ExecutableSpec, ProgramRegistry, resolve_programs
from repro.launcher.rankmap import assign_ranks
from repro.launcher.smp import Machine, Placement
from repro.mpi.executor import ProcResult, run_world
from repro.mpi.world import World, WorldConfig
from repro.core.redirect import MultiChannelOutput


@dataclass
class JobEnv:
    """Per-process view of the job environment (argv, env vars, registry).

    Attributes
    ----------
    program :
        Name of the executable this process runs.
    exe_index :
        Index of the executable in command-file order.
    local_index :
        Executable-local processor index of this process (ascending world
        rank within the executable — the launcher convention).
    argv :
        Command-line arguments of the executable.
    vars :
        The job's environment variables (e.g. ``MPH_LOG_<NAME>`` overrides
        for Section 5.4 output redirection).  Shared, treat as read-only.
    workdir :
        Directory for log files and other job outputs.
    registry :
        The MPH registration input — a :class:`repro.core.registry.Registry`,
        a path, or raw text; handed to the handshake unchanged.
    output :
        The job's multi-channel output manager (Section 5.4).
    """

    program: str
    exe_index: int
    local_index: int
    argv: tuple[str, ...] = ()
    vars: dict[str, str] = field(default_factory=dict)
    workdir: Optional[Path] = None
    registry: Any = None
    output: Optional[MultiChannelOutput] = None


#: Accepted "executable" inputs for :class:`MpmdJob`: a full spec (resolved
#: through a program registry), or ``(callable, nprocs)`` /
#: ``(callable, nprocs, argv)`` shorthand.
ExecutableLike = Union[ExecutableSpec, tuple]


@dataclass
class JobResult:
    """Outcome of an MPMD job."""

    #: Per-world-rank outcomes.
    procs: list[ProcResult]
    #: Executable specs in command-file order.
    specs: list[ExecutableSpec]
    #: ``assignment[i]`` — world ranks of executable *i*.
    assignment: list[list[int]]
    #: Machine placement, when a machine was supplied.
    placement: Optional[Placement] = None

    def values(self) -> list[Any]:
        """Per-world-rank return values."""
        return [p.value for p in self.procs]

    def failures(self) -> list[tuple[int, str, BaseException]]:
        """Every failed process as ``(world_rank, program, exception)``.

        Covers failures that do **not** abort the job — e.g. a rank dead
        by survivable fail-stop crash while its siblings completed — so
        callers (``mphrun``) can refuse to report success when any
        component failed.
        """
        out = []
        for exe_index, ranks in enumerate(self.assignment):
            program = self.specs[exe_index].program
            for rank in ranks:
                exc = self.procs[rank].exception
                if exc is not None:
                    out.append((rank, program, exc))
        return sorted(out)

    def by_executable(self, which: Union[int, str]) -> list[Any]:
        """Return values of one executable's processes, in local order.

        *which* is the executable index or program name (the first match
        when several executables share a name).
        """
        if isinstance(which, str):
            for i, spec in enumerate(self.specs):
                if spec.program == which:
                    which = i
                    break
            else:
                raise LaunchError(f"no executable named {which!r}")
        return [self.procs[r].value for r in self.assignment[which]]


class MpmdJob:
    """A multi-executable job on one simulated world.

    Parameters
    ----------
    executables :
        The job's executables, in command-file order.  Each item is an
        :class:`ExecutableSpec` (requires *programs* for name resolution)
        or a ``(callable, nprocs[, argv])`` tuple.
    programs :
        Program registry for resolving spec names to callables.
    rank_policy :
        Global-rank assignment policy (see :mod:`repro.launcher.rankmap`).
    machine :
        Optional :class:`~repro.launcher.smp.Machine`; when given, the job
        is placed under the platform allocation policy before running and
        the placement is validated and returned in the result.
    config :
        :class:`~repro.mpi.world.WorldConfig` for the substrate.
    env_vars, workdir, registry :
        Propagated into every process's :class:`JobEnv`.
    """

    def __init__(
        self,
        executables: Sequence[ExecutableLike],
        *,
        programs: Optional[ProgramRegistry] = None,
        rank_policy: str = "block",
        machine: Optional[Machine] = None,
        config: Optional[WorldConfig] = None,
        env_vars: Optional[dict[str, str]] = None,
        workdir: Optional[Union[str, Path]] = None,
        registry: Any = None,
        namespace: Optional[str] = None,
        log_dir: Optional[Union[str, Path]] = None,
    ):
        if not executables:
            raise LaunchError("an MPMD job needs at least one executable")
        self.specs: list[ExecutableSpec] = []
        self.fns: list[Callable] = []
        pending_specs: list[ExecutableSpec] = []
        for item in executables:
            if isinstance(item, ExecutableSpec):
                pending_specs.append(item)
                self.specs.append(item)
                self.fns.append(None)  # type: ignore[arg-type] - filled below
            elif isinstance(item, tuple) and 2 <= len(item) <= 3 and callable(item[0]):
                fn, nprocs = item[0], item[1]
                argv = tuple(item[2]) if len(item) == 3 else ()
                name = getattr(fn, "__name__", "program")
                self.specs.append(ExecutableSpec(name, nprocs, argv))
                self.fns.append(fn)
            else:
                raise LaunchError(
                    f"cannot interpret executable {item!r}; pass an ExecutableSpec or "
                    "(callable, nprocs[, argv])"
                )
        if pending_specs:
            if programs is None:
                raise LaunchError(
                    "ExecutableSpec entries need a `programs` registry for name resolution"
                )
            resolved = iter(resolve_programs(pending_specs, programs))
            self.fns = [fn if fn is not None else next(resolved) for fn in self.fns]

        self.rank_policy = rank_policy
        self.machine = machine
        self.config = config
        self.env_vars = dict(env_vars or {})
        self.workdir = Path(workdir) if workdir is not None else None
        self.registry = registry
        #: Optional per-job namespace for the process backend's rendezvous
        #: directory and shm segments (see
        #: :func:`repro.mpi.procbackend.rendezvous_prefix`).
        self.namespace = namespace
        #: Process backend only: directory for per-process
        #: ``<program>.<local_index>.log`` files (OS-level fd redirection).
        self.log_dir = str(log_dir) if log_dir is not None else None
        self.output = MultiChannelOutput()

    @property
    def world_size(self) -> int:
        """Total MPI processes across all executables."""
        return sum(s.nprocs for s in self.specs)

    def run(self, timeout: float = 120.0) -> JobResult:
        """Launch the job and run it to completion.

        With ``config.backend == "process"`` every rank is a forked OS
        process over the socket transport
        (:func:`repro.mpi.procbackend.run_procs`): components genuinely
        own their stdout (§5.4 redirection becomes a real ``dup2``), and
        a rank that dies without reporting fails the job with its
        component named.
        """
        sizes = [s.nprocs for s in self.specs]
        assignment = assign_ranks(sizes, self.rank_policy)
        placement = self.machine.place(sizes, assignment) if self.machine else None

        rank_fns: list[Callable] = [None] * self.world_size  # type: ignore[list-item]
        process_backend = self.config is not None and self.config.backend == "process"
        labels: list[str] = [""] * self.world_size
        for exe_index, ranks in enumerate(assignment):
            spec, fn = self.specs[exe_index], self.fns[exe_index]
            for local_index, world_rank in enumerate(ranks):
                env = JobEnv(
                    program=spec.program,
                    exe_index=exe_index,
                    local_index=local_index,
                    argv=spec.argv,
                    vars=self.env_vars,
                    workdir=self.workdir,
                    registry=self.registry,
                    output=None if process_backend else self.output,
                )
                labels[world_rank] = f"{spec.program}.{local_index}"
                bind = _bind_process if process_backend else _bind
                rank_fns[world_rank] = bind(fn, env)

        if process_backend:
            from repro.mpi.procbackend import run_procs

            procs = run_procs(
                self.world_size,
                rank_fns,
                config=self.config,
                timeout=timeout,
                labels=labels,
                namespace=self.namespace,
                log_dir=self.log_dir,
            )
        else:
            world = World(self.world_size, self.config)
            with self.output:
                procs = run_world(world, rank_fns, timeout=timeout)
        return JobResult(procs=procs, specs=self.specs, assignment=assignment, placement=placement)


def _bind(fn: Callable, env: JobEnv) -> Callable:
    """Close over this process's environment (late-binding-safe)."""

    def entry(comm):
        return fn(comm, env)

    return entry


def _bind_process(fn: Callable, env: JobEnv) -> Callable:
    """Process-backend binding: runs in the forked child, where §5.4
    output redirection is real fd-level redirection."""

    def entry(comm):
        from repro.core.redirect import ProcessOutput

        env.output = ProcessOutput()
        return fn(comm, env)

    return entry


#: Program name under which ``mphrun --pool N`` registers its reserve
#: ranks (never resolved against the user's ``--programs`` registry).
POOL_PROGRAM = "__pool__"


def reserve_pool_program(world, env) -> dict:
    """Entry point of an ``mphrun --pool N`` reserve rank.

    Joins the init exchange as a reserve process
    (:func:`repro.core.session.pool_session`) and parks in
    :meth:`~repro.core.session.Session.await_assignment` until an elastic
    ``grow`` admits it into a component or ``release_pool`` dismisses it.
    Returns a summary dict so launcher results can tell the two fates
    apart: ``{"pool": "released"}`` for a dismissal, or ``{"pool":
    "assigned", "components": ..., "exe_id": ..., "epoch": ...}`` after
    admission (the admitted process simply reports its assignment; what
    it does next is up to the job's active components).
    """
    from repro.core.session import pool_session

    session = pool_session(world, registry=env.registry, env=env)
    assignment = session.await_assignment()
    if assignment is None:
        return {"pool": "released"}
    return {
        "pool": "assigned",
        "components": list(assignment.components),
        "exe_id": assignment.exe_id,
        "epoch": assignment.epoch,
    }


def mph_run(
    executables: Sequence[ExecutableLike],
    registry: Any = None,
    **job_kwargs,
) -> JobResult:
    """Convenience one-call launcher: build an :class:`MpmdJob` carrying
    *registry* and run it.

    >>> from repro import mph_run, components_setup
    >>> def atm(world, env):
    ...     mph = components_setup(world, "atmosphere", env=env)
    ...     return mph.comp_name()
    >>> def ocn(world, env):
    ...     mph = components_setup(world, "ocean", env=env)
    ...     return mph.comp_name()
    >>> reg = "BEGIN\\natmosphere\\nocean\\nEND"
    >>> result = mph_run([(atm, 2), (ocn, 2)], registry=reg)
    >>> result.by_executable("atm")
    ['atmosphere', 'atmosphere']
    """
    timeout = job_kwargs.pop("timeout", 120.0)
    job = MpmdJob(executables, registry=registry, **job_kwargs)
    return job.run(timeout=timeout)
