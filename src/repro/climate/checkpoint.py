"""Checkpoint/restart for component models.

Long climate integrations run as chains of restarted jobs; a coupled
system is only trustworthy if a restart is *exact* — the chained run must
reproduce the uninterrupted run bitwise.  This module provides that for
the toy CCSM: each component's local processor 0 writes one checkpoint
file (full prognostic fields + step counter + energy-budget accumulators),
and restart redistributes the state across however many processes the new
job uses (decomposition independence makes cross-proc-count restart exact
too).

Files are ``.npz`` — self-describing numpy archives, no pickle on the
restart path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.climate.components import ComponentModel, SeaIceModel
from repro.errors import ReproError

#: Format version written into every checkpoint.
FORMAT_VERSION = 1


def state_of(model: ComponentModel) -> dict:
    """Collect a component's full state on its local processor 0.

    Collective over the component communicator; returns the state dict on
    local rank 0 and ``None`` elsewhere.
    """
    full = model.temperature.gather_global(root=0)
    state = None
    if model.comm.rank == 0:
        state = {
            "version": np.int64(FORMAT_VERSION),
            "kind": model.kind,
            "nlat": np.int64(model.grid.nlat),
            "nlon": np.int64(model.grid.nlon),
            "steps_taken": np.int64(model.steps_taken),
            "current_time": np.float64(model.current_time),
            "temperature": full,
            "budget": np.array(
                [
                    model.budget.solar_in,
                    model.budget.olr_out,
                    model.budget.coupling_in,
                    model.budget.diffusion_residual,
                ]
            ),
        }
    if isinstance(model, SeaIceModel):
        # Assemble by global slices so 1-D and 2-D decompositions share
        # the checkpoint format.
        field = model.temperature
        pieces = field.comm.gather((field.local_slices, model.thickness), root=0)
        if field.comm.rank == 0:
            assert pieces is not None
            full = np.zeros(model.grid.shape)
            for (rs, cs), block in pieces:
                full[rs, cs] = block
            state["thickness"] = full
    return state


def save(model: ComponentModel, directory: Union[str, Path], name: str) -> Path:
    """Write the component's checkpoint (collective; local rank 0 writes).

    Returns the checkpoint path (on every rank, for convenience).
    """
    directory = Path(directory)
    path = directory / f"{name}.ckpt.npz"
    state = state_of(model)
    if model.comm.rank == 0:
        directory.mkdir(parents=True, exist_ok=True)
        kind = state.pop("kind")
        np.savez(path, kind=np.bytes_(kind.encode()), **state)
    model.comm.barrier()  # nobody proceeds until the file is on disk
    return path


def restore(model: ComponentModel, directory: Union[str, Path], name: str) -> int:
    """Load a checkpoint into *model* (collective); returns the restored
    step counter.

    Raises
    ------
    ReproError
        On a missing file, wrong grid shape, or component-kind mismatch —
        the usual ways a restart chain goes wrong.
    """
    directory = Path(directory)
    path = directory / f"{name}.ckpt.npz"
    payload = None
    if model.comm.rank == 0:
        if not path.exists():
            raise ReproError(f"no checkpoint {path.name} in {directory}")
        with np.load(path) as data:
            payload = {key: data[key] for key in data.files}
        version = int(payload["version"])
        if version != FORMAT_VERSION:
            raise ReproError(
                f"checkpoint {path.name} has format version {version}; this build "
                f"reads version {FORMAT_VERSION}"
            )
        kind = bytes(payload["kind"]).decode()
        if kind != model.kind:
            raise ReproError(
                f"checkpoint {path.name} holds a {kind!r} component, not {model.kind!r}"
            )
        shape = (int(payload["nlat"]), int(payload["nlon"]))
        if shape != model.grid.shape:
            raise ReproError(
                f"checkpoint grid {shape} != model grid {model.grid.shape}"
            )
    payload = model.comm.bcast(payload, root=0)

    model.temperature.set_from_global(
        payload["temperature"] if model.comm.rank == 0 else None, root=0
    )
    # set_from_global scatters from rank 0; the bcast above also gives every
    # rank the scalars it needs without a second collective.
    model.steps_taken = int(payload["steps_taken"])
    model.current_time = float(payload["current_time"])
    budget = payload["budget"]
    model.budget.solar_in = float(budget[0])
    model.budget.olr_out = float(budget[1])
    model.budget.coupling_in = float(budget[2])
    model.budget.diffusion_residual = float(budget[3])
    if isinstance(model, SeaIceModel):
        if "thickness" not in payload:
            raise ReproError(f"checkpoint {path.name} lacks the sea-ice thickness field")
        rs, cs = model.temperature.local_slices
        model.thickness = np.array(payload["thickness"][rs, cs])
    return model.steps_taken
