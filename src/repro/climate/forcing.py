"""Time-dependent forcing: seasonal insolation and greenhouse scenarios.

The static EBM insolation of :func:`repro.climate.components.insolation`
is the annual mean; real CCSM runs are driven by the seasonal cycle and by
greenhouse-gas scenarios.  This module provides both:

* :class:`SeasonalForcing` — daily-mean top-of-atmosphere insolation from
  the standard astronomical formula (solar declination from obliquity,
  hour-angle integration, polar day/night handled exactly);
* :class:`CO2Scenario` — a CO2 concentration path converted to the usual
  logarithmic radiative forcing (~4 W m⁻² per doubling), used by the
  global-warming example to perturb the OLR intercept.

Both are pure functions of time, vectorised over latitude — components
evaluate them once per step on their local latitude band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

#: Seconds in the model year (365 days).
YEAR_SECONDS = 365.0 * 86400.0


@dataclass(frozen=True)
class SeasonalForcing:
    """Daily-mean insolation with a seasonal cycle.

    Parameters
    ----------
    solar_constant :
        TOA irradiance at normal incidence [W m^-2].
    obliquity_deg :
        Axial tilt; 0 switches seasons off (useful in tests).
    year_seconds :
        Length of the model year; time 0 is the northern vernal equinox.
    """

    solar_constant: float = 1361.0
    obliquity_deg: float = 23.44
    year_seconds: float = YEAR_SECONDS

    def __post_init__(self) -> None:
        if self.year_seconds <= 0:
            raise ReproError(f"year_seconds must be positive, got {self.year_seconds}")
        if not 0.0 <= self.obliquity_deg < 90.0:
            raise ReproError(f"obliquity must be in [0, 90) degrees, got {self.obliquity_deg}")

    def declination(self, t: float) -> float:
        """Solar declination [radians] at time *t* seconds (circular-orbit
        approximation: δ = ε sin(2πt/T), t=0 at vernal equinox)."""
        eps = np.deg2rad(self.obliquity_deg)
        return float(eps * np.sin(2.0 * np.pi * t / self.year_seconds))

    def daily_insolation(self, lat_deg: np.ndarray, t: float) -> np.ndarray:
        """Daily-mean TOA insolation [W m^-2] at latitude(s) *lat_deg*.

        The standard formula
        ``Q = (S0/π)(h0 sinφ sinδ + cosφ cosδ sin h0)`` with the sunset
        hour angle ``cos h0 = -tanφ tanδ`` clipped for polar day (h0=π)
        and polar night (h0=0).
        """
        phi = np.deg2rad(np.asarray(lat_deg, dtype=float))
        delta = self.declination(t)
        cos_h0 = np.clip(-np.tan(phi) * np.tan(delta), -1.0, 1.0)
        h0 = np.arccos(cos_h0)
        q = (self.solar_constant / np.pi) * (
            h0 * np.sin(phi) * np.sin(delta) + np.cos(phi) * np.cos(delta) * np.sin(h0)
        )
        return np.clip(q, 0.0, None)

    def annual_mean(self, lat_deg: np.ndarray, samples: int = 73) -> np.ndarray:
        """Annual-mean insolation by uniform time sampling (diagnostic)."""
        times = np.linspace(0.0, self.year_seconds, samples, endpoint=False)
        return np.mean([self.daily_insolation(lat_deg, t) for t in times], axis=0)


@dataclass(frozen=True)
class CO2Scenario:
    """A CO2 concentration path and its radiative forcing.

    ``concentration(t) = initial_ppm * (1 + rate_per_year)^(t/year)`` — the
    classic "1% per year" transient scenario is
    ``CO2Scenario(rate_per_year=0.01)``.
    """

    initial_ppm: float = 380.0
    rate_per_year: float = 0.0
    #: Forcing per CO2 doubling [W m^-2] (IPCC canonical ~3.7–4).
    forcing_per_doubling: float = 4.0
    year_seconds: float = YEAR_SECONDS

    def __post_init__(self) -> None:
        if self.initial_ppm <= 0:
            raise ReproError(f"initial_ppm must be positive, got {self.initial_ppm}")

    def concentration(self, t: float) -> float:
        """CO2 concentration [ppm] at time *t* seconds."""
        years = t / self.year_seconds
        return self.initial_ppm * (1.0 + self.rate_per_year) ** years

    def forcing(self, t: float) -> float:
        """Greenhouse radiative forcing [W m^-2] relative to t=0."""
        return self.forcing_per_doubling * np.log2(self.concentration(t) / self.initial_ppm)

    def years_to_doubling(self) -> float:
        """Years until the concentration doubles (inf for a flat path)."""
        if self.rate_per_year <= 0:
            return float("inf")
        return float(np.log(2.0) / np.log(1.0 + self.rate_per_year))
