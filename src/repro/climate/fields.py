"""Distributed fields: latitude-block arrays with halo exchange.

A :class:`DistributedField` holds one process's latitude band of a global
``(nlat, nlon)`` field, plus the collective operations the component models
need: halo exchange for the diffusion stencil, gather/scatter against the
component's local processor 0 (how fields reach the coupler), and
area-weighted global reductions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.climate.grid import Decomposition, LatLonGrid
from repro.errors import ReproError
from repro.mpi.comm import Comm
from repro.mpi.constants import PROC_NULL

#: Tag namespace for halo traffic (isolated from coupling messages, which
#: travel on the world communicator anyway).
_HALO_TAG_NORTH = 21
_HALO_TAG_SOUTH = 22


class DistributedField:
    """One component's share of a global field, decomposed by latitude.

    Parameters
    ----------
    comm :
        The component communicator; rank *r* owns the rows
        ``decomp.rows(r)``.
    grid :
        The global grid.
    data :
        Initial local block (``decomp.local_shape(rank)``); zeros when
        omitted.
    """

    def __init__(self, comm: Comm, grid: LatLonGrid, data: Optional[np.ndarray] = None):
        self.comm = comm
        self.grid = grid
        self.decomp = Decomposition(grid, comm.size)
        shape = self.decomp.local_shape(comm.rank)
        if data is None:
            self.data = np.zeros(shape)
        else:
            data = np.asarray(data, dtype=float)
            if data.shape != shape:
                raise ReproError(
                    f"local block shape {data.shape} != expected {shape} on rank {comm.rank}"
                )
            self.data = data.copy()

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_function(cls, comm: Comm, grid: LatLonGrid, fn) -> "DistributedField":
        """Initialise from ``fn(lat_deg, lon_deg)`` evaluated on cell
        centers (vectorised via meshgrid) — deterministic initial
        conditions independent of the decomposition."""
        field = cls(comm, grid)
        start, stop = field.rows_range
        lat = grid.lat_centers[start:stop]
        lon = grid.lon_centers
        lat2d, lon2d = np.meshgrid(lat, lon, indexing="ij")
        field.data = np.asarray(fn(lat2d, lon2d), dtype=float)
        return field

    @classmethod
    def from_global(cls, comm: Comm, grid: LatLonGrid, full: np.ndarray) -> "DistributedField":
        """Initialise by slicing a full global array locally (every rank
        passes the same array)."""
        field = cls(comm, grid)
        start, stop = field.rows_range
        field.data = np.asarray(full, dtype=float)[start:stop].copy()
        return field

    # -- basic accessors --------------------------------------------------------

    @property
    def rows_range(self) -> tuple[int, int]:
        """This rank's ``[start, stop)`` global row range."""
        return self.decomp.rows(self.comm.rank)

    @property
    def local_slices(self) -> tuple[slice, slice]:
        """The global ``(row, column)`` slices of the local block — the
        decomposition-agnostic protocol shared with the 2-D fields."""
        start, stop = self.rows_range
        return (slice(start, stop), slice(0, self.grid.nlon))

    @property
    def local_shape(self) -> tuple[int, int]:
        """Shape of the local block."""
        return self.data.shape

    def copy(self) -> "DistributedField":
        """A deep copy sharing the communicator."""
        return DistributedField(self.comm, self.grid, self.data)

    # -- halo exchange -------------------------------------------------------------

    def exchange_halos(self) -> tuple[np.ndarray, np.ndarray]:
        """Exchange boundary rows with latitude neighbours.

        Returns ``(north_halo, south_halo)`` — the neighbouring row to the
        north (higher latitude) and south.  At the poles the local edge row
        is returned (zero-gradient boundary), implemented with
        ``PROC_NULL`` neighbours so no branches appear in the message code.
        """
        comm = self.comm
        north = comm.rank + 1 if comm.rank + 1 < comm.size else PROC_NULL
        south = comm.rank - 1 if comm.rank > 0 else PROC_NULL
        # Eager sends: post both, then receive both.
        comm.Send(self.data[-1], north, _HALO_TAG_NORTH)
        comm.Send(self.data[0], south, _HALO_TAG_SOUTH)
        south_halo = np.array(self.data[0])  # pole default: replicate edge
        north_halo = np.array(self.data[-1])
        if south != PROC_NULL:
            comm.Recv(south_halo, south, _HALO_TAG_NORTH)
        if north != PROC_NULL:
            comm.Recv(north_halo, north, _HALO_TAG_SOUTH)
        return north_halo, south_halo

    def laplacian(self) -> np.ndarray:
        """Five-point Laplacian of the local block (grid units).

        Longitude is periodic (local ``np.roll``); latitude uses halo
        rows, with zero-gradient poles.
        """
        north, south = self.exchange_halos()
        up = np.vstack([self.data[1:], north[None, :]])
        down = np.vstack([south[None, :], self.data[:-1]])
        east = np.roll(self.data, -1, axis=1)
        west = np.roll(self.data, 1, axis=1)
        return up + down + east + west - 4.0 * self.data

    # -- gather / scatter ------------------------------------------------------------

    def gather_global(self, root: int = 0) -> Optional[np.ndarray]:
        """Assemble the full global field on component-local rank *root*
        (``None`` elsewhere)."""
        blocks = self.comm.gather(self.data, root=root)
        if self.comm.rank != root:
            return None
        assert blocks is not None
        return np.concatenate(blocks, axis=0)

    def set_from_global(self, full: Optional[np.ndarray], root: int = 0) -> None:
        """Distribute a full field from *root* into the local blocks
        (inverse of :meth:`gather_global`)."""
        blocks = None
        if self.comm.rank == root:
            assert full is not None
            full = np.asarray(full, dtype=float)
            if full.shape != self.grid.shape:
                raise ReproError(
                    f"global field shape {full.shape} != grid shape {self.grid.shape}"
                )
            blocks = [
                full[self.decomp.rows(r)[0] : self.decomp.rows(r)[1]]
                for r in range(self.comm.size)
            ]
        self.data = self.comm.scatter(blocks, root=root).copy()

    # -- reductions -------------------------------------------------------------------

    def area_mean(self) -> float:
        """Area-weighted global mean (identical on every rank, and bitwise
        independent of the decomposition — see :func:`weighted_global_sum`)."""
        return weighted_global_sum(self.comm, self.grid, self.data, self.local_slices)

    def area_integral(self) -> float:
        """Alias of :meth:`area_mean` (weights sum to 1)."""
        return self.area_mean()


def weighted_global_sum(comm: Comm, grid: LatLonGrid, local: np.ndarray, slices: tuple[slice, slice]) -> float:
    """Area-weighted global sum of a decomposed field, decomposition-
    independent to the bit.

    Every rank contributes ``(slices, local * weights)``; rank 0 assembles
    the full weighted array and sums it in one fixed (C-order) pass, so
    the result is identical no matter how — or over how many processes —
    the field was decomposed.  The value is broadcast to all ranks.
    """
    rs, cs = slices
    w = grid.area_weights[rs, cs]
    pieces = comm.gather((rs, cs, local * w), root=0)
    total = None
    if comm.rank == 0:
        assert pieces is not None
        full = np.zeros(grid.shape)
        for prs, pcs, block in pieces:
            full[prs, pcs] = block
        total = float(full.sum())
    return comm.bcast(total, root=0)
