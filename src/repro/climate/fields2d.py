"""2-D decomposed fields: latitude × longitude blocks over a Cartesian
process grid.

Production climate components decompose in both horizontal dimensions;
this is the 2-D counterpart of :class:`repro.climate.fields.DistributedField`,
built on the substrate's Cartesian topology
(:mod:`repro.mpi.cartesian`).  The process grid is ``(P_lat, P_lon)`` from
``dims_create``; latitude is open (zero-gradient poles via ``PROC_NULL``
neighbours), longitude periodic (the halo wraps around the globe through
the topology — no special-casing in the stencil).

The class implements the same field protocol the component models consume
(``data`` / ``local_slices`` / ``laplacian`` / ``gather_global`` /
``area_mean``), so every model runs unchanged on either decomposition —
tested to agree with the 1-D fields bitwise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.climate.fields import weighted_global_sum
from repro.climate.grid import LatLonGrid
from repro.errors import ReproError
from repro.mpi.cartesian import CartComm, create_cart, dims_create
from repro.mpi.comm import Comm
from repro.mpi.constants import PROC_NULL

_TAG_N, _TAG_S, _TAG_E, _TAG_W = 31, 32, 33, 34


def _block(n: int, parts: int, index: int) -> tuple[int, int]:
    base, rem = divmod(n, parts)
    start = index * base + min(index, rem)
    return start, start + base + (1 if index < rem else 0)


class DistributedField2D:
    """One process's ``(lat, lon)`` block of a global field.

    Parameters
    ----------
    comm :
        The component communicator; a Cartesian topology is created over
        it (``dims_create(size, 2)``, latitude-major).  Pass a
        :class:`~repro.mpi.cartesian.CartComm` directly to share one
        topology between several fields.
    grid :
        The global grid.
    data :
        Initial local block; zeros when omitted.
    """

    def __init__(self, comm: Comm, grid: LatLonGrid, data: Optional[np.ndarray] = None):
        if isinstance(comm, CartComm):
            self.cart = comm
        else:
            dims = dims_create(comm.size, 2)
            if dims[0] > grid.nlat or dims[1] > grid.nlon:
                raise ReproError(
                    f"cannot place a {dims[0]}x{dims[1]} process grid on a "
                    f"{grid.nlat}x{grid.nlon} field"
                )
            cart = create_cart(comm, dims, periods=[False, True])
            assert cart is not None  # dims_create uses every process
            self.cart = cart
        self.comm = self.cart  # the field protocol's communicator
        self.grid = grid
        self.dims = self.cart.dims
        row0, row1 = _block(grid.nlat, self.dims[0], self.cart.coords[0])
        col0, col1 = _block(grid.nlon, self.dims[1], self.cart.coords[1])
        self._slices = (slice(row0, row1), slice(col0, col1))
        shape = (row1 - row0, col1 - col0)
        if data is None:
            self.data = np.zeros(shape)
        else:
            data = np.asarray(data, dtype=float)
            if data.shape != shape:
                raise ReproError(f"local block shape {data.shape} != expected {shape}")
            self.data = data.copy()

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_function(cls, comm: Comm, grid: LatLonGrid, fn) -> "DistributedField2D":
        """Initialise from ``fn(lat_deg, lon_deg)`` on the local block."""
        field = cls(comm, grid)
        rs, cs = field.local_slices
        lat2d, lon2d = np.meshgrid(
            grid.lat_centers[rs], grid.lon_centers[cs], indexing="ij"
        )
        field.data = np.asarray(fn(lat2d, lon2d), dtype=float)
        return field

    # -- protocol --------------------------------------------------------------

    @property
    def local_slices(self) -> tuple[slice, slice]:
        """The global ``(row, column)`` slices of the local block."""
        return self._slices

    @property
    def rows_range(self) -> tuple[int, int]:
        """Row span of the local block (1-D-protocol compatibility)."""
        rs = self._slices[0]
        return rs.start, rs.stop

    @property
    def local_shape(self) -> tuple[int, int]:
        """Shape of the local block."""
        return self.data.shape

    def copy(self) -> "DistributedField2D":
        """A deep copy sharing the Cartesian communicator."""
        return DistributedField2D(self.cart, self.grid, self.data)

    # -- halos --------------------------------------------------------------------

    def exchange_halos(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Exchange the four edges; returns ``(north, south, east, west)``
        halo lines.  Poles replicate the edge row (zero gradient);
        longitude wraps through the periodic topology."""
        cart = self.cart
        south_nb, north_nb = cart.shift(0)  # latitude: open
        west_nb, east_nb = cart.shift(1)  # longitude: periodic (never NULL)
        cart.Send(self.data[-1], north_nb, _TAG_N)
        cart.Send(self.data[0], south_nb, _TAG_S)
        cart.Send(self.data[:, -1].copy(), east_nb, _TAG_E)
        cart.Send(self.data[:, 0].copy(), west_nb, _TAG_W)
        north = np.array(self.data[-1])
        south = np.array(self.data[0])
        east = np.empty(self.data.shape[0])
        west = np.empty(self.data.shape[0])
        if north_nb != PROC_NULL:
            cart.Recv(north, north_nb, _TAG_S)
        if south_nb != PROC_NULL:
            cart.Recv(south, south_nb, _TAG_N)
        cart.Recv(east, east_nb, _TAG_W)
        cart.Recv(west, west_nb, _TAG_E)
        return north, south, east, west

    def laplacian(self) -> np.ndarray:
        """Five-point Laplacian of the local block (grid units), halo
        lines supplying the off-process neighbours."""
        north, south, east, west = self.exchange_halos()
        up = np.vstack([self.data[1:], north[None, :]])
        down = np.vstack([south[None, :], self.data[:-1]])
        right = np.hstack([self.data[:, 1:], east[:, None]])
        left = np.hstack([west[:, None], self.data[:, :-1]])
        return up + down + right + left - 4.0 * self.data

    # -- assembly --------------------------------------------------------------------

    def gather_global(self, root: int = 0) -> Optional[np.ndarray]:
        """Assemble the full field on rank *root* (``None`` elsewhere)."""
        pieces = self.cart.gather((self._slices, self.data), root=root)
        if self.cart.rank != root:
            return None
        assert pieces is not None
        full = np.zeros(self.grid.shape)
        for (rs, cs), block in pieces:
            full[rs, cs] = block
        return full

    def set_from_global(self, full: Optional[np.ndarray], root: int = 0) -> None:
        """Distribute a full field from *root* into the local blocks."""
        payload = None
        if self.cart.rank == root:
            assert full is not None
            full = np.asarray(full, dtype=float)
            if full.shape != self.grid.shape:
                raise ReproError(
                    f"global field shape {full.shape} != grid shape {self.grid.shape}"
                )
            payload = full
        payload = self.cart.bcast(payload, root=root)
        rs, cs = self._slices
        self.data = payload[rs, cs].copy()

    # -- reductions --------------------------------------------------------------------

    def area_mean(self) -> float:
        """Area-weighted global mean (bitwise decomposition-independent)."""
        return weighted_global_sum(self.cart, self.grid, self.data, self._slices)

    def area_integral(self) -> float:
        """Alias of :meth:`area_mean` (weights sum to 1)."""
        return self.area_mean()
