"""Energy accounting across the coupled system.

The acid test of a coupler is its books: every joule the atmosphere gains
through coupling must have left a surface, and with all external forcing
switched off (:meth:`repro.climate.ccsm.CCSMConfig.conservation`) the total
heat content of the coupled system must stay constant to round-off.  This
module assembles those budgets from per-component diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.climate.ccsm import MODEL_KINDS, total_energy_series
from repro.errors import ReproError


@dataclass
class EnergyReport:
    """The assembled energy budget of one coupled run."""

    #: Total heat content per step [J m^-2 of planet area].
    total_energy: np.ndarray
    #: Net energy exchanged through coupling, summed over components
    #: (should be ~0: the coupler only moves heat around).
    net_coupling: float
    #: Sum of per-step coupler exchange imbalances (round-off sized).
    coupler_residual: float
    #: Energy in through solar absorption, accumulated [J m^-2].
    solar_in: float
    #: Energy out through OLR, accumulated [J m^-2].
    olr_out: float
    #: Energy created/destroyed by the (non-conservative plain-stencil)
    #: diffusion operator, accumulated — explicitly accounted, see
    #: :mod:`repro.climate.components`.
    diffusion_residual: float

    @property
    def drift(self) -> float:
        """Total energy change over the run [J m^-2]."""
        return float(self.total_energy[-1] - self.total_energy[0])

    @property
    def unexplained(self) -> float:
        """Drift not explained by the tracked budget terms — the true
        conservation error of the implementation."""
        explained = self.solar_in - self.olr_out + self.net_coupling + self.diffusion_residual
        return self.drift - explained

    def relative_unexplained(self) -> float:
        """:attr:`unexplained` scaled by the gross energy throughput."""
        gross = abs(self.solar_in) + abs(self.olr_out) + 1e-30
        return abs(self.unexplained) / gross


def energy_report(diags: dict[str, Any]) -> EnergyReport:
    """Assemble an :class:`EnergyReport` from :func:`run_ccsm` diagnostics."""
    model_diags = {k: d for k, d in diags.items() if k in MODEL_KINDS}
    if not model_diags:
        raise ReproError("diagnostics contain no model components")
    net_coupling = sum(d["budget"]["coupling_in"] for d in model_diags.values())
    solar_in = sum(d["budget"]["solar_in"] for d in model_diags.values())
    olr_out = sum(d["budget"]["olr_out"] for d in model_diags.values())
    diffusion = sum(d["budget"]["diffusion_residual"] for d in model_diags.values())
    coupler_residual = 0.0
    if "coupler" in diags:
        coupler_residual = float(np.sum(np.abs(diags["coupler"]["exchange_residual"])))
    return EnergyReport(
        total_energy=total_energy_series(diags),
        net_coupling=net_coupling,
        coupler_residual=coupler_residual,
        solar_in=solar_in,
        olr_out=olr_out,
        diffusion_residual=diffusion,
    )
