"""The flux coupler: merge, flux computation, conservative redistribution.

In CCSM "these component models interact with each other through a flux
coupler component" (paper §1).  The toy coupler reproduces the essential
contract:

* each coupling step it receives every component's surface temperature
  (on that component's grid);
* it regrids them to the atmosphere grid, computes per-surface sensible
  heat fluxes ``F_s = k_s (T_s - T_atm)``, merges them with static surface
  fractions into the atmosphere's total flux, and returns each surface its
  own (fraction-weighted, conservatively regridded) share with opposite
  sign;
* the books balance: the energy handed to the atmosphere equals the energy
  drained from the surfaces to round-off, tracked per step in
  :attr:`FluxCoupler.exchange_residual`.

Two transport strategies implement the exchange (selected by the driver):
point-to-point MPH messages addressed by component name (paper §5.2), or
collectives over ``MPH_comm_join`` joint communicators (paper §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.climate.grid import LatLonGrid
from repro.climate.regrid import ConservativeRegridder, regrid
from repro.errors import ReproError

#: World-communicator tag bases of the coupling protocol (offset by the
#: sending/receiving component's id).
TEMP_TAG_BASE = 910_000
FLUX_TAG_BASE = 920_000


@dataclass(frozen=True)
class SurfaceFractions:
    """Static ocean/land/ice area fractions on the atmosphere grid.

    Fractions are synthetic but earth-like: ice poleward of ~65°, two
    idealised continents, ocean elsewhere; they sum to 1 everywhere.
    """

    ocean: np.ndarray
    land: np.ndarray
    ice: np.ndarray

    @classmethod
    def build(cls, grid: LatLonGrid) -> "SurfaceFractions":
        """Deterministic fractions for *grid*."""
        lat, lon = np.meshgrid(grid.lat_centers, grid.lon_centers, indexing="ij")
        ice = 1.0 / (1.0 + np.exp(-(np.abs(lat) - 65.0) / 4.0))
        land_raw = 0.35 * (1.0 + np.sin(np.deg2rad(2.0 * lon + 40.0))) * np.cos(
            np.deg2rad(lat)
        ) ** 2
        land = np.clip(land_raw, 0.0, 0.9) * (1.0 - ice)
        ocean = 1.0 - ice - land
        if np.any(ocean < -1e-12):
            raise ReproError("surface fractions exceed 1 somewhere")
        return cls(ocean=np.clip(ocean, 0.0, 1.0), land=land, ice=ice)

    def of(self, kind: str) -> np.ndarray:
        """Fraction field of surface *kind* (``"ocean"``/``"land"``/``"ice"``)."""
        try:
            return getattr(self, kind)
        except AttributeError:
            raise ReproError(f"unknown surface kind {kind!r}") from None


class FluxCoupler:
    """The flux computation engine (pure numerics; transport lives in the
    driver so both exchange strategies share it).

    Parameters
    ----------
    atm_grid :
        The atmosphere grid, where fluxes are computed.
    surface_grids :
        ``kind -> grid`` for each surface component.
    coupling_coeff :
        ``kind -> k`` sensible-heat exchange coefficients [W m^-2 K^-1].
    """

    def __init__(
        self,
        atm_grid: LatLonGrid,
        surface_grids: dict[str, LatLonGrid],
        coupling_coeff: dict[str, float],
    ):
        self.atm_grid = atm_grid
        self.surface_grids = dict(surface_grids)
        self.coupling_coeff = dict(coupling_coeff)
        missing = set(self.surface_grids) - set(self.coupling_coeff)
        if missing:
            raise ReproError(f"no coupling coefficient for surfaces {sorted(missing)}")
        self.fractions = SurfaceFractions.build(atm_grid)
        #: Per-surface regridders (kept so the distributed path can apply
        #: latitude-band slices of the same matrices).
        self._to_atm = {k: ConservativeRegridder(g, atm_grid) for k, g in self.surface_grids.items()}
        self._from_atm = {k: ConservativeRegridder(atm_grid, g) for k, g in self.surface_grids.items()}
        #: Per-step energy-exchange imbalance (should be round-off).
        self.exchange_residual: list[float] = []

    def drop_surface(self, kind: str) -> None:
        """Remove surface *kind* from the coupling — the degraded-mode
        physics after that component's processes die.

        Its area fraction of the atmosphere simply stops exchanging heat;
        the remaining surfaces keep their coefficients and the energy
        books still balance over the surviving exchange.  At least one
        surface must remain.
        """
        if kind not in self.surface_grids:
            raise ReproError(
                f"unknown surface kind {kind!r}; active: {sorted(self.surface_grids)}"
            )
        if len(self.surface_grids) == 1:
            raise ReproError(f"cannot drop {kind!r}: it is the last surface component")
        del self.surface_grids[kind]
        del self.coupling_coeff[kind]
        del self._to_atm[kind]
        del self._from_atm[kind]

    def compute_fluxes(
        self,
        atm_temp: np.ndarray,
        surface_temps: dict[str, np.ndarray],
        record: bool = True,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """One coupling step's flux computation.

        Parameters
        ----------
        atm_temp :
            Full atmosphere temperature on the atmosphere grid.
        surface_temps :
            ``kind -> full temperature`` on each surface's own grid.
        record :
            Book the exchange imbalance into :attr:`exchange_residual`.
            The implicit coupler evaluates trial fluxes many times per
            step and records only the committed one.

        Returns
        -------
        (atm_flux, surface_fluxes) :
            The atmosphere's total coupling flux on the atmosphere grid
            [W m^-2, positive warming], and each surface's flux on its own
            grid.
        """
        atm_temp = np.asarray(atm_temp, dtype=float)
        if atm_temp.shape != self.atm_grid.shape:
            raise ReproError(
                f"atmosphere temperature shape {atm_temp.shape} != grid "
                f"{self.atm_grid.shape}"
            )
        atm_flux = np.zeros(self.atm_grid.shape)
        surface_fluxes: dict[str, np.ndarray] = {}
        balance = 0.0
        for kind, grid in self.surface_grids.items():
            t_sfc = regrid(surface_temps[kind], grid, self.atm_grid)
            k = self.coupling_coeff[kind]
            frac = self.fractions.of(kind)
            # Upward sensible heat: warms the atmosphere, cools the surface.
            flux_up = k * frac * (t_sfc - atm_temp)
            atm_flux += flux_up
            sfc_flux = regrid(-flux_up, self.atm_grid, grid)
            surface_fluxes[kind] = sfc_flux
            balance += grid.area_integral(sfc_flux)
        balance += self.atm_grid.area_integral(atm_flux)
        if record:
            self.exchange_residual.append(balance)
        return atm_flux, surface_fluxes

    def compute_fluxes_band(
        self,
        atm_temp: np.ndarray,
        surface_temps: dict[str, np.ndarray],
        start: int,
        stop: int,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """The distributed-coupler kernel: one latitude band's share.

        Computes the atmosphere flux on atmosphere rows ``start:stop`` and
        each surface's *partial* flux contribution from that band (full
        surface-grid shape; the band partials of all coupler processes sum
        to the serial result, since the conservative remap is linear).
        """
        atm_band = np.asarray(atm_temp, dtype=float)[start:stop]
        atm_flux_band = np.zeros_like(atm_band)
        partials: dict[str, np.ndarray] = {}
        for kind, grid in self.surface_grids.items():
            to_atm = self._to_atm[kind]
            from_atm = self._from_atm[kind]
            t_sfc_band = (
                to_atm.lat_matrix[start:stop]
                @ np.asarray(surface_temps[kind], dtype=float)
                @ to_atm.lon_matrix.T
            )
            flux_up_band = self.coupling_coeff[kind] * self.fractions.of(kind)[start:stop] * (
                t_sfc_band - atm_band
            )
            atm_flux_band += flux_up_band
            partials[kind] = (
                from_atm.lat_matrix[:, start:stop] @ (-flux_up_band) @ from_atm.lon_matrix.T
            )
        return atm_flux_band, partials

    def record_residual(self, atm_flux: np.ndarray, surface_fluxes: dict[str, np.ndarray]) -> None:
        """Book the exchange imbalance of an externally-assembled step
        (used by the distributed coupler after reduction)."""
        balance = self.atm_grid.area_integral(atm_flux)
        for kind, grid in self.surface_grids.items():
            balance += grid.area_integral(surface_fluxes[kind])
        self.exchange_residual.append(balance)

    def max_residual(self) -> float:
        """Largest absolute per-step exchange imbalance so far."""
        return max((abs(r) for r in self.exchange_residual), default=0.0)
