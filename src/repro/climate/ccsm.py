"""The assembled toy CCSM: one driver, all five MPH execution modes.

This module wires the component models and the flux coupler into a coupled
system the way the paper's motivating application does, and — the point of
the exercise — assembles *the same physics* under every MPH software
integration mode:

* ``"scme"``  — five single-component executables (paper §2.3/§4.1);
* ``"mcse"``  — one executable containing all five components (§2.2/§4.2);
* ``"mcme"``  — three executables: atmosphere+land, ocean+ice, coupler
  (§2.4/§4.3);
* ``"mcme_overlap"`` — as ``"mcme"`` but atmosphere and land fully
  overlapping on processors (the §4.3 registry's overlap feature);
* ``"scse"``  — a stand-alone single component (no coupling), the
  conventional mode kept "for completeness" (§2.1).

Because the numerics are decomposition-independent and the coupler computes
on assembled global fields in a fixed order, the coupled run produces
**identical answers in every mode** — the experiment E11 check.

The per-step protocol is phase-split so it is deadlock-free even when
several components share processors sequentially (the PCM pattern):
every component first *publishes* its temperature to the coupler (eager
sends), the coupler computes and returns fluxes, then every component
*receives and steps*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

import numpy as np

from repro.climate.components import (
    AtmosphereModel,
    ComponentModel,
    LandModel,
    OceanModel,
    PhysicsParams,
    SeaIceModel,
)
from repro.climate.coupler import FLUX_TAG_BASE, TEMP_TAG_BASE, FluxCoupler
from repro.climate.grid import Decomposition, LatLonGrid
from repro.core.mph import MPH, components_setup
from repro.core.registry import Registry
from repro.errors import ProcessFailedError, ReproError
from repro.launcher.job import mph_run
from repro.mpi.comm import Comm
from repro.mpi.faults import SimulatedCrash

#: Model component kinds (the coupler is handled separately).
MODEL_KINDS = ("atmosphere", "ocean", "land", "ice")

#: Surface kinds (everything the coupler merges under the atmosphere).
SURFACE_KINDS = ("ocean", "land", "ice")

_MODEL_CLASSES = {
    "atmosphere": AtmosphereModel,
    "ocean": OceanModel,
    "land": LandModel,
    "ice": SeaIceModel,
}

#: The execution modes :func:`run_ccsm` understands.
MODES = ("scse", "scme", "mcse", "mcme", "mcme_overlap")


class ComponentCrash(SimulatedCrash):
    """A crash injected by :attr:`CCSMConfig.crash_at` — recoverable
    within the job (checkpoint restore + flux replay), unlike a
    schedule-level :class:`~repro.mpi.faults.SimulatedCrash`, which is a
    fail-stop death of the whole rank."""


@dataclass
class CCSMConfig:
    """Configuration of one coupled experiment.

    ``names`` maps component kinds to registration name-tags — arbitrary,
    exercising the paper's "its actual name is entirely arbitrary" design
    point (one may register the atmosphere as ``NCAR_atm``).
    """

    shapes: dict[str, tuple[int, int]] = field(
        default_factory=lambda: {
            "atmosphere": (16, 32),
            "ocean": (12, 24),
            "land": (8, 16),
            "ice": (6, 12),
        }
    )
    procs: dict[str, int] = field(
        default_factory=lambda: {
            "atmosphere": 4,
            "ocean": 2,
            "land": 2,
            "ice": 1,
            "coupler": 1,
        }
    )
    names: dict[str, str] = field(
        default_factory=lambda: {
            "atmosphere": "atmosphere",
            "ocean": "ocean",
            "land": "land",
            "ice": "ice",
            "coupler": "coupler",
        }
    )
    coupling_coeff: dict[str, float] = field(
        default_factory=lambda: {"ocean": 15.0, "land": 10.0, "ice": 5.0}
    )
    params: dict[str, PhysicsParams] = field(default_factory=dict)
    nsteps: int = 8
    dt: float = 3600.0
    #: Exchange transport: ``"p2p"`` (§5.2 name-addressed messages) or
    #: ``"join"`` (§5.1 collectives over joint communicators).
    exchange: str = "p2p"
    #: Write each component's checkpoint here at the end of the run.
    checkpoint_dir: Optional[str] = None
    #: Start from the checkpoints in this directory instead of the
    #: analytic initial condition (restart is bitwise-exact; see
    #: :mod:`repro.climate.checkpoint`).
    restart_dir: Optional[str] = None
    #: Optional seasonal insolation (see :mod:`repro.climate.forcing`)
    #: applied to every solar-absorbing component.
    forcing: Optional[Any] = None
    #: Optional CO2 scenario applied to every OLR-emitting component.
    co2: Optional[Any] = None
    #: ``"serial"`` — the coupler computes on its local processor 0 (the
    #: early-CCSM pattern); ``"parallel"`` — flux computation is
    #: distributed over the coupler's processes by atmosphere latitude
    #: band (results agree with serial to floating-point round-off, not
    #: bitwise: partial-sum order differs).
    coupler_mode: str = "serial"
    #: Save each component's checkpoint to ``checkpoint_dir`` every N
    #: completed steps (0 = only at the end).  Enables in-job recovery:
    #: with periodic checkpoints a crashed component is restarted from its
    #: last save and replays the logged coupling fluxes, bitwise-exactly.
    checkpoint_every: int = 0
    #: Inject a crash: ``(kind, step)`` makes that component fail at the
    #: top of ``receive_and_step(step)`` (once).  The driver recovers it
    #: from the last checkpoint and the run continues within the same job.
    crash_at: Optional[tuple[str, int]] = None
    #: Coupling scheme: ``"explicit"`` — one fixed flux exchange per step
    #: (the paper's §2 coupler); ``"implicit"`` — iterate each step's
    #: exchange to interface convergence with a coupled solver from
    #: :mod:`repro.coupling` (fluxes computed from the *converged*
    #: temperatures, the backward-coupled exchange).
    coupling: str = "explicit"
    #: Implicit coupled solver: ``"gauss_seidel"`` | ``"aitken"`` |
    #: ``"iqn_ils"``.
    coupling_solver: str = "gauss_seidel"
    #: Interface-residual 2-norm tolerance of the implicit iteration [K].
    coupling_tol: float = 1e-9
    #: Iteration budget per implicit coupling step.
    max_coupling_iterations: int = 25
    #: Relaxation: Gauss-Seidel ω, and the initial ω of Aitken / IQN-ILS.
    coupling_omega: float = 1.0
    #: Predictor seeding each implicit step from prior converged steps:
    #: ``None`` | ``"constant"`` | ``"linear"`` | ``"quadratic"``.
    coupling_predictor: Optional[str] = None
    #: ``kind -> m``: the component advances *m* substeps of ``dt/m`` per
    #: coupling step (sub-cycling — components at different timesteps).
    subcycle: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.exchange not in ("p2p", "join"):
            raise ReproError(f"exchange must be 'p2p' or 'join', got {self.exchange!r}")
        if self.coupler_mode not in ("serial", "parallel"):
            raise ReproError(
                f"coupler_mode must be 'serial' or 'parallel', got {self.coupler_mode!r}"
            )
        if self.coupler_mode == "parallel" and self.exchange == "join":
            raise ReproError(
                "the parallel coupler currently runs over the p2p exchange; "
                "use exchange='p2p' with coupler_mode='parallel'"
            )
        if self.checkpoint_every < 0:
            raise ReproError(f"checkpoint_every must be >= 0, got {self.checkpoint_every}")
        if self.checkpoint_every > 0 and self.checkpoint_dir is None:
            raise ReproError("checkpoint_every needs a checkpoint_dir to write into")
        if self.crash_at is not None:
            if self.checkpoint_every <= 0:
                raise ReproError(
                    "crash_at recovery needs periodic checkpoints; set checkpoint_every"
                )
            if self.exchange != "p2p":
                raise ReproError(
                    "crash_at recovery runs over the p2p exchange (a join-mode retry "
                    "would re-enter collectives the coupler has already completed)"
                )
        if self.coupling not in ("explicit", "implicit"):
            raise ReproError(
                f"coupling must be 'explicit' or 'implicit', got {self.coupling!r}"
            )
        for kind, m in self.subcycle.items():
            if kind not in MODEL_KINDS:
                raise ReproError(f"subcycle: unknown component kind {kind!r}")
            if m < 1:
                raise ReproError(f"subcycle[{kind!r}] must be >= 1, got {m}")
        if self.subcycle and self.checkpoint_every > 0:
            raise ReproError(
                "sub-cycling does not combine with periodic checkpoints (the "
                "model's substep counter and the coupling-step counter differ)"
            )
        if self.coupling == "implicit":
            if self.coupling_solver not in ("gauss_seidel", "aitken", "iqn_ils"):
                raise ReproError(
                    "coupling_solver must be 'gauss_seidel', 'aitken', or "
                    f"'iqn_ils', got {self.coupling_solver!r}"
                )
            if self.coupling_predictor not in (None, "constant", "linear", "quadratic"):
                raise ReproError(
                    f"unknown coupling_predictor {self.coupling_predictor!r}"
                )
            if self.coupling_tol <= 0:
                raise ReproError(f"coupling_tol must be positive, got {self.coupling_tol}")
            if self.max_coupling_iterations < 1:
                raise ReproError(
                    f"max_coupling_iterations must be >= 1, got "
                    f"{self.max_coupling_iterations}"
                )
            if self.coupler_mode == "parallel":
                raise ReproError("implicit coupling runs the serial coupler")
            if self.crash_at is not None:
                raise ReproError(
                    "crash_at recovery is explicit-only (an implicit retry would "
                    "re-enter the iteration the coupler already completed)"
                )
            if self.procs.get("coupler", 1) != 1:
                raise ReproError(
                    "implicit coupling needs a single-process coupler "
                    "(the iteration control is serial)"
                )

    # -- accessors -----------------------------------------------------------

    def grid(self, kind: str) -> LatLonGrid:
        """The component's grid."""
        nlat, nlon = self.shapes[kind]
        return LatLonGrid(nlat, nlon, name=kind)

    def name(self, kind: str) -> str:
        """The component's registration name-tag."""
        return self.names[kind]

    def param(self, kind: str) -> PhysicsParams:
        """The component's physics parameters (defaults per kind unless
        overridden)."""
        if kind in self.params:
            return self.params[kind]
        return _MODEL_CLASSES[kind].default_params()

    @classmethod
    def conservation(cls, **overrides) -> "CCSMConfig":
        """A configuration with all external forcing off (no sun, no OLR,
        no diffusion): total energy must then be exactly conserved by the
        coupling exchange — the E11 conservation check."""
        closed = {
            kind: replace(
                _MODEL_CLASSES[kind].default_params(),
                solar_constant=0.0,
                olr_a=0.0,
                olr_b=0.0,
                diffusivity=0.0,
            )
            for kind in MODEL_KINDS
        }
        return cls(params=closed, **overrides)


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------


class ComponentRunner:
    """One component model plus its half of the coupling protocol."""

    def __init__(self, mph: MPH, cfg: CCSMConfig, kind: str, comm: Comm):
        self.mph = mph
        self.cfg = cfg
        self.kind = kind
        self.comm = comm
        self.name = cfg.name(kind)
        self.coupler_name = cfg.name("coupler")
        self.comp_id = mph.layout.component(self.name).comp_id
        self.model: ComponentModel = _MODEL_CLASSES[kind](
            comm, cfg.grid(kind), cfg.param(kind), forcing=cfg.forcing, co2=cfg.co2
        )
        if cfg.restart_dir is not None:
            from repro.climate import checkpoint

            checkpoint.restore(self.model, cfg.restart_dir, self.name)
        # Histories carry the initial state at index 0 and one entry per
        # step after it (length ``nsteps + 1``), so energy drift can be
        # audited against the step budgets.
        self.mean_T: list[float] = [self.model.mean_temperature()]
        self.energy: list[float] = [self.model.energy()]
        self.mean_thickness: list[float] = (
            [self.model.mean_thickness()] if isinstance(self.model, SeaIceModel) else []
        )
        #: Stand-alone detection (paper §2.3: "there are flags to detect if
        #: the executable is running in a stand-alone mode or in a joint
        #: multi-executable environment") — here, the absence of a
        #: registered coupler switches coupling off.
        self.standalone = not mph.layout.has_component(self.coupler_name)
        self._join: Optional[Comm] = None
        if cfg.exchange == "join" and not self.standalone:
            # Component processors ranked first, coupler's second (§5.1).
            self._join = mph.comm_join(self.name, self.coupler_name)
            assert self._join is not None
            self._cpl_root = mph.layout.component(self.name).size
        #: Local coupling fluxes since the last checkpoint, for replay
        #: after an in-job recovery (``(step, local_flux)`` per entry).
        self._flux_log: list[tuple[int, Optional[np.ndarray]]] = []
        self._crash_pending = cfg.crash_at is not None and cfg.crash_at[0] == kind
        if cfg.checkpoint_every > 0:
            from repro.climate import checkpoint

            # The initial save covers a crash before the first periodic one.
            checkpoint.save(self.model, cfg.checkpoint_dir, self.name)

    def publish(self, step: int) -> None:
        """Phase 1: hand this component's temperature to the coupler (a
        no-op when running stand-alone)."""
        if self.standalone:
            return
        if self._join is not None:
            self._join.gather(self.model.temperature.data, root=self._cpl_root)
            return
        full = self.model.temperature.gather_global(root=0)
        if self.comm.rank == 0:
            self.mph.send(
                (self.name, step, full),
                self.coupler_name,
                0,
                TEMP_TAG_BASE + self.comp_id,
            )

    def receive_and_step(self, step: int) -> None:
        """Phase 2: receive the coupling flux and advance one step (zero
        flux when running stand-alone).

        Under implicit coupling this phase is a command loop instead: the
        coupler sends ``("iterate", flux)`` trial exchanges, each evaluated
        from the step-start snapshot, until it converges and sends
        ``("commit", flux)``.
        """
        if self.cfg.coupling == "implicit" and not self.standalone:
            self._iterate_and_step(step)
            return
        if self._crash_pending and self.cfg.crash_at == (self.kind, step):
            self._crash_pending = False  # fire once; the retry proceeds
            raise ComponentCrash(
                f"injected crash of component {self.name!r} at step {step}"
            )
        if self.standalone:
            local_flux = None
        elif self._join is not None:
            local_flux = self._join.scatter(None, root=self._cpl_root)
        else:
            full = None
            if self.comm.rank == 0:
                got_step, full = self.mph.recv(
                    self.coupler_name, 0, FLUX_TAG_BASE + self.comp_id
                )
                if got_step != step:
                    raise ReproError(
                        f"{self.name}: coupling protocol out of step "
                        f"(expected {step}, got {got_step})"
                    )
            local_flux = _scatter_blocks(self.comm, self.cfg.grid(self.kind), full)
        self._advance(step, local_flux)
        if (
            self.cfg.checkpoint_every > 0
            and self.model.steps_taken % self.cfg.checkpoint_every == 0
        ):
            from repro.climate import checkpoint

            checkpoint.save(self.model, self.cfg.checkpoint_dir, self.name)
            # Fluxes up to the saved step are baked into the checkpoint.
            self._flux_log = [e for e in self._flux_log if e[0] >= self.model.steps_taken]

    def _iterate_and_step(self, step: int) -> None:
        """The implicit command loop: trial-evaluate from the step-start
        snapshot until the coupler commits the converged exchange."""
        snapshot = self.model.state_snapshot()
        while True:
            cmd, local_flux = self._receive_command(step)
            self.model.state_restore(snapshot)
            if cmd == "iterate":
                self._substep(local_flux)
                self.publish(step)
            elif cmd == "commit":
                self._advance(step, local_flux)
                if (
                    self.cfg.checkpoint_every > 0
                    and self.model.steps_taken % self.cfg.checkpoint_every == 0
                ):
                    from repro.climate import checkpoint

                    checkpoint.save(self.model, self.cfg.checkpoint_dir, self.name)
                    self._flux_log = [
                        e for e in self._flux_log if e[0] >= self.model.steps_taken
                    ]
                return
            else:
                raise ReproError(f"{self.name}: unknown coupling command {cmd!r}")

    def _receive_command(self, step: int) -> tuple[str, np.ndarray]:
        """One coupler command plus this rank's flux block."""
        if self._join is not None:
            return self._join.scatter(None, root=self._cpl_root)
        if self.comm.rank == 0:
            got_step, (cmd, full) = self.mph.recv(
                self.coupler_name, 0, FLUX_TAG_BASE + self.comp_id
            )
            if got_step != step:
                raise ReproError(
                    f"{self.name}: coupling protocol out of step "
                    f"(expected {step}, got {got_step})"
                )
        else:
            cmd, full = None, None
        cmd = self.comm.bcast(cmd, root=0)
        return cmd, _scatter_blocks(self.comm, self.cfg.grid(self.kind), full)

    def _substep(self, local_flux: Optional[np.ndarray]) -> None:
        """Advance one coupling step's worth of model time: *m* substeps
        of ``dt/m`` under the same coupling flux (sub-cycling)."""
        m = self.cfg.subcycle.get(self.kind, 1)
        sub_dt = self.cfg.dt / m
        for _ in range(m):
            self.model.step(sub_dt, local_flux)

    def _advance(self, step: int, local_flux: Optional[np.ndarray]) -> None:
        """Apply one step's flux and book the histories and replay log."""
        if self.cfg.checkpoint_every > 0:
            self._flux_log.append(
                (step, None if local_flux is None else np.array(local_flux))
            )
        self._substep(local_flux)
        self.mean_T.append(self.model.mean_temperature())
        self.energy.append(self.model.energy())
        if isinstance(self.model, SeaIceModel):
            self.mean_thickness.append(self.model.mean_thickness())

    def recover(self) -> int:
        """Restart this component from its last checkpoint, within the job.

        Collective over the component communicator.  Restores the model
        state (bitwise), truncates the diagnostic histories to the
        checkpointed step *k*, then replays the logged coupling fluxes of
        steps ``k..crash-1`` — deterministic physics makes the replayed
        trajectory identical to the lost one.  Returns *k*.
        """
        from repro.climate import checkpoint

        k = checkpoint.restore(self.model, self.cfg.checkpoint_dir, self.name)
        del self.mean_T[k + 1 :]
        del self.energy[k + 1 :]
        if isinstance(self.model, SeaIceModel):
            del self.mean_thickness[k + 1 :]
        replay = [e for e in self._flux_log if e[0] >= k]
        self._flux_log = []
        for s, flux in replay:
            self._advance(s, flux)
        return k

    def diagnostics(self) -> dict[str, Any]:
        """Per-component diagnostics (identical on every component rank
        except ``final_field``, populated on component-local rank 0)."""
        try:
            final_field = self.model.temperature.gather_global(root=0)
        except ProcessFailedError:
            final_field = None  # a sibling rank died; no assembled field
        out: dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "size": self.comm.size,
            "mean_T": list(self.mean_T),
            "energy": list(self.energy),
            "budget": {
                "solar_in": self.model.budget.solar_in,
                "olr_out": self.model.budget.olr_out,
                "coupling_in": self.model.budget.coupling_in,
                "diffusion_residual": self.model.budget.diffusion_residual,
            },
            "final_field": final_field,
        }
        if self.mean_thickness:
            out["mean_thickness"] = list(self.mean_thickness)
        return out


class CouplerRunner:
    """The coupler component: collect, compute, redistribute."""

    def __init__(self, mph: MPH, cfg: CCSMConfig, comm: Comm):
        self.mph = mph
        self.cfg = cfg
        self.comm = comm
        self.name = cfg.name("coupler")
        self.active_kinds = [k for k in MODEL_KINDS if mph.layout.has_component(cfg.name(k))]
        surfaces = [k for k in self.active_kinds if k != "atmosphere"]
        if "atmosphere" not in self.active_kinds or not surfaces:
            raise ReproError(
                "the coupler needs an atmosphere and at least one surface component; "
                f"active: {self.active_kinds}"
            )
        self.engine = FluxCoupler(
            cfg.grid("atmosphere"),
            {k: cfg.grid(k) for k in surfaces},
            {k: cfg.coupling_coeff[k] for k in surfaces},
        )
        #: Surface components observed dead and dropped from the coupling,
        #: in detection order (the atmosphere dying is not survivable).
        self.dropped_components: list[str] = []
        self._joins: dict[str, Comm] = {}
        if cfg.exchange == "join":
            for kind in self.active_kinds:
                join = mph.comm_join(cfg.name(kind), self.name)
                assert join is not None
                self._joins[kind] = join
        self._implicit = cfg.coupling == "implicit"
        if self._implicit:
            self._build_implicit()

    def _build_implicit(self) -> None:
        """Assemble the coupled solver, criterion, and predictor that
        iterate each step's exchange (see :mod:`repro.coupling`)."""
        from repro.coupling import (
            AbsoluteNorm,
            AitkenSolver,
            ConstantPredictor,
            GaussSeidelSolver,
            InterfaceSpec,
            IQNILSSolver,
            LinearPredictor,
            QuadraticPredictor,
        )

        cfg = self.cfg
        #: The iterate: every active component's temperature field, packed.
        self._spec = InterfaceSpec([(k, cfg.shapes[k]) for k in self.active_kinds])
        criterion = AbsoluteNorm(cfg.coupling_tol)
        kw = dict(max_iterations=cfg.max_coupling_iterations)
        if cfg.coupling_solver == "gauss_seidel":
            self._solver = GaussSeidelSolver(criterion, omega=cfg.coupling_omega, **kw)
        elif cfg.coupling_solver == "aitken":
            self._solver = AitkenSolver(criterion, omega_initial=cfg.coupling_omega, **kw)
        else:
            self._solver = IQNILSSolver(criterion, omega_initial=cfg.coupling_omega, **kw)
        self._solver.initialize()
        pred_cls = {
            None: None,
            "constant": ConstantPredictor,
            "linear": LinearPredictor,
            "quadratic": QuadraticPredictor,
        }[cfg.coupling_predictor]
        self._predictor = pred_cls() if pred_cls is not None else None
        if self._predictor is not None:
            self._predictor.initialize()
        #: Iterations and convergence flag of every implicit step.
        self.coupling_iterations: list[int] = []
        self.coupling_converged: list[bool] = []

    def _drop(self, kind: str) -> None:
        """Degrade the coupling after surface *kind*'s processes died."""
        self.active_kinds.remove(kind)
        self.engine.drop_surface(kind)
        self.dropped_components.append(kind)

    def _comp_size(self, kind: str) -> int:
        return self.mph.layout.component(self.cfg.name(kind)).size

    def step(self, step: int) -> None:
        """One coupling step (between the components' two phases)."""
        if self._implicit:
            self._step_implicit(step)
        elif self.cfg.exchange == "join":
            self._step_join(step)
        elif self.cfg.coupler_mode == "parallel" and self.comm.size > 1:
            self._step_p2p_parallel(step)
        else:
            self._step_p2p(step)

    def _step_p2p(self, step: int) -> None:
        if self.comm.rank != 0:
            return  # the p2p coupler is serial on its local processor 0
        temps: dict[str, np.ndarray] = {}
        for kind in list(self.active_kinds):
            name = self.cfg.name(kind)
            comp_id = self.mph.layout.component(name).comp_id
            try:
                got_name, got_step, full = self.mph.recv(name, 0, TEMP_TAG_BASE + comp_id)
            except ProcessFailedError:
                # A dead surface degrades the coupling; a dead atmosphere
                # has nothing left to couple — let the failure propagate.
                if kind == "atmosphere":
                    raise
                self._drop(kind)
                continue
            if got_name != name or got_step != step:
                raise ReproError(
                    f"coupler protocol out of step: expected ({name}, {step}), got "
                    f"({got_name}, {got_step})"
                )
            temps[kind] = full
        atm_flux, sfc_fluxes = self.engine.compute_fluxes(
            temps["atmosphere"], {k: v for k, v in temps.items() if k != "atmosphere"}
        )
        for kind in list(self.active_kinds):
            name = self.cfg.name(kind)
            comp_id = self.mph.layout.component(name).comp_id
            payload = atm_flux if kind == "atmosphere" else sfc_fluxes[kind]
            try:
                self.mph.send((step, payload), name, 0, FLUX_TAG_BASE + comp_id)
            except ProcessFailedError:
                if kind == "atmosphere":
                    raise
                self._drop(kind)

    def _step_p2p_parallel(self, step: int) -> None:
        """The distributed coupler: local processor 0 still owns the
        component protocol, but the flux computation — regridding, merge,
        back-regridding — is spread over every coupler process by
        atmosphere latitude band and reassembled by reduction."""
        from repro.mpi.reduce_ops import SUM

        comm = self.comm
        temps: Optional[dict[str, np.ndarray]] = None
        if comm.rank == 0:
            temps = {}
            for kind in self.active_kinds:
                name = self.cfg.name(kind)
                comp_id = self.mph.layout.component(name).comp_id
                got_name, got_step, full = self.mph.recv(name, 0, TEMP_TAG_BASE + comp_id)
                if got_name != name or got_step != step:
                    raise ReproError(
                        f"coupler protocol out of step: expected ({name}, {step}), got "
                        f"({got_name}, {got_step})"
                    )
                temps[kind] = full
        temps = comm.bcast(temps, root=0)

        atm_grid = self.cfg.grid("atmosphere")
        decomp = Decomposition(atm_grid, comm.size)
        start, stop = decomp.rows(comm.rank)
        surfaces = {k: v for k, v in temps.items() if k != "atmosphere"}
        atm_band, partials = self.engine.compute_fluxes_band(
            temps["atmosphere"], surfaces, start, stop
        )
        bands = comm.gather(atm_band, root=0)
        reduced: dict[str, Optional[np.ndarray]] = {}
        for kind in self.active_kinds:
            if kind != "atmosphere":
                reduced[kind] = comm.reduce(partials[kind], op=SUM, root=0)
        if comm.rank != 0:
            return
        assert bands is not None
        atm_flux = np.concatenate(bands, axis=0)
        sfc_fluxes = {k: v for k, v in reduced.items()}
        self.engine.record_residual(atm_flux, sfc_fluxes)
        for kind in self.active_kinds:
            name = self.cfg.name(kind)
            comp_id = self.mph.layout.component(name).comp_id
            payload = atm_flux if kind == "atmosphere" else sfc_fluxes[kind]
            self.mph.send((step, payload), name, 0, FLUX_TAG_BASE + comp_id)

    def _step_join(self, step: int) -> None:
        temps: dict[str, np.ndarray] = {}
        for kind in self.active_kinds:
            join = self._joins[kind]
            root = self._comp_size(kind)  # coupler local 0's rank in the join
            blocks = join.gather(None, root=root)
            if join.rank == root:
                assert blocks is not None
                temps[kind] = np.concatenate(
                    [b for b in blocks if b is not None], axis=0
                )
        fluxes: dict[str, Optional[np.ndarray]] = {k: None for k in self.active_kinds}
        if self.comm.rank == 0:
            atm_flux, sfc_fluxes = self.engine.compute_fluxes(
                temps["atmosphere"],
                {k: v for k, v in temps.items() if k != "atmosphere"},
            )
            fluxes["atmosphere"] = atm_flux
            fluxes.update(sfc_fluxes)
        for kind in self.active_kinds:
            join = self._joins[kind]
            root = self._comp_size(kind)
            pieces = None
            if join.rank == root:
                full = fluxes[kind]
                assert full is not None
                decomp = Decomposition(self.cfg.grid(kind), self._comp_size(kind))
                pieces = [
                    full[decomp.rows(r)[0] : decomp.rows(r)[1]]
                    for r in range(decomp.size)
                ] + [None] * self.comm.size
            join.scatter(pieces, root=root)

    # -- implicit coupling ------------------------------------------------------

    def _step_implicit(self, step: int) -> None:
        """Iterate this step's exchange to interface convergence.

        The fixed-point unknown is the packed vector of every component's
        temperature *after* the step; each solver iteration computes trial
        fluxes from the current iterate, has every component re-advance
        from its step-start snapshot under them, and collects the resulting
        temperatures.  On convergence the committed fluxes are the ones
        computed from the converged temperatures — the backward-coupled
        exchange the explicit coupler only approximates.
        """
        x = self._spec.pack(self._collect_temps(step))  # step-start state
        self._solver.initialize_solution_step()
        if self._predictor is not None:
            self._predictor.initialize_solution_step()
            guess = self._predictor.predict()
            if guess is not None:
                x = guess

        def operate(xk: np.ndarray) -> np.ndarray:
            fluxes = self._fluxes_of(self._spec.unpack(xk), record=False)
            self._send_command(step, "iterate", fluxes)
            return self._spec.pack(self._collect_temps(step))

        result = self._solver.solve_solution_step(x, operate, self._spec)
        fluxes = self._fluxes_of(self._spec.unpack(result.x), record=True)
        self._send_command(step, "commit", fluxes)
        if self._predictor is not None:
            self._predictor.update(result.x)
            self._predictor.finalize_solution_step()
        self._solver.finalize_solution_step()
        self.coupling_iterations.append(result.iterations)
        self.coupling_converged.append(result.converged)

    def _collect_temps(self, step: int) -> dict[str, np.ndarray]:
        """Every component's published temperature (serial coupler)."""
        temps: dict[str, np.ndarray] = {}
        if self.cfg.exchange == "join":
            for kind in self.active_kinds:
                join = self._joins[kind]
                blocks = join.gather(None, root=self._comp_size(kind))
                assert blocks is not None
                temps[kind] = np.concatenate(
                    [b for b in blocks if b is not None], axis=0
                )
            return temps
        for kind in self.active_kinds:
            name = self.cfg.name(kind)
            comp_id = self.mph.layout.component(name).comp_id
            got_name, got_step, full = self.mph.recv(name, 0, TEMP_TAG_BASE + comp_id)
            if got_name != name or got_step != step:
                raise ReproError(
                    f"coupler protocol out of step: expected ({name}, {step}), got "
                    f"({got_name}, {got_step})"
                )
            temps[kind] = full
        return temps

    def _fluxes_of(
        self, temps: dict[str, np.ndarray], record: bool
    ) -> dict[str, np.ndarray]:
        atm_flux, sfc_fluxes = self.engine.compute_fluxes(
            temps["atmosphere"],
            {k: v for k, v in temps.items() if k != "atmosphere"},
            record=record,
        )
        out = {"atmosphere": atm_flux}
        out.update(sfc_fluxes)
        return out

    def _send_command(
        self, step: int, cmd: str, fluxes: dict[str, np.ndarray]
    ) -> None:
        """Hand every component a command plus its flux."""
        for kind in self.active_kinds:
            if self.cfg.exchange == "join":
                join = self._joins[kind]
                size = self._comp_size(kind)
                decomp = Decomposition(self.cfg.grid(kind), size)
                full = fluxes[kind]
                pieces = [
                    (cmd, full[decomp.rows(r)[0] : decomp.rows(r)[1]])
                    for r in range(size)
                ] + [None] * self.comm.size
                join.scatter(pieces, root=size)
            else:
                name = self.cfg.name(kind)
                comp_id = self.mph.layout.component(name).comp_id
                self.mph.send(
                    (step, (cmd, fluxes[kind])), name, 0, FLUX_TAG_BASE + comp_id
                )

    def diagnostics(self) -> dict[str, Any]:
        """Coupler-side diagnostics: the exchange-balance audit."""
        out = {
            "kind": "coupler",
            "name": self.name,
            "size": self.comm.size,
            "exchange_residual": list(self.engine.exchange_residual),
            "max_exchange_residual": self.engine.max_residual(),
            "dropped_components": list(self.dropped_components),
        }
        if self._implicit:
            out["coupling_solver"] = self.cfg.coupling_solver
            out["coupling_iterations"] = list(self.coupling_iterations)
            out["coupling_converged"] = list(self.coupling_converged)
        return out


def _scatter_blocks(comm: Comm, grid: LatLonGrid, full: Optional[np.ndarray]) -> np.ndarray:
    """Scatter a full field from component rank 0 into latitude blocks."""
    decomp = Decomposition(grid, comm.size)
    blocks = None
    if comm.rank == 0:
        assert full is not None
        blocks = [full[decomp.rows(r)[0] : decomp.rows(r)[1]] for r in range(comm.size)]
    return comm.scatter(blocks, root=0)


# ---------------------------------------------------------------------------
# programs and mode assembly
# ---------------------------------------------------------------------------


def _drive(mph: MPH, cfg: CCSMConfig, kinds: tuple[str, ...]) -> dict[str, Any]:
    """Run the coupled loop for the components this process hosts."""
    runners: list[ComponentRunner] = []
    coupler: Optional[CouplerRunner] = None
    for kind in kinds:
        comm = mph.proc_in_component(cfg.name(kind))
        if comm is None:
            continue
        if kind == "coupler":
            coupler = CouplerRunner(mph, cfg, comm)
        else:
            runners.append(ComponentRunner(mph, cfg, kind, comm))
    runners.sort(key=lambda r: r.comp_id)

    degraded: Optional[str] = None
    for step in range(cfg.nsteps):
        try:
            for r in runners:
                r.publish(step)
            if coupler is not None:
                coupler.step(step)
            for r in runners:
                try:
                    r.receive_and_step(step)
                except ComponentCrash:
                    # In-job component restart: restore the last checkpoint,
                    # replay the logged fluxes, then redo this step — its flux
                    # message is still queued (the coupler sends eagerly).
                    r.recover()
                    r.receive_and_step(step)
        except ProcessFailedError as exc:
            # A communication partner this process cannot do without died
            # (a sibling rank of one of its components, or the coupler):
            # stop cleanly with the histories produced so far instead of
            # stalling or aborting the survivors.
            degraded = str(exc)
            break

    if cfg.checkpoint_dir is not None:
        from repro.climate import checkpoint

        for r in runners:
            try:
                checkpoint.save(r.model, cfg.checkpoint_dir, r.name)
            except ProcessFailedError:
                continue  # a dead sibling rank; no consistent state to save

    out: dict[str, Any] = {r.kind: r.diagnostics() for r in runners}
    if coupler is not None:
        out["coupler"] = coupler.diagnostics()
    if degraded is not None:
        for diag in out.values():
            diag["degraded"] = degraded
    return out


def _program(cfg: CCSMConfig, kinds: tuple[str, ...]):
    """An executable hosting the given component kinds."""

    def program(world, env):
        names = [cfg.name(k) for k in kinds]
        mph = components_setup(world, *names, env=env)
        return _drive(mph, cfg, kinds)

    program.__name__ = "_".join(k[:3] for k in kinds)
    return program


def build_registry(cfg: CCSMConfig, mode: str) -> Registry:
    """The registration file for *mode* (the paper's §4 examples,
    parameterised)."""
    n = cfg.procs
    name = cfg.name
    if mode in ("scse", "scme"):
        kinds = ("atmosphere",) if mode == "scse" else MODEL_KINDS + ("coupler",)
        body = "\n".join(name(k) for k in kinds)
        return Registry.from_text(f"BEGIN\n{body}\nEND\n")
    if mode == "mcse":
        lines, offset = [], 0
        for k in MODEL_KINDS + ("coupler",):
            lines.append(f"{name(k)} {offset} {offset + n[k] - 1}")
            offset += n[k]
        body = "\n".join(lines)
        return Registry.from_text(
            f"BEGIN\nMulti_Component_Begin\n{body}\nMulti_Component_End\nEND\n"
        )
    if mode == "mcme":
        na, nl, no, ni = n["atmosphere"], n["land"], n["ocean"], n["ice"]
        return Registry.from_text(
            "BEGIN\n"
            "Multi_Component_Begin\n"
            f"{name('atmosphere')} 0 {na - 1}\n"
            f"{name('land')} {na} {na + nl - 1}\n"
            "Multi_Component_End\n"
            "Multi_Component_Begin\n"
            f"{name('ocean')} 0 {no - 1}\n"
            f"{name('ice')} {no} {no + ni - 1}\n"
            "Multi_Component_End\n"
            f"{name('coupler')}\n"
            "END\n"
        )
    if mode == "mcme_overlap":
        na, no, ni = n["atmosphere"], n["ocean"], n["ice"]
        if n["land"] != na:
            raise ReproError(
                "mcme_overlap fully overlaps land with atmosphere; set "
                "procs['land'] == procs['atmosphere']"
            )
        return Registry.from_text(
            "BEGIN\n"
            "Multi_Component_Begin\n"
            f"{name('atmosphere')} 0 {na - 1}\n"
            f"{name('land')} 0 {na - 1}\n"
            "Multi_Component_End\n"
            "Multi_Component_Begin\n"
            f"{name('ocean')} 0 {no - 1}\n"
            f"{name('ice')} {no} {no + ni - 1}\n"
            "Multi_Component_End\n"
            f"{name('coupler')}\n"
            "END\n"
        )
    raise ReproError(f"unknown mode {mode!r}; expected one of {MODES}")


def build_executables(cfg: CCSMConfig, mode: str) -> list[tuple]:
    """The ``(program, nprocs)`` list for *mode*."""
    n = cfg.procs
    if mode == "scse":
        return [(_program(cfg, ("atmosphere",)), n["atmosphere"])]
    if mode == "scme":
        return [(_program(cfg, (k,)), n[k]) for k in MODEL_KINDS + ("coupler",)]
    if mode == "mcse":
        total = sum(n[k] for k in MODEL_KINDS + ("coupler",))
        return [(_program(cfg, MODEL_KINDS + ("coupler",)), total)]
    if mode == "mcme":
        return [
            (_program(cfg, ("atmosphere", "land")), n["atmosphere"] + n["land"]),
            (_program(cfg, ("ocean", "ice")), n["ocean"] + n["ice"]),
            (_program(cfg, ("coupler",)), n["coupler"]),
        ]
    if mode == "mcme_overlap":
        return [
            (_program(cfg, ("atmosphere", "land")), n["atmosphere"]),
            (_program(cfg, ("ocean", "ice")), n["ocean"] + n["ice"]),
            (_program(cfg, ("coupler",)), n["coupler"]),
        ]
    raise ReproError(f"unknown mode {mode!r}; expected one of {MODES}")


def run_ccsm(mode: str, cfg: Optional[CCSMConfig] = None, **job_kwargs) -> dict[str, Any]:
    """Run the coupled system in one execution mode.

    Returns ``kind -> diagnostics`` assembled across executables, with
    ``final_field`` taken from each component's local processor 0.

    >>> diags = run_ccsm("scme", CCSMConfig(nsteps=2))
    >>> sorted(diags)
    ['atmosphere', 'coupler', 'ice', 'land', 'ocean']
    """
    cfg = cfg or CCSMConfig()
    if cfg.coupling == "implicit" and mode == "mcme_overlap":
        raise ReproError(
            "implicit coupling needs each process to host at most one component; "
            "mcme_overlap time-shares atmosphere and land on the same processors"
        )
    if mode == "scse":
        # Stand-alone component: no coupler, pure single-component run.
        cfg = replace(cfg)  # do not mutate the caller's config
    registry = build_registry(cfg, mode)
    executables = build_executables(cfg, mode)
    result = mph_run(executables, registry=registry, **job_kwargs)

    out: dict[str, Any] = {}
    for proc in result.procs:
        if not isinstance(proc.value, dict):
            continue
        for kind, diag in proc.value.items():
            keep = out.get(kind)
            if keep is None or (
                diag.get("final_field") is not None and keep.get("final_field") is None
            ):
                out[kind] = diag
    return out


def total_energy_series(diags: dict[str, Any]) -> np.ndarray:
    """Total heat content per step, summed over the model components —
    constant under :meth:`CCSMConfig.conservation` physics."""
    series = [np.asarray(d["energy"]) for k, d in diags.items() if k in MODEL_KINDS]
    if not series:
        raise ReproError("no model components in diagnostics")
    return np.sum(series, axis=0)
