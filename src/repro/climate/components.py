"""Component models of the toy CCSM: atmosphere and surface components.

Each component is a genuinely numerical (if deliberately simple) model: a
2-D energy-balance temperature equation on its own lat–lon grid,

.. math::

    C \\, \\partial_t T = C D \\nabla^2 T + Q_{abs} - (A + B (T - T_0)) + F,

where :math:`Q_{abs}` is absorbed insolation, :math:`A + B(T-T_0)` the
linearised outgoing long-wave radiation, and :math:`F` the coupling flux
received from the flux coupler each step.  Components differ in heat
capacity, diffusivity, albedo and extra prognostics (sea ice carries a
thickness field), which is what makes the coupled exchange non-trivial.

The numerical core is decomposition-independent: the stencil is local plus
halo rows, so a component produces bitwise-identical fields regardless of
how many processes it runs on or which execution mode hosts it — the
property experiment E11 leans on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.climate.fields import DistributedField
from repro.climate.grid import LatLonGrid
from repro.errors import ReproError
from repro.mpi.comm import Comm


@dataclass
class PhysicsParams:
    """Physical parameters of one component model (per unit area, SI)."""

    #: Areal heat capacity [J m^-2 K^-1].
    heat_capacity: float = 1.0e7
    #: Diffusivity in grid units per second (the stencil is unit-spaced).
    diffusivity: float = 0.0
    #: Shortwave albedo (surfaces only; the atmosphere absorbs no solar).
    albedo: float = 0.3
    #: Solar constant [W m^-2]; 0 switches insolation off.
    solar_constant: float = 1361.0
    #: OLR linearisation ``A + B (T - T_ref)`` [W m^-2], [W m^-2 K^-1].
    olr_a: float = 0.0
    olr_b: float = 0.0
    #: Reference temperature for the OLR linearisation [K].
    t_ref: float = 288.0

    def validate(self) -> "PhysicsParams":
        """Sanity-check parameter ranges; returns self for chaining."""
        if self.heat_capacity <= 0:
            raise ReproError(f"heat_capacity must be positive, got {self.heat_capacity}")
        if not 0.0 <= self.albedo <= 1.0:
            raise ReproError(f"albedo must be in [0, 1], got {self.albedo}")
        if self.diffusivity < 0:
            raise ReproError(f"diffusivity must be >= 0, got {self.diffusivity}")
        return self


def insolation(lat_deg: np.ndarray, solar_constant: float) -> np.ndarray:
    """Annual-mean insolation profile: the classic second-Legendre EBM form
    ``(S0/4) (1 - 0.48 P2(sin lat))`` [W m^-2]."""
    s = np.sin(np.deg2rad(lat_deg))
    p2 = 0.5 * (3.0 * s * s - 1.0)
    return (solar_constant / 4.0) * (1.0 - 0.48 * p2)


@dataclass
class StepDiagnostics:
    """Energy bookkeeping of one model step (area-integrated, W m^-2
    equivalents since areas are fractional)."""

    solar_in: float = 0.0
    olr_out: float = 0.0
    coupling_in: float = 0.0
    diffusion_residual: float = 0.0


class ComponentModel:
    """Base class: an energy-balance temperature model on its own grid.

    Parameters
    ----------
    comm :
        The component communicator (from MPH).
    grid :
        The component's global grid.
    params :
        Physical parameters.
    t_init :
        ``fn(lat_deg, lon_deg) -> K`` initial condition; a smooth default
        (warm equator, cold poles, small zonal wave) is used when omitted.
    """

    kind = "component"

    def __init__(
        self,
        comm: Comm,
        grid: LatLonGrid,
        params: PhysicsParams,
        t_init=None,
        forcing=None,
        co2=None,
        field_cls=DistributedField,
    ):
        self.comm = comm
        self.grid = grid
        self.params = params.validate()
        init = t_init if t_init is not None else self.default_initial_condition
        #: The temperature field; *field_cls* selects the decomposition
        #: (1-D latitude bands by default, or
        #: :class:`~repro.climate.fields2d.DistributedField2D`).
        self.temperature = field_cls.from_function(comm, grid, init)
        #: Optional :class:`~repro.climate.forcing.SeasonalForcing`; when
        #: set, insolation follows the seasonal cycle instead of the
        #: annual-mean profile.
        self.forcing = forcing
        #: Optional :class:`~repro.climate.forcing.CO2Scenario`; when set,
        #: its radiative forcing is subtracted from the OLR each step.
        self.co2 = co2
        #: Model time in seconds (advanced by each step's dt).
        self.current_time = 0.0
        #: Accumulated energy bookkeeping since construction.
        self.budget = StepDiagnostics()
        self.steps_taken = 0

    @staticmethod
    def default_initial_condition(lat: np.ndarray, lon: np.ndarray) -> np.ndarray:
        """Warm equator / cold poles with a small zonal perturbation."""
        return (
            288.0
            + 30.0 * (np.cos(np.deg2rad(lat)) ** 2 - 0.5)
            + 2.0 * np.sin(np.deg2rad(2.0 * lon)) * np.cos(np.deg2rad(lat))
        )

    # -- physics ---------------------------------------------------------------

    def _local_insolation(self) -> np.ndarray:
        rs, cs = self.temperature.local_slices
        lat = self.grid.lat_centers[rs]
        if self.forcing is not None:
            q = self.forcing.daily_insolation(lat, self.current_time)
        else:
            q = insolation(lat, self.params.solar_constant)
        q = q * (1.0 - self.params.albedo)
        ncols = len(range(*cs.indices(self.grid.nlon)))
        return np.repeat(q[:, None], ncols, axis=1)

    def absorbed_solar(self) -> np.ndarray:
        """Absorbed shortwave [W m^-2] on the local block.  The base model
        absorbs at the surface; the atmosphere overrides this to zero."""
        return self._local_insolation()

    def outgoing_longwave(self) -> np.ndarray:
        """Linearised OLR [W m^-2] on the local block, reduced by any CO2
        scenario's greenhouse forcing."""
        p = self.params
        olr = p.olr_a + p.olr_b * (self.temperature.data - p.t_ref)
        if self.co2 is not None:
            olr = olr - self.co2.forcing(self.current_time)
        return olr

    def step(self, dt: float, coupling_flux: Optional[np.ndarray] = None) -> StepDiagnostics:
        """Advance one time step of *dt* seconds.

        Parameters
        ----------
        coupling_flux :
            Flux from the coupler on the local block [W m^-2], positive
            warming this component.  ``None`` means zero.

        Returns
        -------
        StepDiagnostics
            This step's area-integrated energy terms (also accumulated on
            :attr:`budget`).
        """
        p = self.params
        temp = self.temperature
        solar = self.absorbed_solar()
        olr = self.outgoing_longwave()
        flux = np.zeros_like(temp.data) if coupling_flux is None else np.asarray(coupling_flux)
        if flux.shape != temp.data.shape:
            raise ReproError(
                f"{self.kind}: coupling flux shape {flux.shape} != local block "
                f"{temp.data.shape}"
            )
        lap = temp.laplacian() if p.diffusivity > 0.0 else None

        tendency = (solar - olr + flux) / p.heat_capacity
        if lap is not None:
            tendency = tendency + p.diffusivity * lap
        temp.data = temp.data + dt * tendency

        diag = StepDiagnostics(
            solar_in=_integral(self, solar) * dt,
            olr_out=_integral(self, olr) * dt,
            coupling_in=_integral(self, flux) * dt,
            diffusion_residual=(
                _integral(self, p.heat_capacity * p.diffusivity * lap) * dt
                if lap is not None
                else 0.0
            ),
        )
        self.budget.solar_in += diag.solar_in
        self.budget.olr_out += diag.olr_out
        self.budget.coupling_in += diag.coupling_in
        self.budget.diffusion_residual += diag.diffusion_residual
        self.steps_taken += 1
        self.current_time += dt
        return diag

    # -- snapshot / restore (implicit coupling) ---------------------------------

    def state_snapshot(self) -> dict:
        """Capture the restartable model state (local block).

        The implicit coupling loop evaluates trial steps repeatedly from
        the same step-start state; :meth:`state_restore` rewinds to a
        snapshot bitwise (temperature, clock, step count, energy budget).
        """
        return {
            "temperature": self.temperature.data.copy(),
            "current_time": self.current_time,
            "steps_taken": self.steps_taken,
            "budget": StepDiagnostics(
                solar_in=self.budget.solar_in,
                olr_out=self.budget.olr_out,
                coupling_in=self.budget.coupling_in,
                diffusion_residual=self.budget.diffusion_residual,
            ),
        }

    def state_restore(self, snapshot: dict) -> None:
        """Rewind to a :meth:`state_snapshot` (bitwise)."""
        self.temperature.data = snapshot["temperature"].copy()
        self.current_time = snapshot["current_time"]
        self.steps_taken = snapshot["steps_taken"]
        b = snapshot["budget"]
        self.budget = StepDiagnostics(
            solar_in=b.solar_in,
            olr_out=b.olr_out,
            coupling_in=b.coupling_in,
            diffusion_residual=b.diffusion_residual,
        )

    # -- diagnostics ------------------------------------------------------------

    def mean_temperature(self) -> float:
        """Area-weighted global mean temperature [K] (same on every rank)."""
        return self.temperature.area_mean()

    def energy(self) -> float:
        """Heat content per unit planet area, ``C * <T>`` [J m^-2]."""
        return self.params.heat_capacity * self.temperature.area_mean()


def _integral(model: ComponentModel, local: np.ndarray) -> float:
    """Area integral of a local block, decomposition-independent (see
    :func:`repro.climate.fields.weighted_global_sum`)."""
    from repro.climate.fields import weighted_global_sum

    return weighted_global_sum(
        model.comm, model.grid, local, model.temperature.local_slices
    )


class AtmosphereModel(ComponentModel):
    """The atmosphere: diffusive heat transport, OLR to space, no direct
    solar absorption (the surfaces absorb and hand heat up as coupling
    flux)."""

    kind = "atmosphere"

    @classmethod
    def default_params(cls) -> PhysicsParams:
        """CCSM-toy defaults: light column, strong transport, full OLR."""
        return PhysicsParams(
            heat_capacity=1.0e7,
            diffusivity=2.0e-6,
            albedo=0.0,
            solar_constant=0.0,  # surfaces absorb the sun
            olr_a=210.0,
            olr_b=2.0,
            t_ref=288.0,
        )

    def absorbed_solar(self) -> np.ndarray:
        """The toy atmosphere is shortwave-transparent."""
        return np.zeros_like(self.temperature.data)


class OceanModel(ComponentModel):
    """The ocean: a 50 m mixed layer — huge heat capacity, slow response."""

    kind = "ocean"

    @classmethod
    def default_params(cls) -> PhysicsParams:
        return PhysicsParams(
            heat_capacity=2.0e8,
            diffusivity=5.0e-7,
            albedo=0.10,
            solar_constant=1361.0,
            olr_a=0.0,
            olr_b=0.0,  # surfaces vent through the atmosphere
        )


class LandModel(ComponentModel):
    """The land surface: tiny heat capacity, fast response, no transport."""

    kind = "land"

    @classmethod
    def default_params(cls) -> PhysicsParams:
        return PhysicsParams(
            heat_capacity=1.0e7,
            diffusivity=0.0,
            albedo=0.25,
            solar_constant=1361.0,
        )


class SeaIceModel(ComponentModel):
    """Sea ice: bright, cold, and carrying an ice-thickness prognostic.

    Thickness grows where the ice temperature sits below freezing and
    melts above it — a deliberately simple thermodynamic law that gives
    the component distinct state to exchange and checkpoint.
    """

    kind = "seaice"

    #: Freezing point [K] and thickness growth rate [m K^-1 s^-1].
    t_freeze = 271.35
    growth_rate = 1.0e-8

    def __init__(
        self,
        comm: Comm,
        grid: LatLonGrid,
        params: PhysicsParams,
        t_init=None,
        forcing=None,
        co2=None,
        field_cls=DistributedField,
    ):
        super().__init__(
            comm, grid, params, t_init, forcing=forcing, co2=co2, field_cls=field_cls
        )
        #: Ice thickness [m] on the local block.
        self.thickness = np.full(self.temperature.data.shape, 1.0)

    @classmethod
    def default_params(cls) -> PhysicsParams:
        return PhysicsParams(
            heat_capacity=5.0e7,
            diffusivity=0.0,
            albedo=0.60,
            solar_constant=1361.0,
        )

    def step(self, dt: float, coupling_flux: Optional[np.ndarray] = None) -> StepDiagnostics:
        diag = super().step(dt, coupling_flux)
        self.thickness = np.clip(
            self.thickness + dt * self.growth_rate * (self.t_freeze - self.temperature.data),
            0.0,
            None,
        )
        return diag

    def state_snapshot(self) -> dict:
        snap = super().state_snapshot()
        snap["thickness"] = self.thickness.copy()
        return snap

    def state_restore(self, snapshot: dict) -> None:
        super().state_restore(snapshot)
        self.thickness = snapshot["thickness"].copy()

    def mean_thickness(self) -> float:
        """Area-weighted mean ice thickness [m]."""
        return _integral(self, self.thickness)
