"""Lat–lon grids and 1-D block domain decomposition.

Every component model in the toy CCSM runs on its own regular lat–lon
grid (components deliberately differ in resolution so the coupler's
conservative regridding is exercised, as in the real system).  Fields are
decomposed over a component's processes in contiguous latitude bands —
the classic 1-D block decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class LatLonGrid:
    """A regular global latitude–longitude grid.

    Latitude cell edges are uniform in [-90, 90] (``nlat`` bands), and
    longitude edges uniform in [0, 360) (``nlon`` columns).  Cell areas are
    proportional to the sine difference of the latitude edges — exact
    sphere areas, so area-weighted integrals are physically meaningful.
    """

    nlat: int
    nlon: int
    name: str = "grid"

    def __post_init__(self) -> None:
        if self.nlat < 1 or self.nlon < 1:
            raise ReproError(f"grid {self.name!r}: nlat/nlon must be >= 1")

    @cached_property
    def lat_edges(self) -> np.ndarray:
        """Latitude cell edges in degrees, from -90 to 90 (``nlat + 1``)."""
        return np.linspace(-90.0, 90.0, self.nlat + 1)

    @cached_property
    def lat_centers(self) -> np.ndarray:
        """Latitude cell centers in degrees (``nlat``)."""
        edges = self.lat_edges
        return 0.5 * (edges[:-1] + edges[1:])

    @cached_property
    def lon_centers(self) -> np.ndarray:
        """Longitude cell centers in degrees (``nlon``)."""
        return (np.arange(self.nlon) + 0.5) * (360.0 / self.nlon)

    @cached_property
    def area_weights(self) -> np.ndarray:
        """Fractional cell areas, shape ``(nlat, nlon)``, summing to 1."""
        edges = np.deg2rad(self.lat_edges)
        band = np.sin(edges[1:]) - np.sin(edges[:-1])  # per latitude band
        w = np.repeat(band[:, None] / self.nlon, self.nlon, axis=1)
        return w / w.sum()

    @property
    def shape(self) -> tuple[int, int]:
        """``(nlat, nlon)``."""
        return (self.nlat, self.nlon)

    @property
    def ncells(self) -> int:
        """Total number of cells."""
        return self.nlat * self.nlon

    def area_mean(self, field: np.ndarray) -> float:
        """Area-weighted global mean of a full field on this grid."""
        field = np.asarray(field)
        if field.shape != self.shape:
            raise ReproError(
                f"grid {self.name!r}: field shape {field.shape} != grid shape {self.shape}"
            )
        return float((field * self.area_weights).sum())

    def area_integral(self, field: np.ndarray) -> float:
        """Area-weighted integral (equals the mean since weights sum to 1,
        but reads better in conservation budgets)."""
        return self.area_mean(field)


@dataclass(frozen=True)
class Decomposition:
    """A 1-D block decomposition of a grid's latitude rows over *size*
    processes (remainder rows on the leading ranks)."""

    grid: LatLonGrid
    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ReproError("decomposition needs size >= 1")
        if self.size > self.grid.nlat:
            raise ReproError(
                f"cannot decompose {self.grid.nlat} latitude rows over {self.size} "
                "processes (each process needs at least one row)"
            )

    def rows(self, rank: int) -> tuple[int, int]:
        """The ``[start, stop)`` global row range of *rank*."""
        if not 0 <= rank < self.size:
            raise ReproError(f"rank {rank} out of range for decomposition of size {self.size}")
        base, rem = divmod(self.grid.nlat, self.size)
        start = rank * base + min(rank, rem)
        stop = start + base + (1 if rank < rem else 0)
        return start, stop

    def nrows(self, rank: int) -> int:
        """Local row count of *rank*."""
        start, stop = self.rows(rank)
        return stop - start

    def owner_of_row(self, row: int) -> int:
        """The rank owning global row *row*."""
        if not 0 <= row < self.grid.nlat:
            raise ReproError(f"row {row} out of range")
        for rank in range(self.size):
            start, stop = self.rows(rank)
            if start <= row < stop:
                return rank
        raise AssertionError("unreachable")  # pragma: no cover

    def local_shape(self, rank: int) -> tuple[int, int]:
        """Shape of *rank*'s local block."""
        return (self.nrows(rank), self.grid.nlon)
