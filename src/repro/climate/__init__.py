"""A CCSM-style toy coupled climate model exercising MPH.

The paper's motivating application: atmosphere, ocean, land and sea-ice
component models interacting through a flux coupler.  Every piece here is
a real (if simple) numerical model — see :mod:`repro.climate.components` —
and the assembled system (:mod:`repro.climate.ccsm`) runs identically
under every MPH execution mode.
"""

from repro.climate.ccsm import (
    MODEL_KINDS,
    MODES,
    SURFACE_KINDS,
    CCSMConfig,
    build_executables,
    build_registry,
    run_ccsm,
    total_energy_series,
)
from repro.climate.components import (
    AtmosphereModel,
    ComponentModel,
    LandModel,
    OceanModel,
    PhysicsParams,
    SeaIceModel,
    insolation,
)
from repro.climate.checkpoint import restore as restore_checkpoint, save as save_checkpoint
from repro.climate.coupler import FluxCoupler, SurfaceFractions
from repro.climate.forcing import YEAR_SECONDS, CO2Scenario, SeasonalForcing
from repro.climate.diagnostics import EnergyReport, energy_report
from repro.climate.fields import DistributedField, weighted_global_sum
from repro.climate.fields2d import DistributedField2D
from repro.climate.grid import Decomposition, LatLonGrid
from repro.climate.nesting import RegionSpec, RegionalGrid, RegionalModel
from repro.climate.regrid import ConservativeRegridder, overlap_matrix, regrid

__all__ = [
    "MODEL_KINDS",
    "MODES",
    "SURFACE_KINDS",
    "CCSMConfig",
    "build_executables",
    "build_registry",
    "run_ccsm",
    "total_energy_series",
    "AtmosphereModel",
    "ComponentModel",
    "LandModel",
    "OceanModel",
    "PhysicsParams",
    "SeaIceModel",
    "insolation",
    "FluxCoupler",
    "SurfaceFractions",
    "restore_checkpoint",
    "save_checkpoint",
    "YEAR_SECONDS",
    "CO2Scenario",
    "SeasonalForcing",
    "EnergyReport",
    "energy_report",
    "DistributedField",
    "DistributedField2D",
    "weighted_global_sum",
    "Decomposition",
    "LatLonGrid",
    "RegionSpec",
    "RegionalGrid",
    "RegionalModel",
    "ConservativeRegridder",
    "overlap_matrix",
    "regrid",
]
