"""One-way regional nesting: a limited-area model driven by the global one.

Paper §7 lists MPH's adoption in "NCAR's Weather Research and Forecast
(WRF) model, the new generation of the mesoscale model (MM5)" — regional
models that take their lateral boundary conditions from a coarser global
model.  This module reproduces that coupling pattern as a third MPH
application:

* :class:`RegionalGrid` — a limited-area grid nested in a global
  :class:`~repro.climate.grid.LatLonGrid`, its boundaries aligned with
  parent cell edges and each parent cell subdivided ``refinement`` times;
* conservative parent→region interpolation (the same overlap-matrix
  machinery as the coupler's regridding, restricted to the region);
* :class:`RegionalModel` — the same energy-balance physics on the fine
  grid, plus Davies boundary relaxation: the outer ``relax_width`` cells
  are nudged toward the parent-supplied frame each step;
* the nest exchange itself travels over MPH name-addressed messaging
  (global model → regional model, one way).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional

import numpy as np

from repro.climate.components import PhysicsParams, insolation
from repro.climate.grid import LatLonGrid
from repro.climate.regrid import overlap_matrix
from repro.errors import ReproError
from repro.mpi.comm import Comm
from repro.mpi.constants import PROC_NULL

_TAG_NORTH, _TAG_SOUTH = 41, 42


@dataclass(frozen=True)
class RegionSpec:
    """A nest region in parent-grid index space.

    ``row0:row1`` / ``col0:col1`` select parent cells (python slices);
    ``refinement`` subdivides each selected parent cell into
    ``refinement × refinement`` regional cells.
    """

    row0: int
    row1: int
    col0: int
    col1: int
    refinement: int = 3

    def validate(self, parent: LatLonGrid) -> "RegionSpec":
        """Check the region fits inside the parent grid."""
        if not (0 <= self.row0 < self.row1 <= parent.nlat):
            raise ReproError(f"region rows {self.row0}:{self.row1} outside parent {parent.nlat}")
        if not (0 <= self.col0 < self.col1 <= parent.nlon):
            raise ReproError(f"region cols {self.col0}:{self.col1} outside parent {parent.nlon}")
        if self.refinement < 1:
            raise ReproError(f"refinement must be >= 1, got {self.refinement}")
        return self


class RegionalGrid:
    """The nested limited-area grid."""

    def __init__(self, parent: LatLonGrid, spec: RegionSpec):
        self.parent = parent
        self.spec = spec.validate(parent)
        self.nlat = (spec.row1 - spec.row0) * spec.refinement
        self.nlon = (spec.col1 - spec.col0) * spec.refinement

    @cached_property
    def lat_edges(self) -> np.ndarray:
        """Regional latitude edges — the parent edges over the region,
        each interval subdivided uniformly."""
        coarse = self.parent.lat_edges[self.spec.row0 : self.spec.row1 + 1]
        return _subdivide(coarse, self.spec.refinement)

    @cached_property
    def lon_edges(self) -> np.ndarray:
        """Regional longitude edges."""
        step = 360.0 / self.parent.nlon
        coarse = np.arange(self.spec.col0, self.spec.col1 + 1) * step
        return _subdivide(coarse, self.spec.refinement)

    @cached_property
    def lat_centers(self) -> np.ndarray:
        """Regional cell-center latitudes."""
        e = self.lat_edges
        return 0.5 * (e[:-1] + e[1:])

    @cached_property
    def lon_centers(self) -> np.ndarray:
        """Regional cell-center longitudes."""
        e = self.lon_edges
        return 0.5 * (e[:-1] + e[1:])

    @property
    def shape(self) -> tuple[int, int]:
        """``(nlat, nlon)`` of the regional grid."""
        return (self.nlat, self.nlon)

    @cached_property
    def area_weights(self) -> np.ndarray:
        """Cell areas normalised to sum to 1 *within the region*."""
        edges = np.deg2rad(self.lat_edges)
        band = np.sin(edges[1:]) - np.sin(edges[:-1])
        w = np.repeat(band[:, None], self.nlon, axis=1)
        return w / w.sum()

    def area_mean(self, field: np.ndarray) -> float:
        """Region-area-weighted mean of a full regional field."""
        field = np.asarray(field)
        if field.shape != self.shape:
            raise ReproError(f"field shape {field.shape} != region shape {self.shape}")
        return float((field * self.area_weights).sum())

    @cached_property
    def interp_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """Conservative parent→region remap matrices ``(M_lat, M_lon)``
        over the parent cells the region covers."""
        src_lat = np.sin(np.deg2rad(self.parent.lat_edges[self.spec.row0 : self.spec.row1 + 1]))
        dst_lat = np.sin(np.deg2rad(self.lat_edges))
        step = 360.0 / self.parent.nlon
        src_lon = np.arange(self.spec.col0, self.spec.col1 + 1) * step
        return overlap_matrix(src_lat, dst_lat), overlap_matrix(src_lon, self.lon_edges)

    def from_parent(self, parent_field: np.ndarray) -> np.ndarray:
        """Interpolate a full parent-grid field onto the regional grid
        (conservative; the region-mean of the result equals the parent's
        region mean)."""
        parent_field = np.asarray(parent_field, dtype=float)
        if parent_field.shape != self.parent.shape:
            raise ReproError(
                f"parent field shape {parent_field.shape} != parent grid {self.parent.shape}"
            )
        sub = parent_field[self.spec.row0 : self.spec.row1, self.spec.col0 : self.spec.col1]
        mlat, mlon = self.interp_matrices
        return mlat @ sub @ mlon.T


def _subdivide(edges: np.ndarray, k: int) -> np.ndarray:
    out = [edges[0]]
    for a, b in zip(edges[:-1], edges[1:]):
        out.extend(a + (b - a) * (i + 1) / k for i in range(k))
    return np.asarray(out)


class RegionalModel:
    """The limited-area model: fine-grid physics + Davies boundary
    relaxation toward the parent-supplied frame.

    Decomposed over its communicator in latitude rows like the global
    components; the stencil is non-periodic in both directions (edges
    replicate — the relaxation zone owns the boundary anyway).
    """

    kind = "regional"

    def __init__(
        self,
        comm: Comm,
        rgrid: RegionalGrid,
        params: PhysicsParams,
        relax_width: int = 2,
        relax_rate: float = 0.5,
        t_init=None,
    ):
        if comm.size > rgrid.nlat:
            raise ReproError(
                f"cannot decompose {rgrid.nlat} regional rows over {comm.size} processes"
            )
        if not 0.0 <= relax_rate <= 1.0:
            raise ReproError(f"relax_rate must be in [0, 1], got {relax_rate}")
        if relax_width < 1:
            raise ReproError(f"relax_width must be >= 1, got {relax_width}")
        self.comm = comm
        self.rgrid = rgrid
        self.params = params.validate()
        self.relax_width = relax_width
        self.relax_rate = relax_rate
        base, rem = divmod(rgrid.nlat, comm.size)
        start = comm.rank * base + min(comm.rank, rem)
        stop = start + base + (1 if comm.rank < rem else 0)
        self._rows = (start, stop)
        init = t_init if t_init is not None else (lambda la, lo: np.full_like(la, 288.0))
        lat2d, lon2d = np.meshgrid(
            rgrid.lat_centers[start:stop], rgrid.lon_centers, indexing="ij"
        )
        #: The regional prognostic temperature (local block).
        self.data = np.asarray(init(lat2d, lon2d), dtype=float)
        #: The current boundary-relaxation target (local block; None until
        #: the first frame arrives).
        self.target: Optional[np.ndarray] = None
        self.steps_taken = 0

    @property
    def rows_range(self) -> tuple[int, int]:
        """This rank's ``[start, stop)`` regional row range."""
        return self._rows

    # -- frames from the parent -------------------------------------------------

    def set_frame(self, regional_full: Optional[np.ndarray], root: int = 0) -> None:
        """Distribute a full regional-grid target field from *root* —
        the parent model's state interpolated by
        :meth:`RegionalGrid.from_parent` (collective)."""
        blocks = None
        if self.comm.rank == root:
            assert regional_full is not None
            regional_full = np.asarray(regional_full, dtype=float)
            if regional_full.shape != self.rgrid.shape:
                raise ReproError(
                    f"frame shape {regional_full.shape} != region shape {self.rgrid.shape}"
                )
            blocks = []
            base, rem = divmod(self.rgrid.nlat, self.comm.size)
            cursor = 0
            for r in range(self.comm.size):
                n = base + (1 if r < rem else 0)
                blocks.append(regional_full[cursor : cursor + n])
                cursor += n
        self.target = self.comm.scatter(blocks, root=root).copy()

    def relaxation_mask(self) -> np.ndarray:
        """Per-cell relaxation strength in [0, 1]: 1 at the outermost
        boundary ring, tapering linearly to 0 inside ``relax_width``."""
        start, stop = self._rows
        nlat, nlon = self.rgrid.shape
        rows = np.arange(start, stop)
        dist_r = np.minimum(rows, nlat - 1 - rows)[:, None]
        cols = np.arange(nlon)
        dist_c = np.minimum(cols, nlon - 1 - cols)[None, :]
        dist = np.minimum(dist_r, dist_c)
        return np.clip(1.0 - dist / self.relax_width, 0.0, 1.0)

    # -- stepping --------------------------------------------------------------------

    def _halo_rows(self) -> tuple[np.ndarray, np.ndarray]:
        comm = self.comm
        north = comm.rank + 1 if comm.rank + 1 < comm.size else PROC_NULL
        south = comm.rank - 1 if comm.rank > 0 else PROC_NULL
        comm.Send(self.data[-1], north, _TAG_NORTH)
        comm.Send(self.data[0], south, _TAG_SOUTH)
        south_halo = np.array(self.data[0])
        north_halo = np.array(self.data[-1])
        if south != PROC_NULL:
            comm.Recv(south_halo, south, _TAG_NORTH)
        if north != PROC_NULL:
            comm.Recv(north_halo, north, _TAG_SOUTH)
        return north_halo, south_halo

    def laplacian(self) -> np.ndarray:
        """Non-periodic five-point Laplacian (edges replicate)."""
        north, south = self._halo_rows()
        up = np.vstack([self.data[1:], north[None, :]])
        down = np.vstack([south[None, :], self.data[:-1]])
        east = np.hstack([self.data[:, 1:], self.data[:, -1:]])
        west = np.hstack([self.data[:, :1], self.data[:, :-1]])
        return up + down + east + west - 4.0 * self.data

    def step(self, dt: float) -> None:
        """One regional step: physics, then boundary relaxation toward the
        latest parent frame."""
        p = self.params
        start, stop = self._rows
        lat = self.rgrid.lat_centers[start:stop]
        solar = (
            insolation(lat, p.solar_constant)[:, None] * (1.0 - p.albedo)
        ) * np.ones_like(self.data)
        olr = p.olr_a + p.olr_b * (self.data - p.t_ref)
        tendency = (solar - olr) / p.heat_capacity
        if p.diffusivity > 0.0:
            tendency = tendency + p.diffusivity * self.laplacian()
        self.data = self.data + dt * tendency
        if self.target is not None:
            mask = self.relaxation_mask() * self.relax_rate
            self.data = self.data + mask * (self.target - self.data)
        self.steps_taken += 1

    # -- diagnostics -------------------------------------------------------------------

    def gather_global(self, root: int = 0) -> Optional[np.ndarray]:
        """Assemble the full regional field on rank *root*."""
        blocks = self.comm.gather(self.data, root=root)
        if self.comm.rank != root:
            return None
        assert blocks is not None
        return np.concatenate(blocks, axis=0)

    def mean_temperature(self) -> float:
        """Region-area-weighted mean temperature (same on every rank)."""
        full = self.gather_global(root=0)
        value = self.rgrid.area_mean(full) if self.comm.rank == 0 else None
        return self.comm.bcast(value, root=0)
