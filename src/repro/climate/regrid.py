"""Conservative regridding between lat–lon grids.

The flux coupler exchanges fields between components living on different
resolutions; coupling fluxes must be regridded *conservatively* or the
coupled system leaks energy.  For regular lat–lon grids the conservative
map factorises into two 1-D piecewise-constant overlap remaps (latitude in
sine coordinates — exact sphere areas — and longitude in linear
coordinates), applied as small dense matrices.

Conservation property (tested and relied on by the energy diagnostics)::

    dst_grid.area_integral(regrid(f)) == src_grid.area_integral(f)

to floating-point round-off, for every field ``f``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.climate.grid import LatLonGrid
from repro.errors import ReproError


def overlap_matrix(src_edges: np.ndarray, dst_edges: np.ndarray) -> np.ndarray:
    """1-D conservative remap matrix between two edge sets.

    Both edge arrays must be strictly increasing and span the same
    interval.  Entry ``[i, j]`` is the fraction of destination cell *i*
    covered by source cell *j* (rows sum to 1), so ``dst = M @ src``
    preserves the length-weighted integral.
    """
    src_edges = np.asarray(src_edges, dtype=float)
    dst_edges = np.asarray(dst_edges, dtype=float)
    if not (np.all(np.diff(src_edges) > 0) and np.all(np.diff(dst_edges) > 0)):
        raise ReproError("edge arrays must be strictly increasing")
    if not (
        np.isclose(src_edges[0], dst_edges[0]) and np.isclose(src_edges[-1], dst_edges[-1])
    ):
        raise ReproError(
            f"edge arrays must span the same interval; got "
            f"[{src_edges[0]}, {src_edges[-1]}] vs [{dst_edges[0]}, {dst_edges[-1]}]"
        )
    n_dst, n_src = len(dst_edges) - 1, len(src_edges) - 1
    # Pairwise overlap of [dst_i] with [src_j], vectorised.
    lo = np.maximum(dst_edges[:-1, None], src_edges[None, :-1])
    hi = np.minimum(dst_edges[1:, None], src_edges[None, 1:])
    overlap = np.clip(hi - lo, 0.0, None)
    widths = (dst_edges[1:] - dst_edges[:-1])[:, None]
    m = overlap / widths
    assert m.shape == (n_dst, n_src)
    return m


class ConservativeRegridder:
    """A reusable conservative map from one lat–lon grid to another.

    >>> r = ConservativeRegridder(LatLonGrid(8, 16), LatLonGrid(4, 8))
    >>> coarse = r(np.ones((8, 16)))
    >>> coarse.shape
    (4, 8)
    """

    def __init__(self, src: LatLonGrid, dst: LatLonGrid):
        self.src = src
        self.dst = dst
        # Latitude remap in sin(lat): overlap fractions are then exact
        # sphere-area fractions.
        self._mlat = overlap_matrix(
            np.sin(np.deg2rad(src.lat_edges)), np.sin(np.deg2rad(dst.lat_edges))
        )
        self._mlon = overlap_matrix(
            np.linspace(0.0, 360.0, src.nlon + 1), np.linspace(0.0, 360.0, dst.nlon + 1)
        )

    @property
    def lat_matrix(self) -> np.ndarray:
        """The latitude remap matrix, shape ``(dst.nlat, src.nlat)`` —
        exposed so distributed couplers can apply row/column slices."""
        return self._mlat

    @property
    def lon_matrix(self) -> np.ndarray:
        """The longitude remap matrix, shape ``(dst.nlon, src.nlon)``."""
        return self._mlon

    def __call__(self, field: np.ndarray) -> np.ndarray:
        """Regrid a full field from the source to the destination grid."""
        field = np.asarray(field, dtype=float)
        if field.shape != self.src.shape:
            raise ReproError(
                f"regrid: field shape {field.shape} != source grid shape {self.src.shape}"
            )
        return self._mlat @ field @ self._mlon.T

    def conservation_error(self, field: np.ndarray) -> float:
        """Relative area-integral error of regridding *field* (diagnostic;
        should be ~1e-15)."""
        src_int = self.src.area_integral(field)
        dst_int = self.dst.area_integral(self(field))
        denom = max(abs(src_int), 1e-30)
        return abs(dst_int - src_int) / denom


@lru_cache(maxsize=64)
def _cached(src: LatLonGrid, dst: LatLonGrid) -> ConservativeRegridder:
    return ConservativeRegridder(src, dst)


def regrid(field: np.ndarray, src: LatLonGrid, dst: LatLonGrid) -> np.ndarray:
    """One-shot conservative regrid (regridders cached per grid pair).

    The identity map is free when the grids are equal.
    """
    if src == dst:
        return np.asarray(field, dtype=float)
    return _cached(src, dst)(field)
