"""Version of the repro package.

The major version tracks the MPH version history described in Section 7 of
the paper: MPH1 (SCME), MPH2 (MCSE), MPH3 (MCME unified interface), MPH4
(multi-instance + argument passing).  This reproduction implements the full
MPH4 feature set, hence version 4.x here is mirrored by ``MPH_FEATURE_LEVEL``.
"""

__version__ = "1.0.0"

#: Highest MPH paper feature level implemented (see module docstring).
MPH_FEATURE_LEVEL = 4
