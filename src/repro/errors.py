"""Exception hierarchy shared by every subsystem in the repro package.

The hierarchy mirrors the layering of the system:

* :class:`MPIError` and subclasses — raised by the simulated MPI substrate
  (``repro.mpi``) for misuse of communicators, truncated receives, mismatched
  collectives, and aborts.
* :class:`LaunchError` — raised by the MPMD launcher (``repro.launcher``) for
  malformed command files and illegal resource allocations.
* :class:`MPHError` and :class:`RegistryError` — raised by MPH itself
  (``repro.core``) for registration-file problems and handshake failures.

Everything derives from :class:`ReproError` so callers can catch the whole
family with one clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


# ---------------------------------------------------------------------------
# Simulated-MPI substrate errors
# ---------------------------------------------------------------------------


class MPIError(ReproError):
    """Base class for errors raised by the simulated MPI substrate."""


class CommError(MPIError):
    """Misuse of a communicator (bad rank, freed comm, invalid color/key)."""


class TruncationError(MPIError):
    """A buffer-mode receive was posted with a buffer too small for the
    matching message (the analogue of ``MPI_ERR_TRUNCATE``)."""


class CollectiveMismatchError(MPIError):
    """Processes of one communicator called different collective operations,
    or the same collective with inconsistent parameters (e.g. roots)."""


class AbortError(MPIError):
    """The world was aborted — either explicitly via ``Comm.Abort`` or
    because a sibling process raised an uncaught exception."""

    def __init__(self, message: str, *, origin_rank: int | None = None):
        super().__init__(message)
        #: World rank of the process that triggered the abort, if known.
        self.origin_rank = origin_rank


class DeadlockError(MPIError):
    """Every live process in the world is blocked with no message in flight.

    The simulated substrate detects this condition (a luxury real MPI does
    not offer) and aborts the job with a per-process diagnostic of what each
    rank was blocked on.
    """

    def __init__(self, message: str, blocked_on: dict[int, str] | None = None):
        super().__init__(message)
        #: Mapping of world rank -> human-readable description of the call
        #: the rank was blocked in when deadlock was declared.
        self.blocked_on = dict(blocked_on or {})


class ProcessFailedError(MPIError):
    """An operation involved a process that suffered a fail-stop failure
    (the ULFM ``MPI_ERR_PROC_FAILED`` analogue).

    Unlike :class:`AbortError` this is *survivable*: the world keeps
    running, only operations that depend on a dead rank raise, and the
    survivors can recover with ``Comm.revoke``/``shrink``/``agree`` (or
    rebuild the MPH layer with ``MPH.shrink_world``).
    """

    def __init__(self, message: str, *, failed_ranks=()):
        super().__init__(message)
        #: World ranks known dead when the error was raised (sorted).
        self.failed_ranks = tuple(sorted(failed_ranks))


class RevokedError(MPIError):
    """The communicator was revoked (``Comm.revoke``, the ULFM
    ``MPI_ERR_REVOKED`` analogue): every pending and future operation on
    it fails so all members can reach the recovery path together."""

    def __init__(self, message: str, *, comm_name: str | None = None):
        super().__init__(message)
        #: Name of the revoked communicator, if known.
        self.comm_name = comm_name


class TimeoutError_(MPIError):
    """The job exceeded its wall-clock budget before completing."""


class TransportError(MPIError):
    """The transport layer failed to move bytes between ranks: a torn or
    corrupt wire frame, an unreachable peer, or a connection that died
    mid-stream (process backend; see :mod:`repro.mpi.transport`)."""


# ---------------------------------------------------------------------------
# Launcher errors
# ---------------------------------------------------------------------------


class LaunchError(ReproError):
    """Malformed MPMD command file or illegal resource allocation."""


class AllocationError(LaunchError):
    """A resource allocation violates platform policy — e.g. two executables
    overlapping on one processor (Section 2 of the paper: "Executables are
    not allowed to overlap on processors")."""


# ---------------------------------------------------------------------------
# MPH errors
# ---------------------------------------------------------------------------


class MPHError(ReproError):
    """Base class for errors raised by the MPH core library."""


class RegistryError(MPHError):
    """Malformed or inconsistent ``processors_map.in`` registration file."""


class HandshakeError(MPHError):
    """Component handshaking failed — e.g. a component declared a name-tag
    absent from the registration file, duplicate component names, or an
    executable whose runtime size disagrees with its registered processor
    ranges."""


class ArgumentError(MPHError):
    """``MPH_get_argument``-style lookup failed or could not be converted to
    the requested type."""


class JoinError(MPHError):
    """``MPH_comm_join`` was asked to join components that cannot be joined
    (unknown names, or components overlapping on processors)."""


class SessionError(MPHError):
    """Misuse of the sessions layer (:mod:`repro.core.session`): unknown
    process-set name, a non-member deriving a pset communicator, growing
    beyond the reserve pool, or a parked process calling an active-only
    collective."""


class CouplingError(MPHError):
    """Misuse of the coupling-algorithms layer (:mod:`repro.coupling`):
    mismatched interface specs, a solver driven outside its lifecycle,
    a coupling loop that exhausted its iteration budget with
    ``strict=True``, or mappers between incompatible discretizations."""


# ---------------------------------------------------------------------------
# Service errors
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for errors raised by the MPH service layer
    (:mod:`repro.service`): job-document validation, admission control,
    and runtime dispatch."""


class JobSpecError(ServiceError):
    """A job document failed validation.

    Every rejection names the offending document path (dotted keys with
    ``[i]`` list indices, e.g. ``components[1].nprocs``) so a submitting
    client can point at exactly the field it got wrong — malformed input
    must never surface as a raw ``KeyError``/``TypeError``.
    """

    def __init__(self, message: str, *, path: str = "$"):
        super().__init__(f"{path}: {message}")
        #: Dotted path of the offending field within the document.
        self.path = path


class AdmissionError(ServiceError):
    """The orchestrator refused a job at the door: the submission queue
    is full, or the service is shutting down.  Distinct from
    :class:`JobSpecError` — the document may be perfectly valid."""
