"""Component-name rules.

"An important feature of MPH is that the name-tag is for identifying a
given component; its actual name is entirely arbitrary" (paper §4.1) — so
the rules here are deliberately minimal: a name must be a single
non-keyword token so the line-oriented registration file stays parseable,
and names must be unique across the whole application.

Multi-instance executables add one rule (paper §4.4): "the component name
prefix ... determines that all instances of this executable must have
component names using this prefix".
"""

from __future__ import annotations

import re

from repro.errors import RegistryError

#: Structural keywords of the registration file; these can never be
#: component names.
KEYWORDS = frozenset(
    {
        "BEGIN",
        "END",
        "Multi_Component_Begin",
        "Multi_Component_End",
        "Multi_Instance_Begin",
        "Multi_Instance_End",
    }
)

#: Path segments of the reserved ``mph://`` process-set namespace (see
#: :mod:`repro.core.session`).  A component named after one of these would
#: shadow a built-in pset under the shorthand lookup (``session.pset("world")``
#: resolves to ``mph://world``), so the registry *linter* rejects them.  Core
#: validation deliberately does not: existing registration files with such
#: names keep working, they just cannot use the shorthand.
RESERVED_PSET_NAMES = frozenset(
    {"world", "self", "pool", "node", "exe", "component", "ensemble", "mph"}
)

#: One token: no whitespace, no comment characters, no ``=`` (reserved for
#: ``key=value`` argument fields).
_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_.\-]*$")


def validate_name(name: str) -> str:
    """Validate a component name-tag; return it unchanged.

    Raises
    ------
    RegistryError
        With a message naming the offending token.
    """
    if name in KEYWORDS:
        raise RegistryError(f"{name!r} is a registration-file keyword, not a component name")
    if not _NAME_RE.match(name):
        raise RegistryError(
            f"invalid component name {name!r}: must start with a letter and contain "
            "only letters, digits, '_', '.', '-'"
        )
    return name


def matches_prefix(instance_name: str, prefix: str) -> bool:
    """Whether *instance_name* is a legal instance of a multi-instance
    executable registered under *prefix* (strictly longer, same prefix).

    >>> matches_prefix("Ocean1", "Ocean")
    True
    >>> matches_prefix("Ocean", "Ocean")
    False
    >>> matches_prefix("Atmos1", "Ocean")
    False
    """
    return instance_name.startswith(prefix) and len(instance_name) > len(prefix)


def check_unique(names: list[str]) -> None:
    """Raise :class:`RegistryError` naming any duplicated component names."""
    seen: set[str] = set()
    dups: list[str] = []
    for n in names:
        if n in seen:
            dups.append(n)
        seen.add(n)
    if dups:
        raise RegistryError(f"duplicate component names in registration file: {sorted(set(dups))}")
