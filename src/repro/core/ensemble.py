"""Ensemble-simulation support on top of multi-instance executables (§2.5).

The paper's motivation for MIME: "It is sometimes advantageous to do the K
runs simultaneously: (a) Nonlinear order statistics can be computed by
aggregating instantaneous fields from K runs periodically; (b) Based on
simulation results on the current K runs, the future simulation direction
can be dynamically adjusted at real time.  Nonlinear statistics and
dynamical control cannot be done if the K runs are performed as independent
runs."

This module provides the pieces the paper's two worked scenarios need:

* :class:`EnsembleMember` — run inside each instance; reports instantaneous
  fields to the statistics component and polls for control updates;
* :class:`EnsembleCollector` — run inside the statistics (single-component)
  executable; gathers the K fields each step, computes linear *and
  nonlinear* statistics, and pushes dynamic control decisions back;
* :class:`OnlineMoments` — Welford streaming mean/variance for on-the-fly
  time aggregation with zero intermediate storage (the "eliminates large
  data output and storage for post-processing averaging" claim, benchmarked
  against the independent-jobs baseline in experiment E10).

The collector addresses every instance by its expanded name — a
specific source, never ``ANY_SOURCE`` — so ensemble statistics are
schedule-independent: an armed
:class:`~repro.mpi.sched.MatchSchedule` permuting match orders cannot
change a collected mean (asserted across seeds in
``tests/mpi/test_sched.py::TestEnsembleScheduleIndependence``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.mph import MPH
from repro.errors import MPHError, ProcessFailedError

#: Reserved world-communicator tags for the ensemble protocol.  User
#: traffic should avoid this narrow band (documented in the README).
REPORT_TAG = 900_001
CONTROL_TAG = 900_002


class OnlineMoments:
    """Streaming mean/variance over arrays (Welford's algorithm).

    Numerically stable single-pass moments: exactly what an on-the-fly
    ensemble/time aggregator needs, since no per-step fields are retained.

    >>> om = OnlineMoments()
    >>> for x in ([1.0, 2.0], [3.0, 4.0]):
    ...     om.push(np.array(x))
    >>> om.mean
    array([2., 3.])
    """

    def __init__(self) -> None:
        self.n = 0
        self._mean: Optional[np.ndarray] = None
        self._m2: Optional[np.ndarray] = None

    def push(self, x: np.ndarray) -> None:
        """Accumulate one sample (array shape must stay constant)."""
        x = np.asarray(x, dtype=float)
        if self._mean is None:
            self._mean = np.zeros_like(x)
            self._m2 = np.zeros_like(x)
        elif x.shape != self._mean.shape:
            raise MPHError(
                f"OnlineMoments sample shape {x.shape} != established shape {self._mean.shape}"
            )
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)

    @property
    def mean(self) -> np.ndarray:
        """Sample mean so far."""
        if self._mean is None:
            raise MPHError("no samples pushed")
        return self._mean

    @property
    def variance(self) -> np.ndarray:
        """Population variance so far (0 for a single sample)."""
        if self._m2 is None:
            raise MPHError("no samples pushed")
        return self._m2 / max(self.n, 1)

    @property
    def std(self) -> np.ndarray:
        """Population standard deviation so far."""
        return np.sqrt(self.variance)


@dataclass
class EnsembleStats:
    """Statistics of one collection step across the K instances."""

    step: int
    #: Instance name -> reported field, in registration order.
    fields: dict[str, np.ndarray]

    def stacked(self) -> np.ndarray:
        """The K fields stacked along a leading ensemble axis."""
        return np.stack(list(self.fields.values()))

    @property
    def mean(self) -> np.ndarray:
        """Ensemble mean (a *linear* statistic — computable offline too)."""
        return self.stacked().mean(axis=0)

    @property
    def std(self) -> np.ndarray:
        """Ensemble standard deviation."""
        return self.stacked().std(axis=0)

    @property
    def minimum(self) -> np.ndarray:
        """Pointwise ensemble minimum (nonlinear order statistic)."""
        return self.stacked().min(axis=0)

    @property
    def maximum(self) -> np.ndarray:
        """Pointwise ensemble maximum (nonlinear order statistic)."""
        return self.stacked().max(axis=0)

    @property
    def median(self) -> np.ndarray:
        """Pointwise ensemble median (nonlinear order statistic — this is
        what independent runs cannot produce without storing every field)."""
        return np.median(self.stacked(), axis=0)

    def percentile(self, q: float) -> np.ndarray:
        """Pointwise ensemble percentile *q* in [0, 100]."""
        return np.percentile(self.stacked(), q, axis=0)

    def spread(self) -> float:
        """Scalar ensemble spread: mean pointwise max-min range."""
        stacked = self.stacked()
        return float((stacked.max(axis=0) - stacked.min(axis=0)).mean())

    def rank_histogram(self, observation: np.ndarray) -> np.ndarray:
        """Pointwise rank histogram (Talagrand diagram) of *observation*
        within the ensemble: counts of how often the observation falls in
        each of the K+1 slots between the sorted members.

        A flat histogram means the observation is statistically
        indistinguishable from the members — the standard ensemble
        calibration check, and a *nonlinear* statistic only an on-the-fly
        (or store-everything) ensemble can produce.
        """
        stacked = np.sort(self.stacked(), axis=0)
        obs = np.asarray(observation, dtype=float)
        if obs.shape != stacked.shape[1:]:
            raise MPHError(
                f"observation shape {obs.shape} != field shape {stacked.shape[1:]}"
            )
        ranks = (stacked < obs).sum(axis=0)
        k = stacked.shape[0]
        return np.bincount(ranks.ravel(), minlength=k + 1)

    def crps(self, observation: np.ndarray) -> float:
        """Mean continuous ranked probability score against *observation*.

        The standard ensemble-verification score, via the kernel form
        ``CRPS = E|X - y| - E|X - X'| / 2`` computed pointwise and
        averaged over the field (lower is better; collapses to the mean
        absolute error for a one-member ensemble).
        """
        stacked = self.stacked()
        obs = np.asarray(observation, dtype=float)
        if obs.shape != stacked.shape[1:]:
            raise MPHError(
                f"observation shape {obs.shape} != field shape {stacked.shape[1:]}"
            )
        term1 = np.abs(stacked - obs).mean(axis=0)
        term2 = np.abs(stacked[:, None] - stacked[None, :]).mean(axis=(0, 1))
        return float((term1 - 0.5 * term2).mean())


class EnsembleMember:
    """Instance-side half of the ensemble protocol.

    Run by every process of a multi-instance executable; only the
    instance's local processor 0 actually communicates.
    """

    def __init__(self, mph: MPH, statistics_component: str):
        self.mph = mph
        self.statistics_component = statistics_component
        self.instance_name = mph.comp_name()
        self._is_reporter = mph.local_proc_id() == 0

    def report(self, step: int, field: np.ndarray) -> None:
        """Send this instance's instantaneous field for *step* to the
        statistics component (local processor 0 only; no-op elsewhere)."""
        if self._is_reporter:
            self.mph.send(
                (self.instance_name, step, np.asarray(field)),
                self.statistics_component,
                0,
                REPORT_TAG,
            )

    def receive_control(self) -> dict[str, Any]:
        """Block for the controller's decision for the current step
        (local processor 0), then share it with the whole instance."""
        comm = self.mph.component_comm(self.instance_name)
        control: Optional[dict[str, Any]] = None
        if self._is_reporter:
            control = self.mph.recv(self.statistics_component, 0, CONTROL_TAG)
        return comm.bcast(control, root=0)


class EnsembleCollector:
    """Statistics-side half of the ensemble protocol.

    Run by the single-component statistics executable (its local processor
    0 does the communication; results are broadcast over the component).
    """

    def __init__(self, mph: MPH, instance_names: Sequence[str]):
        if not instance_names:
            raise MPHError("EnsembleCollector needs at least one instance name")
        self.mph = mph
        self.instance_names = list(instance_names)
        self._comm = mph.component_comm()
        #: Per-instance streaming time aggregation of the ensemble means.
        self.time_moments = OnlineMoments()
        #: Instances observed dead, in detection order — the degradation
        #: report.  Kept identical on every statistics process (rank 0
        #: detects, :meth:`collect` broadcasts).
        self.degraded_instances: list[str] = []
        #: Instances removed *on purpose* via :meth:`retire_instance` —
        #: the planned counterpart of :attr:`degraded_instances`, kept
        #: separate so a shrunken ensemble is not misreported as a
        #: failed one.
        self.retired_instances: list[str] = []

    @classmethod
    def for_prefix(cls, mph: MPH, prefix: str) -> "EnsembleCollector":
        """Collect from every component whose name extends *prefix* (the
        registration file's expanded instance names)."""
        names = [
            c.name
            for c in mph.layout.components
            if c.name.startswith(prefix) and len(c.name) > len(prefix)
        ]
        return cls(mph, names)

    @property
    def k(self) -> int:
        """Ensemble size as registered (dead instances included)."""
        return len(self.instance_names)

    @property
    def live_instance_names(self) -> list[str]:
        """Instances still contributing — neither observed dead nor
        deliberately retired — in registration order."""
        gone = set(self.degraded_instances) | set(self.retired_instances)
        return [n for n in self.instance_names if n not in gone]

    @property
    def live_k(self) -> int:
        """Number of instances still contributing."""
        return len(self.live_instance_names)

    def add_instance(self, name: str, mph: Optional[MPH] = None) -> None:
        """Admit instance *name* to the collection (elastic grow).

        Call collectively on every statistics process after
        :meth:`~repro.core.session.Session.grow` has admitted the new
        instance's processes, passing the post-grow *mph* handle (the
        old handle's layout predates the instance, so sends to it would
        not resolve).  The new member joins :attr:`live_instance_names`
        at the end of registration order and contributes from the next
        :meth:`collect` on; a previously retired or degraded instance
        of the same name is resurrected.  All state updates are local
        and deterministic, so calling this with the same arguments on
        every statistics process keeps them consistent without extra
        communication.
        """
        if mph is not None:
            self.mph = mph
        if name in self.retired_instances:
            self.retired_instances.remove(name)
        if name in self.degraded_instances:
            self.degraded_instances.remove(name)
        if name not in self.instance_names:
            self.instance_names.append(name)

    def retire_instance(self, name: str, mph: Optional[MPH] = None) -> None:
        """Remove instance *name* from the collection (elastic shrink).

        The planned counterpart of degradation: the instance stops
        being collected from — before its processes leave via
        :meth:`~repro.core.session.Session.retire` — and is recorded in
        :attr:`retired_instances`, *not* :attr:`degraded_instances`, so
        failure statistics stay truthful.  Call collectively on every
        statistics process, like :meth:`add_instance`.
        """
        if name not in self.instance_names:
            raise MPHError(
                f"cannot retire unknown ensemble instance {name!r} "
                f"(has: {self.instance_names})"
            )
        if mph is not None:
            self.mph = mph
        if name not in self.retired_instances:
            self.retired_instances.append(name)

    def collect(self, step: int) -> EnsembleStats:
        """Gather the instantaneous fields for *step* from every live
        instance (collective over the statistics component).

        An instance whose reporter died is moved to
        :attr:`degraded_instances` instead of stalling the collection —
        the surviving K-1 runs keep aggregating, with the ensemble
        statistics computed over the remaining members (the *degraded
        mean*).  Raises :class:`MPHError` on every statistics process
        once no instance is left.
        """
        payload: Optional[tuple[dict[str, np.ndarray], list[str]]] = None
        if self._comm.rank == 0:
            fields: dict[str, np.ndarray] = {}
            for name in self.live_instance_names:
                try:
                    got_name, got_step, field = self.mph.recv(name, 0, REPORT_TAG)
                except ProcessFailedError:
                    self.degraded_instances.append(name)
                    continue
                if got_name != name or got_step != step:
                    raise MPHError(
                        f"ensemble protocol out of step: expected ({name}, {step}), "
                        f"got ({got_name}, {got_step})"
                    )
                fields[name] = field
            payload = (fields, list(self.degraded_instances))
        fields, dead = self._comm.bcast(payload, root=0)
        self.degraded_instances = list(dead)
        if not fields:
            raise MPHError(
                f"all {self.k} ensemble instances are gone "
                f"(degraded_instances={self.degraded_instances}, "
                f"retired_instances={self.retired_instances}); nothing to collect"
            )
        stats = EnsembleStats(step=step, fields=fields)
        if self._comm.rank == 0:
            self.time_moments.push(stats.mean)
        return stats

    def send_control(self, controls: dict[str, dict[str, Any]]) -> None:
        """Push per-instance control decisions (local processor 0 only).

        *controls* maps instance name to an arbitrary decision dict —
        the paper's "future simulation direction can be dynamically
        adjusted at real time".  Dead instances are skipped; an instance
        that dies under the send is added to :attr:`degraded_instances`
        (broadcast to the other statistics processes by the next
        :meth:`collect`).
        """
        if self._comm.rank != 0:
            return
        for name in self.live_instance_names:
            try:
                self.mph.send(controls.get(name, {}), name, 0, CONTROL_TAG)
            except ProcessFailedError:
                self.degraded_instances.append(name)

    def broadcast_same_control(self, control: dict[str, Any]) -> None:
        """Push one decision to every instance."""
        self.send_control({name: control for name in self.instance_names})
