"""Per-component argument fields and ``MPH_get_argument`` (paper §4.4).

"Up to 5 character strings can be appended to each line of the
instance_name in the registration file.  This is for passing input/output
file names and parameters to the specific instances. ... Thus alpha2 will
get integer 3 if a string "alpha=3" is present, beta will get real 4.5 if a
string "beta=4.5" is present, and fname will get string "infile3" if such a
string is in the first field."

The Fortran original dispatches on the output variable's type (function
overloading); the Python API takes the requested type explicitly, with
:func:`get_argument` defaulting to natural-type inference.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Type, Union

from repro.errors import ArgumentError
from repro.util.text import parse_scalar

class _Missing:
    """Sentinel distinguishing "no default supplied" from ``None`` (its
    repr is stable so generated documentation is reproducible)."""

    def __repr__(self) -> str:
        return "<no default>"


_MISSING = _Missing()


class ArgumentFields:
    """The argument fields of one component's registration line."""

    def __init__(self, fields: Sequence[str], component: str = "?"):
        self.fields = tuple(fields)
        self.component = component

    def __len__(self) -> int:
        return len(self.fields)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArgumentFields({self.component}: {self.fields})"

    # -- key=value lookup -----------------------------------------------------

    def has(self, key: str) -> bool:
        """Whether a ``key=value`` field with this key is present."""
        return any(f.startswith(key + "=") for f in self.fields)

    def raw(self, key: str) -> str:
        """The raw string value of ``key=value`` (first match)."""
        for f in self.fields:
            if f.startswith(key + "="):
                return f[len(key) + 1 :]
        raise ArgumentError(
            f"component {self.component!r}: no argument {key!r} among fields {self.fields}"
        )

    def get(
        self,
        key: Optional[str] = None,
        as_type: Optional[Type] = None,
        *,
        field_num: Optional[int] = None,
        default: Any = _MISSING,
    ) -> Any:
        """Look up an argument by key or positional field number.

        Parameters
        ----------
        key :
            ``key=value`` lookup, e.g. ``get("alpha", int)`` for a field
            ``alpha=3``.
        as_type :
            Requested type (``int``, ``float``, ``str``, ``bool``); when
            omitted the natural type is inferred.
        field_num :
            1-based positional access — the Fortran
            ``MPH_get_argument(field_num=1, field_val=fname)`` form.
        default :
            Returned instead of raising when the key/field is absent.
        """
        if (key is None) == (field_num is None):
            raise ArgumentError("pass exactly one of `key` or `field_num`")
        if field_num is not None:
            if not 1 <= field_num <= len(self.fields):
                if default is not _MISSING:
                    return default
                raise ArgumentError(
                    f"component {self.component!r}: field_num {field_num} out of range; "
                    f"{len(self.fields)} fields present"
                )
            raw = self.fields[field_num - 1]
        else:
            assert key is not None
            if not self.has(key):
                if default is not _MISSING:
                    return default
                raise ArgumentError(
                    f"component {self.component!r}: no argument {key!r} among fields "
                    f"{self.fields}"
                )
            raw = self.raw(key)
        return convert(raw, as_type, where=f"component {self.component!r}")

    # Typed convenience accessors mirroring the Fortran overloads ------------

    def get_int(self, key: str, default: Any = _MISSING) -> int:
        """Integer argument (the ``integer`` overload)."""
        return self.get(key, int, default=default)

    def get_real(self, key: str, default: Any = _MISSING) -> float:
        """Real argument (the ``real`` overload)."""
        return self.get(key, float, default=default)

    def get_string(self, key: str, default: Any = _MISSING) -> str:
        """String argument (the ``character`` overload)."""
        return self.get(key, str, default=default)

    def get_bool(self, key: str, default: Any = _MISSING) -> bool:
        """Flag argument: ``on/off``, ``true/false``, ``yes/no``, ``1/0``
        (the paper's example uses ``debug=on``)."""
        return self.get(key, bool, default=default)



def convert(raw: str, as_type: Optional[Type], where: str = "") -> Any:
    """Convert a raw field string to the requested type.

    Raises
    ------
    ArgumentError
        When the string does not parse as the requested type.
    """
    prefix = f"{where}: " if where else ""
    if as_type is None:
        return parse_scalar(raw)
    if as_type is bool:
        lowered = raw.lower()
        if lowered in ("on", "true", "yes", "1", ".true."):
            return True
        if lowered in ("off", "false", "no", "0", ".false."):
            return False
        raise ArgumentError(f"{prefix}cannot interpret {raw!r} as a flag")
    if as_type is int:
        try:
            return int(raw)
        except ValueError:
            raise ArgumentError(f"{prefix}cannot interpret {raw!r} as an integer") from None
    if as_type is float:
        try:
            return float(raw)
        except ValueError:
            raise ArgumentError(f"{prefix}cannot interpret {raw!r} as a real") from None
    if as_type is str:
        return raw
    raise ArgumentError(f"{prefix}unsupported argument type {as_type!r}")
