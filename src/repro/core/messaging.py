"""Inter-component communication addressed by component name (paper §5.2).

"MPI communication between local processors and remote processors
(processors on other components) are invoked through component names and
the local ID.  For example, if a processor on atmosphere wants to send to
Process 3 on ocean ..." — the component name plus local rank is translated
to a global rank and the message travels over ``MPH_Global_World``, the
plain world communicator ("The reason we did not use inter-communicator is
because the entire application is assumed to run on a tightly coupled HPC
computer with a single MPI_Comm_World").

When components overlap on processors, the paper recommends message tags
to disambiguate — these functions pass user tags straight through.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.mpi.constants import ANY_TAG
from repro.mpi.request import Request
from repro.mpi.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.mph import MPH


def mph_send(mph: "MPH", obj: Any, component: str, local_rank: int, tag: int = 0) -> None:
    """Send *obj* to processor *local_rank* of *component* over the global
    world communicator."""
    dest = mph.global_id(component, local_rank)
    mph.global_world.send(obj, dest, tag)


def mph_isend(mph: "MPH", obj: Any, component: str, local_rank: int, tag: int = 0) -> Request:
    """Nonblocking :func:`mph_send`."""
    dest = mph.global_id(component, local_rank)
    return mph.global_world.isend(obj, dest, tag)


def mph_recv(
    mph: "MPH",
    component: str,
    local_rank: int,
    tag: int = ANY_TAG,
    status: Optional[Status] = None,
) -> Any:
    """Receive from processor *local_rank* of *component*."""
    source = mph.global_id(component, local_rank)
    return mph.global_world.recv(source, tag, status)


def mph_irecv(mph: "MPH", component: str, local_rank: int, tag: int = ANY_TAG) -> Request:
    """Nonblocking :func:`mph_recv`."""
    source = mph.global_id(component, local_rank)
    return mph.global_world.irecv(source, tag)


def mph_recv_any(
    mph: "MPH", tag: int = ANY_TAG, status: Optional[Status] = None
) -> tuple[Any, str, int]:
    """Receive from any process; identify the sender in component terms.

    Returns ``(obj, component_name, local_rank)``.  When the sending world
    rank hosts several overlapping components, the lowest-``comp_id``
    component is reported (use tags to disambiguate, as the paper advises).
    A caller-supplied *status* is filled in (source, tag, byte count).
    """
    if status is None:
        status = Status()
    obj = mph.global_world.recv(tag=tag, status=status)
    infos = mph.layout.components_on(status.source)
    if not infos:
        return obj, "?", status.source
    info = min(infos, key=lambda c: c.comp_id)
    return obj, info.name, info.local_rank_of(status.source)


def mph_Send(
    mph: "MPH", array: np.ndarray, component: str, local_rank: int, tag: int = 0
) -> None:
    """Buffer-mode send of a numpy array to ``(component, local_rank)``."""
    dest = mph.global_id(component, local_rank)
    mph.global_world.Send(array, dest, tag)


def mph_Recv(
    mph: "MPH",
    buf: np.ndarray,
    component: str,
    local_rank: int,
    tag: int = ANY_TAG,
    status: Optional[Status] = None,
) -> np.ndarray:
    """Buffer-mode receive from ``(component, local_rank)`` into *buf*."""
    source = mph.global_id(component, local_rank)
    return mph.global_world.Recv(buf, source, tag, status)
