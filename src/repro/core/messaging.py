"""Inter-component communication addressed by component name (paper §5.2).

"MPI communication between local processors and remote processors
(processors on other components) are invoked through component names and
the local ID.  For example, if a processor on atmosphere wants to send to
Process 3 on ocean ..." — the component name plus local rank is translated
to a global rank and the message travels over ``MPH_Global_World``, the
plain world communicator ("The reason we did not use inter-communicator is
because the entire application is assumed to run on a tightly coupled HPC
computer with a single MPI_Comm_World").

When components overlap on processors, the paper recommends message tags
to disambiguate — these functions pass user tags straight through.

Because the address is always a specific ``(component, local id)`` pair,
name-addressed messaging is schedule-*independent*: an armed
:class:`~repro.mpi.sched.MatchSchedule` cannot change what a
``recv`` returns (swept in ``tests/core/test_messaging.py``).  The one
wildcard entry point is ``recv_any``, whose tie-break on overlapping
components is asserted under every swept seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.errors import ProcessFailedError
from repro.mpi.constants import ANY_TAG, UNDEFINED
from repro.mpi.request import Request
from repro.mpi.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.mph import MPH


def _comm_rank(mph: "MPH", component: str, local_rank: int) -> int:
    """Translate ``(component, local_rank)`` to a rank of the global world
    communicator.

    The layout's address translation yields the *original* world id; on
    the initial (full) world that id equals the communicator rank, so
    this is the identity.  After a post-failure shrink the world
    communicator spans only the survivors and the translation goes
    through its group — a world id that is no longer a member belongs to
    a dead process, reported as a clean :class:`ProcessFailedError`
    instead of an out-of-range rank.
    """
    wid = mph.global_id(component, local_rank)
    rank = mph.global_world.group.rank_of(wid)
    if rank == UNDEFINED:
        raise ProcessFailedError(
            f"processor {local_rank} of component {component!r} (world rank {wid}) "
            "is dead",
            failed_ranks=(wid,),
        )
    return rank


def mph_send(mph: "MPH", obj: Any, component: str, local_rank: int, tag: int = 0) -> None:
    """Send *obj* to processor *local_rank* of *component* over the global
    world communicator."""
    dest = _comm_rank(mph, component, local_rank)
    mph.global_world.send(obj, dest, tag)


def mph_isend(mph: "MPH", obj: Any, component: str, local_rank: int, tag: int = 0) -> Request:
    """Nonblocking :func:`mph_send`."""
    dest = _comm_rank(mph, component, local_rank)
    return mph.global_world.isend(obj, dest, tag)


def mph_recv(
    mph: "MPH",
    component: str,
    local_rank: int,
    tag: int = ANY_TAG,
    status: Optional[Status] = None,
) -> Any:
    """Receive from processor *local_rank* of *component*."""
    source = _comm_rank(mph, component, local_rank)
    return mph.global_world.recv(source, tag, status)


def mph_irecv(mph: "MPH", component: str, local_rank: int, tag: int = ANY_TAG) -> Request:
    """Nonblocking :func:`mph_recv`."""
    source = _comm_rank(mph, component, local_rank)
    return mph.global_world.irecv(source, tag)


def mph_recv_any(
    mph: "MPH", tag: int = ANY_TAG, status: Optional[Status] = None
) -> tuple[Any, str, int]:
    """Receive from any process; identify the sender in component terms.

    Returns ``(obj, component_name, local_rank)``.  When the sending world
    rank hosts several overlapping components, the lowest-``comp_id``
    component is reported (use tags to disambiguate, as the paper advises).
    A caller-supplied *status* is filled in (source, tag, byte count).
    """
    if status is None:
        status = Status()
    obj = mph.global_world.recv(tag=tag, status=status)
    # status.source is a communicator rank; the layout speaks world ids
    # (identical on the full world, translated after a shrink).
    wid = mph.global_world.group.world_id(status.source)
    infos = mph.layout.components_on(wid)
    if not infos:
        return obj, "?", wid
    info = min(infos, key=lambda c: c.comp_id)
    return obj, info.name, info.local_rank_of(wid)


def mph_Send(
    mph: "MPH", array: np.ndarray, component: str, local_rank: int, tag: int = 0
) -> None:
    """Buffer-mode send of a numpy array to ``(component, local_rank)``."""
    dest = _comm_rank(mph, component, local_rank)
    mph.global_world.Send(array, dest, tag)


def mph_Recv(
    mph: "MPH",
    buf: np.ndarray,
    component: str,
    local_rank: int,
    tag: int = ANY_TAG,
    status: Optional[Status] = None,
) -> np.ndarray:
    """Buffer-mode receive from ``(component, local_rank)`` into *buf*."""
    source = _comm_rank(mph, component, local_rank)
    return mph.global_world.Recv(buf, source, tag, status)
