"""The Fortran-90-flavoured MPH API: the paper's names, verbatim.

The primary Python interface is the :class:`~repro.core.mph.MPH` handle,
but code being ported line-by-line from the Fortran original (or written
to match the paper's listings) wants the exact names of Sections 4–5::

    from repro.core import fortran_api as MPH_F

    atmosphere_world = MPH_F.MPH_components_setup(world, name1="atmosphere",
                                                  registry=..., env=env)
    comm = MPH_F.PROC_in_component("ocean")
    MPH_F.MPH_comm_join("atmosphere", "ocean")
    MPH_F.MPH_send(data, "ocean", 3, tag=7)
    MPH_F.MPH_redirect_output("atmosphere")
    alpha = MPH_F.MPH_get_argument("alpha", int)

Like the Fortran library, these functions operate on an implicit current
handle: the setup call binds the handle to the *calling simulated process*
(thread), so several components in one job can use the module
concurrently without interference.  ``MPH_components_setup`` returns the
executable's communicator — exactly what the paper's listings assign to
``atmosphere_World`` / ``mpi_exec_world``.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.core.mph import MPH, components_setup as _components_setup, multi_instance as _multi_instance
from repro.errors import MPHError
from repro.mpi.comm import Comm
from repro.mpi.constants import ANY_TAG

_current = threading.local()


def _handle() -> MPH:
    mph = getattr(_current, "mph", None)
    if mph is None:
        raise MPHError(
            "no MPH handle bound on this process: call MPH_components_setup or "
            "MPH_multi_instance first"
        )
    return mph


def current_handle() -> MPH:
    """The bound :class:`MPH` handle of the calling process (escape hatch
    to the full Python API)."""
    return _handle()


# ---------------------------------------------------------------------------
# setup (paper §4)
# ---------------------------------------------------------------------------


def MPH_components_setup(
    world: Comm,
    name1: Optional[str] = None,
    name2: Optional[str] = None,
    name3: Optional[str] = None,
    name4: Optional[str] = None,
    name5: Optional[str] = None,
    name6: Optional[str] = None,
    name7: Optional[str] = None,
    name8: Optional[str] = None,
    name9: Optional[str] = None,
    name10: Optional[str] = None,
    *,
    registry: Any = None,
    env: Any = None,
) -> Comm:
    """``MPH_components_setup(name1=..., name2=..., ...)`` — up to 10
    component names (the paper's limit), returns the executable
    communicator and binds the handle for the rest of the module."""
    names = [n for n in (name1, name2, name3, name4, name5, name6, name7, name8, name9, name10) if n is not None]
    mph = _components_setup(world, *names, registry=registry, env=env)
    _current.mph = mph
    return mph.exe_world


def MPH_multi_instance(world: Comm, prefix: str, *, registry: Any = None, env: Any = None) -> Comm:
    """``Ocean_world = MPH_multi_instance("Ocean")`` (paper §4.4)."""
    mph = _multi_instance(world, prefix, registry=registry, env=env)
    _current.mph = mph
    return mph.exe_world


def PROC_in_component(name: str) -> Optional[Comm]:
    """The paper's logical function: the component communicator when this
    processor belongs to *name*, else ``None`` (§4.2)::

        comm = PROC_in_component("ocean")
        if comm is not None:
            ocean_xyz(comm)
    """
    return _handle().proc_in_component(name)


# ---------------------------------------------------------------------------
# joining and messaging (paper §5.1 / §5.2)
# ---------------------------------------------------------------------------


def MPH_comm_join(name_first: str, name_second: str) -> Optional[Comm]:
    """``comm_new = MPH_comm_join("atmosphere", "ocean")`` (§5.1)."""
    return _handle().comm_join(name_first, name_second)


def MPH_global_id(component: str, local_rank: int) -> int:
    """Global rank of ``(component, local id)`` (§5.2)."""
    return _handle().global_id(component, local_rank)


def MPH_send(obj: Any, component: str, local_rank: int, tag: int = 0) -> None:
    """Send to a processor addressed by component name + local id (§5.2)."""
    _handle().send(obj, component, local_rank, tag)


def MPH_recv(component: str, local_rank: int, tag: int = ANY_TAG) -> Any:
    """Receive from a processor addressed by component name + local id."""
    return _handle().recv(component, local_rank, tag)


def MPH_Global_World() -> Comm:
    """The application-wide communicator (§5.2: ``MPH_Global_World``)."""
    return _handle().global_world


# ---------------------------------------------------------------------------
# inquiry (paper §5.3)
# ---------------------------------------------------------------------------


def MPH_local_proc_id(component: Optional[str] = None) -> int:
    """``MPH_local_proc_id()``."""
    return _handle().local_proc_id(component)


def MPH_global_proc_id() -> int:
    """``MPH_global_proc_id()``."""
    return _handle().global_proc_id()


def MPH_comp_name() -> str:
    """``MPH_comp_name()`` (the expanded instance name under MIME)."""
    return _handle().comp_name()


def MPH_total_components() -> int:
    """``MPH_total_components()``."""
    return _handle().total_components()


def MPH_exe_up_proc_limit() -> int:
    """``MPH_exe_up_proc_limit()``."""
    return _handle().exe_up_proc_limit()


def MPH_exe_low_proc_limit() -> int:
    """``MPH_exe_low_proc_limit()``."""
    return _handle().exe_low_proc_limit()


# ---------------------------------------------------------------------------
# arguments and output (paper §4.4 / §5.4)
# ---------------------------------------------------------------------------


def MPH_get_argument(
    key: Optional[str] = None,
    as_type: Optional[type] = None,
    *,
    field_num: Optional[int] = None,
    default: Any = None,
) -> Any:
    """``call MPH_get_argument("alpha", alpha2)`` — the Fortran overloads
    become an explicit type argument; ``field_num=N`` gives positional
    access (§4.4)."""
    kwargs: dict = {"field_num": field_num}
    if default is not None:
        kwargs["default"] = default
    return _handle().get_argument(key, as_type, **kwargs)


def MPH_redirect_output(component_name: Optional[str] = None):
    """``MPH_redirect_output(component_name)`` (§5.4); returns the log
    path this processor now writes to (None outside a managed job)."""
    return _handle().redirect_output(component_name)


def MPH_help() -> str:
    """A short reference of the Fortran-flavoured entry points."""
    names = sorted(n for n in globals() if n.startswith(("MPH_", "PROC_")))
    return "MPH Fortran-flavoured API: " + ", ".join(names)
