"""The MPH handle: unified interface to all five execution modes.

This module is the user-facing surface of the library.  The two entry
points mirror the paper's:

* :func:`components_setup` — ``MPH_components_setup(name1=..., ...)`` for
  SCSE, SCME, MCSE, and MCME executables (paper §4.1–§4.3);
* :func:`multi_instance` — ``MPH_multi_instance(prefix)`` for ensemble
  (MIME) executables (paper §4.4).

Both run the Section 6 handshake and return an :class:`MPH` handle whose
methods cover the rest of the paper's API: the inquiry functions (§5.3),
``comm_join`` (§5.1), inter-component send/recv (§5.2), per-instance
argument access (§4.4), and standard-output redirection (§5.4).

The Fortran original returns a communicator from the setup call; here the
setup returns the richer handle and the communicator is ``mph.exe_world``
(the executable's communicator — what the paper's examples bind to
``mpi_exec_world``) or ``mph.component_comm(name)``.
"""

from __future__ import annotations

import time as _time
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from repro.core import messaging
from repro.core.arguments import ArgumentFields
from repro.core.profiling import CommProfile
from repro.core.handshake import (
    ComponentDecl,
    Declaration,
    HandshakeResult,
    InstanceDecl,
    handshake,
)
from repro.core.join import comm_join as _comm_join
from repro.core.layout import ComponentInfo, Layout
from repro.core.redirect import MultiChannelOutput
from repro.core.registry import Registry
from repro.errors import HandshakeError, MPHError
from repro.mpi.comm import Comm
from repro.mpi.constants import ANY_TAG
from repro.mpi.request import Request
from repro.mpi.status import Status


class MPH:
    """A process's view of the multi-component environment.

    Never constructed directly — use :func:`components_setup` or
    :func:`multi_instance`.
    """

    def __init__(self, hs: HandshakeResult, env=None):
        self._hs = hs
        self._env = env
        self._output: Optional[MultiChannelOutput] = getattr(env, "output", None)
        #: Per-process coupling-communication counters (see
        #: :mod:`repro.core.profiling`).
        self.profile = CommProfile()

    # -- communicators ---------------------------------------------------------

    @property
    def global_world(self) -> Comm:
        """The application-wide communicator (``MPH_Global_World``)."""
        assert self._hs.world is not None
        return self._hs.world

    @property
    def exe_world(self) -> Comm:
        """This executable's communicator — the return value of
        ``MPH_components_setup`` in the paper's examples."""
        return self._hs.exe_comm

    @property
    def service_comm(self) -> Comm:
        """MPH's private communicator for internal protocols."""
        assert self._hs.service_comm is not None
        return self._hs.service_comm

    def component_comm(self, name: Optional[str] = None) -> Comm:
        """The communicator of component *name* (must cover this process).

        With no name, the process must run exactly one component — the
        common case everywhere except overlapping multi-component
        executables.
        """
        name = self._default_name(name)
        comm = self._hs.comp_comms.get(name)
        if comm is None:
            raise HandshakeError(
                f"this process (world rank {self.global_proc_id()}) is not in component "
                f"{name!r}; it runs {list(self._hs.comp_comms) or 'no components'}"
            )
        return comm

    def proc_in_component(self, name: str) -> Optional[Comm]:
        """The paper's ``PROC_in_component(name, comm)``: the component's
        communicator when this process belongs to it, else ``None``.

        Typical master-program dispatch (paper §4.2)::

            comm = mph.proc_in_component("ocean")
            if comm is not None:
                ocean_xyz(comm)
        """
        self.layout.component(name)  # unknown names are an error, not False
        return self._hs.comp_comms.get(name)

    def in_component(self, name: str) -> bool:
        """Boolean form of :meth:`proc_in_component`."""
        return self.proc_in_component(name) is not None

    def comm_join(self, name_first: str, name_second: str) -> Optional[Comm]:
        """Joint communicator over two components, first component's
        processors ranked first (paper §5.1)."""
        return _comm_join(self, name_first, name_second)

    # -- fault recovery --------------------------------------------------------

    def shrink_world(self) -> "MPH":
        """Rebuild the multi-component environment over the survivors of a
        process failure; returns a fresh :class:`MPH` handle.

        Collective over every live process of the world (typically called
        after :meth:`~repro.mpi.comm.Comm.revoke` has knocked all
        survivors out of their communication pattern).  Survivors keep
        their original global ids; components that lost every process are
        listed in the new handle's :attr:`dead_components` and vanish
        from its layout.  The old handle remains usable only for inquiry.
        """
        from repro.core.handshake import rehandshake

        new_mph = MPH(rehandshake(self._hs), env=self._env)
        new_mph.profile = self.profile
        return new_mph

    @property
    def dead_components(self) -> tuple[str, ...]:
        """Components with zero surviving processes (empty before any
        :meth:`shrink_world`)."""
        return self._hs.dead_components

    # -- identity / inquiry (paper §5.3) ------------------------------------------

    @property
    def layout(self) -> Layout:
        """The global component/executable map."""
        return self._hs.layout

    @property
    def registry(self) -> Registry:
        """The broadcast registration file."""
        return self._hs.registry

    @property
    def strategy(self) -> str:
        """Which handshake split strategy ran (``"world_split"`` or
        ``"exe_then_comp"``)."""
        return self._hs.strategy

    def _default_name(self, name: Optional[str]) -> str:
        if name is not None:
            return name
        mine = self._hs.my_component_names
        if len(mine) == 1:
            return mine[0]
        if not mine:
            raise MPHError(
                f"world rank {self.global_proc_id()} runs no component; its executable's "
                "registration leaves it idle"
            )
        raise MPHError(
            f"this process runs several components {list(mine)}; pass the component name"
        )

    def comp_name(self) -> str:
        """This process's component name (``MPH_comp_name``).  For a
        multi-instance executable this is the *expanded* instance name
        (e.g. ``Ocean2``)."""
        return self._default_name(None)

    def comp_names(self) -> tuple[str, ...]:
        """All components covering this process (several when overlapping)."""
        return self._hs.my_component_names

    def local_proc_id(self, name: Optional[str] = None) -> int:
        """Component-local processor id (``MPH_local_proc_id``)."""
        return self.component_comm(name).rank

    def global_proc_id(self) -> int:
        """Global processor id in the world (``MPH_global_proc_id``).

        Always the *original* world id, so layout lookups stay valid even
        after :meth:`shrink_world` renumbers the communicator ranks (on
        the full world the two coincide).
        """
        world = self.global_world
        return world.group.world_id(world.rank)

    def total_components(self) -> int:
        """Number of components in the application (``MPH_total_components``)."""
        return self.layout.total_components

    def num_executables(self) -> int:
        """Number of executables in the application."""
        return self.layout.num_executables

    def exe_id(self) -> int:
        """This executable's index."""
        return self._hs.exe_id

    def exe_low_proc_limit(self) -> int:
        """Lowest global rank of this executable (``MPH_exe_low_proc_limit``)."""
        return self.layout.executables[self._hs.exe_id].low_proc_limit

    def exe_up_proc_limit(self) -> int:
        """Highest global rank of this executable (``MPH_exe_up_proc_limit``)."""
        return self.layout.executables[self._hs.exe_id].up_proc_limit

    def component_info(self, name: Optional[str] = None) -> ComponentInfo:
        """Full layout record of a component."""
        return self.layout.component(self._default_name(name))

    def component_size(self, name: Optional[str] = None) -> int:
        """Processor count of a component."""
        return self.component_info(name).size

    def global_id(self, component: str, local_rank: int) -> int:
        """Global rank of ``(component, local_rank)`` — the §5.2 address
        translation (``MPH_global_id``)."""
        return self.layout.global_rank(component, local_rank)

    # -- inter-component messaging (paper §5.2) --------------------------------------

    def send(self, obj: Any, component: str, local_rank: int, tag: int = 0) -> None:
        """Send *obj* to processor *local_rank* of *component*."""
        messaging.mph_send(self, obj, component, local_rank, tag)
        self.profile.record_send(component, self.global_world.last_payload_bytes)

    def isend(self, obj: Any, component: str, local_rank: int, tag: int = 0) -> Request:
        """Nonblocking :meth:`send`."""
        req = messaging.mph_isend(self, obj, component, local_rank, tag)
        self.profile.record_send(component, self.global_world.last_payload_bytes)
        return req

    def recv(
        self,
        component: str,
        local_rank: int,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        """Receive from processor *local_rank* of *component*."""
        if status is None:
            status = Status()
        t0 = _time.perf_counter()
        obj = messaging.mph_recv(self, component, local_rank, tag, status)
        self.profile.record_wait(_time.perf_counter() - t0)
        self.profile.record_recv(component, status.count)
        return obj

    def irecv(self, component: str, local_rank: int, tag: int = ANY_TAG) -> Request:
        """Nonblocking :meth:`recv`."""
        return messaging.mph_irecv(self, component, local_rank, tag)

    def recv_any(self, tag: int = ANY_TAG) -> tuple[Any, str, int]:
        """Receive from anyone; returns ``(obj, component, local_rank)``."""
        status = Status()
        t0 = _time.perf_counter()
        obj, component, local_rank = messaging.mph_recv_any(self, tag, status)
        self.profile.record_wait(_time.perf_counter() - t0)
        self.profile.record_recv(component, status.count)
        return obj, component, local_rank

    def Send(self, array: np.ndarray, component: str, local_rank: int, tag: int = 0) -> None:
        """Buffer-mode send of a numpy array."""
        messaging.mph_Send(self, array, component, local_rank, tag)
        self.profile.record_send(component, self.global_world.last_payload_bytes)

    def Recv(
        self,
        buf: np.ndarray,
        component: str,
        local_rank: int,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> np.ndarray:
        """Buffer-mode receive into *buf*."""
        if status is None:
            status = Status()
        t0 = _time.perf_counter()
        out = messaging.mph_Recv(self, buf, component, local_rank, tag, status)
        self.profile.record_wait(_time.perf_counter() - t0)
        # Buffer-mode counts are elements; convert to bytes for the ledger.
        self.profile.record_recv(component, status.count * np.asarray(buf).itemsize)
        return out

    # -- arguments (paper §4.4) ---------------------------------------------------------

    def arguments(self, name: Optional[str] = None) -> ArgumentFields:
        """The registration-line argument fields of a component."""
        info = self.component_info(name)
        return ArgumentFields(info.fields, component=info.name)

    def get_argument(
        self,
        key: Optional[str] = None,
        as_type: Optional[type] = None,
        *,
        field_num: Optional[int] = None,
        component: Optional[str] = None,
        **kw,
    ) -> Any:
        """``MPH_get_argument``: fetch a registration-line argument.

        >>> mph.get_argument("alpha", int)      # field "alpha=3"  -> 3
        >>> mph.get_argument("beta", float)     # field "beta=4.5" -> 4.5
        >>> mph.get_argument(field_num=1)       # first field, natural type
        """
        return self.arguments(component).get(key, as_type, field_num=field_num, **kw)

    # -- output redirection (paper §5.4) ---------------------------------------------------

    def redirect_output(
        self, component_name: Optional[str] = None, workdir: Optional[Union[str, Path]] = None
    ) -> Optional[Path]:
        """``MPH_redirect_output``: route this process's stdout.

        Local processor 0 of the component writes to the component's log
        (``MPH_LOG_<NAME>`` env override, default ``<component>.log``);
        every other processor shares the combined log.  Returns the log
        path, or ``None`` when no output manager is installed (e.g. the
        code runs outside an :class:`~repro.launcher.job.MpmdJob`).
        """
        name = self._default_name(component_name)
        if self._output is None:
            return None
        env_vars = dict(getattr(self._env, "vars", {}) or {})
        if workdir is None:
            workdir = getattr(self._env, "workdir", None)
        return self._output.redirect(
            name,
            is_channel_owner=self.local_proc_id(name) == 0,
            env_vars=env_vars,
            workdir=workdir,
        )

    def restore_output(self) -> None:
        """Undo :meth:`redirect_output` for this process."""
        if self._output is not None:
            self._output.restore()

    # ------------------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MPH world rank {self.global_proc_id()} exe {self._hs.exe_id} "
            f"components {list(self._hs.comp_comms)}>"
        )


def _registry_input(registry: Any, env: Any) -> Any:
    if registry is not None:
        return registry
    env_registry = getattr(env, "registry", None)
    if env_registry is not None:
        return env_registry
    raise MPHError(
        "no registration file: pass `registry=` to the setup call or launch through "
        "mph_run(..., registry=...)"
    )


def components_setup(
    world: Comm,
    *names: str,
    registry: Any = None,
    env: Any = None,
) -> MPH:
    """``MPH_components_setup``: register this executable's components and
    handshake with every other executable of the job.

    Collective over *world*.  Pass one name per component of this
    executable — one name for a single-component executable (SCME/SCSE),
    several for a multi-component executable (MCSE/MCME)::

        mph = components_setup(world, "atmosphere", env=env)            # SCME
        mph = components_setup(world, "ocean", "ice", env=env)          # MCME
        mph = components_setup(world, "atmosphere", "ocean", "coupler",
                               registry=reg)                            # MCSE

    The registration file comes from *registry* (a
    :class:`~repro.core.registry.Registry`, path, or text) or, when
    launched through :func:`repro.launcher.job.mph_run`, from the job
    environment *env*.
    """
    decl: Declaration = ComponentDecl(tuple(names))
    hs = handshake(world, decl, _registry_input(registry, env))
    return MPH(hs, env=env)


def multi_instance(
    world: Comm,
    prefix: str,
    *,
    registry: Any = None,
    env: Any = None,
) -> MPH:
    """``MPH_multi_instance``: set up one executable replicated as multiple
    instances for ensemble simulation (paper §4.4).

    Every process of the executable calls this with the common component
    name *prefix*; the registration file's ``Multi_Instance`` block
    determines how many instances exist, which processors each owns, and
    the expanded per-instance component names (``Ocean1``, ``Ocean2``, ...)
    plus their argument fields.

    >>> mph = multi_instance(world, "Ocean", env=env)
    >>> mph.comp_name()                      # e.g. "Ocean2" on its ranks
    >>> mph.get_argument("beta", float)      # instance-specific parameter
    """
    decl: Declaration = InstanceDecl(prefix)
    hs = handshake(world, decl, _registry_input(registry, env))
    return MPH(hs, env=env)
