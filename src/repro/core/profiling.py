"""Per-process coupling-communication profile.

Knowing *which component pairs* exchange how many messages — and how many
bytes — is the first question when a coupled system underperforms (the
hpc-parallel rule: measure before optimising).  Every name-addressed MPH
send/receive is counted here, cheaply, per process; :meth:`CommProfile.describe`
renders the local ledger and :func:`gather_profiles` assembles the
application-wide component-to-component traffic matrix on a chosen
processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.mph import MPH


@dataclass
class CommProfile:
    """Message and byte counters of one process, keyed by peer component."""

    #: Messages this process sent, by destination component.
    sent: dict[str, int] = field(default_factory=dict)
    #: Messages this process received, by source component.
    received: dict[str, int] = field(default_factory=dict)
    #: Payload bytes this process sent, by destination component.
    bytes_sent: dict[str, int] = field(default_factory=dict)
    #: Payload bytes this process received, by source component.
    bytes_received: dict[str, int] = field(default_factory=dict)
    #: Blocking receive/wait calls this process performed inside coupling
    #: exchanges (including those that completed immediately).
    waits: int = 0
    #: Seconds spent inside those calls (the coupling "idle" cost the
    #: progress engine is built to keep cheap).
    wait_seconds: float = 0.0

    def record_wait(self, seconds: float) -> None:
        """Count one blocking receive/wait call of *seconds* inside a
        coupling exchange."""
        self.waits += 1
        self.wait_seconds += seconds

    def record_send(self, component: str, nbytes: int = 0) -> None:
        """Count one send of *nbytes* payload bytes to *component*."""
        self.sent[component] = self.sent.get(component, 0) + 1
        self.bytes_sent[component] = self.bytes_sent.get(component, 0) + nbytes

    def record_recv(self, component: str, nbytes: int = 0) -> None:
        """Count one receive of *nbytes* payload bytes from *component*."""
        self.received[component] = self.received.get(component, 0) + 1
        self.bytes_received[component] = self.bytes_received.get(component, 0) + nbytes

    @property
    def total_sent(self) -> int:
        """All messages sent by this process."""
        return sum(self.sent.values())

    @property
    def total_received(self) -> int:
        """All messages received by this process."""
        return sum(self.received.values())

    @property
    def total_bytes_sent(self) -> int:
        """All payload bytes sent by this process."""
        return sum(self.bytes_sent.values())

    @property
    def total_bytes_received(self) -> int:
        """All payload bytes received by this process."""
        return sum(self.bytes_received.values())

    def merge(self, other: "CommProfile") -> "CommProfile":
        """Elementwise sum with another profile (used by gathering)."""
        out = CommProfile(
            dict(self.sent),
            dict(self.received),
            dict(self.bytes_sent),
            dict(self.bytes_received),
            self.waits + other.waits,
            self.wait_seconds + other.wait_seconds,
        )
        for comp, n in other.sent.items():
            out.sent[comp] = out.sent.get(comp, 0) + n
        for comp, n in other.received.items():
            out.received[comp] = out.received.get(comp, 0) + n
        for comp, n in other.bytes_sent.items():
            out.bytes_sent[comp] = out.bytes_sent.get(comp, 0) + n
        for comp, n in other.bytes_received.items():
            out.bytes_received[comp] = out.bytes_received.get(comp, 0) + n
        return out

    def describe(self) -> str:
        """The local ledger as readable text."""
        lines = [
            f"sent {self.total_sent} / received {self.total_received} messages "
            f"({self.total_bytes_sent} B out, {self.total_bytes_received} B in)"
        ]
        if self.waits:
            lines.append(
                f"  waited in {self.waits} blocking calls for "
                f"{self.wait_seconds * 1e3:.1f} ms total"
            )
        for comp in sorted(set(self.sent) | set(self.received)):
            lines.append(
                f"  {comp:<16s} -> {self.sent.get(comp, 0):>6d} sent, "
                f"{self.received.get(comp, 0):>6d} received "
                f"({self.bytes_sent.get(comp, 0)} B out, "
                f"{self.bytes_received.get(comp, 0)} B in)"
            )
        return "\n".join(lines)


def gather_profiles(mph: "MPH", root_component: str) -> Optional[dict[str, CommProfile]]:
    """Assemble every component's aggregate profile on *root_component*'s
    local processor 0.

    Collective over the global world.  Returns ``component name ->
    merged profile`` on the root processor, ``None`` elsewhere.  Message
    and byte counters are both merged.
    """
    world = mph.global_world
    root_rank = mph.global_id(root_component, 0)
    mine = (tuple(mph.comp_names()), mph.profile)
    gathered = world.gather(mine, root=root_rank)
    if world.rank != root_rank:
        return None
    assert gathered is not None
    merged: dict[str, CommProfile] = {}
    for names, profile in gathered:
        for name in names:
            merged[name] = merged.get(name, CommProfile()).merge(profile)
    return merged
