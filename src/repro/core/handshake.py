"""Component handshaking: the core algorithm of the paper (Section 6).

When an MPMD job starts, "all executables share the same MPI_Comm_World,
but with different logical processor IDs ... each processor does not know
which executables are loaded onto other processors."  The handshake turns
that anonymous world into a fully-mapped multi-component environment:

1. the root processor (world rank 0) reads the registration file and
   broadcasts it;
2. every processor contributes its executable's *declaration* — the
   component name-tags passed to ``MPH_components_setup`` or the instance
   prefix passed to ``MPH_multi_instance`` — via an allgather;
3. processors with identical declarations form an executable; each
   executable is matched against exactly one registry entry, giving every
   component a unique ``component_id`` (its position in the file);
4. communicators are derived from the session's named process sets
   (:mod:`repro.core.session`): each component / executable pset is turned
   into a communicator on demand by its members only, generalizing the
   paper's two ``Comm_split`` strategies.  The historical strategy label is
   preserved — ``"world_split"`` when every executable is single-component
   (§6 case 1; the executable communicator *is* the component
   communicator), ``"exe_then_comp"`` otherwise (§6 case 2).

The handshake is deterministic: every process derives the identical
:class:`~repro.core.layout.Layout` from the broadcast registry and the
allgathered declarations, with no further communication.  Deterministic
against message *scheduling* too — bcast/allgather use specific-source
receives, so an armed :class:`~repro.mpi.sched.MatchSchedule` cannot
perturb the layout (asserted across seeds in
``tests/core/test_handshake_modes.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from repro.core.layout import ComponentInfo, ExecutableInfo, Layout
from repro.core.names import matches_prefix, validate_name
from repro.core.registry import (
    MultiComponentEntry,
    MultiInstanceEntry,
    Registry,
    SingleComponentEntry,
)
from repro.errors import HandshakeError, RegistryError
from repro.mpi.comm import Comm
from repro.mpi.constants import UNDEFINED

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import Session


@dataclass(frozen=True)
class ComponentDecl:
    """What ``MPH_components_setup(name1=..., name2=..., ...)`` declares."""

    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.names:
            raise HandshakeError("MPH_components_setup needs at least one component name")
        for n in self.names:
            validate_name(n)
        if len(set(self.names)) != len(self.names):
            raise HandshakeError(f"duplicate names in components_setup call: {self.names}")


@dataclass(frozen=True)
class InstanceDecl:
    """What ``MPH_multi_instance(prefix)`` declares."""

    prefix: str

    def __post_init__(self) -> None:
        validate_name(self.prefix)


@dataclass(frozen=True)
class PoolDecl:
    """What :func:`repro.core.session.pool_session` declares: a reserve
    process that runs no component yet.  It participates in the init
    exchange, then parks in ``Session.await_assignment`` until an elastic
    ``Session.grow`` admits it into a component (or the pool is released)."""

    label: str = "pool"


Declaration = Union[ComponentDecl, InstanceDecl, PoolDecl]


@dataclass
class HandshakeResult:
    """Everything a process holds after a successful handshake."""

    #: The global component/executable map (identical on every process).
    layout: Layout
    #: The broadcast registry.
    registry: Registry
    #: Index of this process's executable.
    exe_id: int
    #: Communicator spanning this process's executable.
    exe_comm: Comm
    #: Component communicators for the components covering this process
    #: (one for a single-component executable; possibly several for a
    #: multi-component executable with overlap; empty for an idle process
    #: its registry entry covers with no component).
    comp_comms: dict[str, Comm] = field(default_factory=dict)
    #: Which split strategy ran: ``"world_split"`` or ``"exe_then_comp"``.
    strategy: str = ""
    #: The world communicator the handshake ran over.
    world: Optional[Comm] = None
    #: MPH-internal communicator (``comm_join`` context distribution etc.).
    service_comm: Optional[Comm] = None
    #: The declaration this executable made.
    declaration: Optional[Declaration] = None
    #: Components that lost every process in a re-handshake after a
    #: failure (empty for the initial handshake).
    dead_components: tuple[str, ...] = ()
    #: The session this result was materialized from (``None`` only for
    #: results built outside the sessions layer).  The layout above is a
    #: snapshot of the session's pset epoch at materialization time; after
    #: an elastic transition (``grow``/``retire``/``shrink``) get a fresh
    #: view with ``session.mph()``.
    session: Optional["Session"] = None

    @property
    def my_component_names(self) -> tuple[str, ...]:
        """Names of the components covering this process, by component id."""
        infos = sorted(
            (self.layout.component(n) for n in self.comp_comms), key=lambda c: c.comp_id
        )
        return tuple(c.name for c in infos)


def handshake(world: Comm, decl: Declaration, registry_input) -> HandshakeResult:
    """Run the full component handshake over *world*.

    Collective: every process of *world* must call it (each with its own
    executable's declaration).  Raises :class:`HandshakeError` (on every
    process, via abort propagation) when declarations and registration file
    disagree.

    Since the sessions refactor this is a thin compatibility shim: the
    registry broadcast, declaration allgather, and layout resolution run
    inside :meth:`repro.core.session.Session.init`, and the executable /
    component communicators are derived from the session's named process
    sets instead of eager ``Comm_split`` calls.  The result is shaped
    exactly as before (same communicator names, same ``strategy`` label,
    and for the single-component path ``exe_comm`` *is* the component
    communicator, as §6 case 1 produced).
    """
    from repro.core.session import Session

    return Session.init(world, decl, registry_input).handshake_result()


def rehandshake(prev: HandshakeResult) -> HandshakeResult:
    """Rebuild the multi-component environment over the survivors of a
    process failure — the ``MPH_comm_join``-level recovery step.

    Collective over every *live* member of the previous world (the dead
    ranks are excluded by construction, exactly as in
    :meth:`~repro.mpi.comm.Comm.shrink`).  The sequence is the ULFM
    recovery idiom lifted to the MPH layer:

    1. shrink the old world communicator over the survivors;
    2. degrade the layout — survivors keep their **original** world ids,
       components that lost every process are recorded in
       ``dead_components``;
    3. rebuild the executable, component, and service communicators with
       ordinary splits over the shrunken world, in a deterministic
       collective order (executable split, then one split per surviving
       component in ``comp_id`` order, then the service dup).

    No registry re-read and no new declarations: the degraded layout is
    derived locally from the old one, so — like the original handshake —
    every survivor computes an identical map.

    When *prev* came from the sessions layer (the normal case), the shrink
    is routed through :meth:`repro.core.session.Session.shrink` — the
    *unplanned* flavour of the same pset-epoch transition that
    ``Session.grow``/``Session.retire`` perform — so original global proc
    ids stay stable and ``dead_components`` stays correct even across a
    shrink-then-grow sequence.  The split-based fallback below only runs
    for results built outside a session.
    """
    if prev.session is not None:
        prev.session.shrink()
        return prev.session.handshake_result()
    assert prev.world is not None
    new_world = prev.world.shrink("MPH_world")
    me = new_world.group.world_id(new_world.rank)  # original world id
    layout, dead = Layout.degrade(prev.layout, new_world.group.members)

    # Executable communicator: one split of the survivors by exe id.
    exe_comm = new_world.split(prev.exe_id, key=me)
    assert exe_comm is not None
    exe_comm.name = f"MPH:exe{prev.exe_id}"

    # Component communicators: one split per surviving component, in
    # comp_id order — a collective sequence every survivor executes
    # identically regardless of the original split strategy.
    comp_comms: dict[str, Comm] = {}
    for comp in layout.components:
        member = me in comp.world_ranks
        comm = new_world.split(0 if member else UNDEFINED, key=me)
        if comm is not None:
            comm.name = f"MPH:{comp.name}"
            comp_comms[comp.name] = comm

    service = new_world.dup("MPH_service")
    return HandshakeResult(
        layout=layout,
        registry=prev.registry,
        exe_id=prev.exe_id,
        exe_comm=exe_comm,
        comp_comms=comp_comms,
        strategy=prev.strategy,
        world=new_world,
        service_comm=service,
        declaration=prev.declaration,
        dead_components=dead,
    )


def _resolve_executables(
    registry: Registry, decls: list[Declaration], my_rank: int
) -> tuple[list[ExecutableInfo], int, tuple[int, ...]]:
    """Group world ranks by declaration, match groups to registry entries,
    and validate sizes.

    Ranks declaring :class:`PoolDecl` form the elastic reserve pool: they
    match no registry entry and belong to no executable until a
    ``Session.grow`` assigns them.  Returns ``(executables, my_exe_id,
    pool_ranks)``; ``my_exe_id`` is ``-1`` for a pool rank.
    """
    pool_ranks = tuple(r for r, d in enumerate(decls) if isinstance(d, PoolDecl))
    groups: dict[Declaration, list[int]] = {}
    for rank, d in enumerate(decls):
        if isinstance(d, PoolDecl):
            continue
        groups.setdefault(d, []).append(rank)

    # Deterministic executable ordering: ascending lowest world rank.
    ordered = sorted(groups.items(), key=lambda kv: kv[1][0])

    matched_entries: dict[int, Declaration] = {}
    exes: list[ExecutableInfo] = []
    my_exe_id = -1
    for exe_id, (d, ranks) in enumerate(ordered):
        entry_index = _match_entry(registry, d)
        if entry_index in matched_entries:
            raise HandshakeError(
                f"two executables declared the same registration entry "
                f"({registry.entries[entry_index].component_names}); component names "
                "must identify executables uniquely"
            )
        matched_entries[entry_index] = d
        entry = registry.entries[entry_index]
        if isinstance(entry, (MultiComponentEntry, MultiInstanceEntry)):
            if entry.nprocs != len(ranks):
                raise HandshakeError(
                    f"executable declaring {entry.component_names} runs on "
                    f"{len(ranks)} processes but the registration file allocates local "
                    f"processors 0..{entry.nprocs - 1} ({entry.nprocs}); the launch "
                    "command and registration file disagree"
                )
        exes.append(
            ExecutableInfo(
                exe_id=exe_id,
                entry_index=entry_index,
                kind=entry.kind,
                world_ranks=tuple(ranks),
                component_names=entry.component_names,
                has_overlap=isinstance(entry, MultiComponentEntry) and entry.has_overlap,
                instance_prefix=d.prefix if isinstance(d, InstanceDecl) else None,
            )
        )
        if my_rank in ranks:
            my_exe_id = exe_id

    unmatched = [
        e.component_names
        for i, e in enumerate(registry.entries)
        if i not in matched_entries
    ]
    if unmatched:
        raise HandshakeError(
            f"registration file registers components that no executable declared: "
            f"{unmatched} — is an executable missing from the launch command?"
        )
    assert my_exe_id >= 0 or my_rank in pool_ranks
    return exes, my_exe_id, pool_ranks


def _match_entry(registry: Registry, decl: Declaration) -> int:
    """Find the unique registry entry matching a declaration."""
    if isinstance(decl, ComponentDecl):
        target = frozenset(decl.names)
        for i, entry in enumerate(registry.entries):
            if isinstance(entry, MultiInstanceEntry):
                continue
            if frozenset(entry.component_names) == target:
                return i
        # Help the user: are some names registered, but grouped differently?
        known = [n for n in decl.names if n in registry.component_names]
        unknown = [n for n in decl.names if n not in registry.component_names]
        if unknown:
            raise HandshakeError(
                f"component name-tags {unknown} do not appear in the registration file; "
                f"registered names: {list(registry.component_names)}"
            )
        raise HandshakeError(
            f"components {list(decl.names)} are registered, but not together as one "
            "executable — the registration file groups them differently"
        )
    # InstanceDecl
    candidates = [
        i
        for i, entry in enumerate(registry.entries)
        if isinstance(entry, MultiInstanceEntry)
        and all(matches_prefix(n, decl.prefix) for n in entry.component_names)
    ]
    if not candidates:
        raise HandshakeError(
            f"no Multi_Instance block whose instance names all use prefix "
            f"{decl.prefix!r}; check the registration file"
        )
    if len(candidates) > 1:
        raise HandshakeError(
            f"prefix {decl.prefix!r} matches {len(candidates)} Multi_Instance blocks; "
            "prefixes must identify the executable uniquely"
        )
    return candidates[0]
