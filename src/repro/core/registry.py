"""The MPH registration file (``processors_map.in``): model, parser, writer.

The registration file is MPH's single runtime input.  "The number of
components and executables, names of each component, processor allocation
are all determined by a component registration file that is read in when
the multi-executable job is launched" (paper §3).

Grammar (assembled from the paper's four examples, §4.1–§4.4)::

    file        := 'BEGIN' entry* 'END'
    entry       := single | multi_comp | multi_inst
    single      := NAME field*                      ! one single-component exe
    multi_comp  := 'Multi_Component_Begin'
                       (NAME LOW HIGH field*)+
                   'Multi_Component_End'
    multi_inst  := 'Multi_Instance_Begin'
                       (NAME LOW HIGH field*)+
                   'Multi_Instance_End'
    field       := TOKEN | KEY '=' VALUE            ! at most 5 per line

* ``!`` starts a comment (``#`` also accepted).
* ``LOW HIGH`` are **executable-local** processor indices (the §4.3 example
  registers ``atmosphere 0 15`` and ``ocean 0 15`` in *different*
  executables — the ranges are relative to each executable, whose size and
  world ranks come from the job launcher).
* Single-component executables carry no range: their size is whatever the
  launcher gave them (§4.1).
* Components of one multi-component executable may overlap (§4.3:
  atmosphere and land overlap completely); instances of a multi-instance
  executable may not (they are independent replicas).
* Up to 5 free argument fields per line (§4.4), usable by
  ``MPH_get_argument`` — on instance lines *and* on component lines ("this
  parameter passing feature also works for the components of
  multi-component executables").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.core.names import check_unique, validate_name
from repro.errors import RegistryError
from repro.util.text import parse_proc_range, tokenize_line

#: The paper's limit on argument fields per line (§4.4: "Up to 5 character
#: strings can be appended to each line").
MAX_FIELDS = 5

#: The paper's limit on components per executable (§4.3: "Each executable
#: could contain up to 10 components").
MAX_COMPONENTS_PER_EXECUTABLE = 10


@dataclass(frozen=True)
class ComponentSpec:
    """One component (or instance) line of the registration file.

    ``low``/``high`` are executable-local processor indices (inclusive);
    both are ``None`` for single-component executables, whose size the
    launcher decides.
    """

    name: str
    low: Optional[int] = None
    high: Optional[int] = None
    fields: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        validate_name(self.name)
        if (self.low is None) != (self.high is None):
            raise RegistryError(f"component {self.name!r}: low/high must be given together")
        if self.low is not None:
            assert self.high is not None
            if self.low < 0 or self.high < self.low:
                raise RegistryError(
                    f"component {self.name!r}: invalid processor range {self.low}..{self.high}"
                )
        if len(self.fields) > MAX_FIELDS:
            raise RegistryError(
                f"component {self.name!r}: {len(self.fields)} argument fields exceed the "
                f"limit of {MAX_FIELDS}"
            )

    @property
    def has_range(self) -> bool:
        """Whether an explicit processor range was registered."""
        return self.low is not None

    @property
    def nprocs(self) -> Optional[int]:
        """Registered processor count, or ``None`` when launcher-decided."""
        if self.low is None or self.high is None:
            return None
        return self.high - self.low + 1

    def local_indices(self) -> range:
        """Executable-local processor indices covered by this component."""
        if self.low is None or self.high is None:
            raise RegistryError(f"component {self.name!r} has no registered range")
        return range(self.low, self.high + 1)


@dataclass(frozen=True)
class SingleComponentEntry:
    """A single-component executable (paper §4.1): just a name-tag."""

    component: ComponentSpec

    def __post_init__(self) -> None:
        if self.component.has_range:
            raise RegistryError(
                f"single-component executable {self.component.name!r} must not register "
                "a processor range: its size comes from the job launcher"
            )

    @property
    def component_names(self) -> tuple[str, ...]:
        """Names registered by this entry (always one)."""
        return (self.component.name,)

    @property
    def kind(self) -> str:
        """Entry kind tag: ``"single"``."""
        return "single"


@dataclass(frozen=True)
class MultiComponentEntry:
    """A multi-component executable block (paper §4.2/§4.3)."""

    components: tuple[ComponentSpec, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise RegistryError("empty Multi_Component block")
        if len(self.components) > MAX_COMPONENTS_PER_EXECUTABLE:
            raise RegistryError(
                f"Multi_Component block registers {len(self.components)} components; the "
                f"limit is {MAX_COMPONENTS_PER_EXECUTABLE}"
            )
        for comp in self.components:
            if not comp.has_range:
                raise RegistryError(
                    f"component {comp.name!r} inside a Multi_Component block needs an "
                    "explicit 'low high' processor range"
                )

    @property
    def component_names(self) -> tuple[str, ...]:
        """Names registered by this entry, in file order."""
        return tuple(c.name for c in self.components)

    @property
    def kind(self) -> str:
        """Entry kind tag: ``"multi_component"``."""
        return "multi_component"

    @property
    def nprocs(self) -> int:
        """The executable's processor count implied by the ranges."""
        return max(c.high for c in self.components) + 1  # type: ignore[arg-type]

    def overlapping_pairs(self) -> list[tuple[str, str]]:
        """Pairs of components sharing at least one local processor."""
        out: list[tuple[str, str]] = []
        comps = self.components
        for i in range(len(comps)):
            for j in range(i + 1, len(comps)):
                a, b = comps[i], comps[j]
                if a.low <= b.high and b.low <= a.high:  # type: ignore[operator]
                    out.append((a.name, b.name))
        return out

    @property
    def has_overlap(self) -> bool:
        """Whether any two components overlap on processors."""
        return bool(self.overlapping_pairs())

    def uncovered_indices(self) -> list[int]:
        """Executable-local processor indices covered by no component."""
        covered: set[int] = set()
        for c in self.components:
            covered.update(c.local_indices())
        return [i for i in range(self.nprocs) if i not in covered]


@dataclass(frozen=True)
class MultiInstanceEntry:
    """A multi-instance executable block for ensembles (paper §4.4)."""

    instances: tuple[ComponentSpec, ...]

    def __post_init__(self) -> None:
        if not self.instances:
            raise RegistryError("empty Multi_Instance block")
        covered: set[int] = set()
        for inst in self.instances:
            if not inst.has_range:
                raise RegistryError(
                    f"instance {inst.name!r} inside a Multi_Instance block needs an "
                    "explicit 'low high' processor range"
                )
            overlap = covered.intersection(inst.local_indices())
            if overlap:
                raise RegistryError(
                    f"instance {inst.name!r} overlaps earlier instances on local "
                    f"processors {sorted(overlap)}: instances are independent replicas "
                    "and may not share processors"
                )
            covered.update(inst.local_indices())

    @property
    def component_names(self) -> tuple[str, ...]:
        """Expanded instance names, in file order (paper: "Each component
        will have the expanded component names")."""
        return tuple(c.name for c in self.instances)

    @property
    def kind(self) -> str:
        """Entry kind tag: ``"multi_instance"``."""
        return "multi_instance"

    @property
    def nprocs(self) -> int:
        """The executable's processor count implied by the ranges."""
        return max(c.high for c in self.instances) + 1  # type: ignore[arg-type]

    def uncovered_indices(self) -> list[int]:
        """Executable-local processor indices covered by no instance."""
        covered: set[int] = set()
        for c in self.instances:
            covered.update(c.local_indices())
        return [i for i in range(self.nprocs) if i not in covered]


RegistryEntry = Union[SingleComponentEntry, MultiComponentEntry, MultiInstanceEntry]


class Registry:
    """A parsed, validated registration file.

    Construct with :meth:`from_text` / :meth:`from_file`, or directly from
    entries.  The registry is immutable; :meth:`to_text` round-trips.
    """

    def __init__(self, entries: list[RegistryEntry]):
        if not entries:
            raise RegistryError("registration file registers no components")
        self.entries: tuple[RegistryEntry, ...] = tuple(entries)
        names = [n for e in self.entries for n in e.component_names]
        check_unique(names)
        #: All component names (instances expanded), in file order — this
        #: order defines the global ``component_id`` used as the split
        #: color (paper §6).
        self.component_names: tuple[str, ...] = tuple(names)
        self._specs: dict[str, ComponentSpec] = {}
        for entry in self.entries:
            for spec in _entry_specs(entry):
                self._specs[spec.name] = spec

    # -- construction -------------------------------------------------------

    @classmethod
    def from_text(cls, text: str, source: str = "<string>") -> "Registry":
        """Parse registration-file *text* (see module docstring grammar)."""
        return cls(list(_parse_entries(text, source)))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "Registry":
        """Parse the registration file at *path*."""
        path = Path(path)
        return cls.from_text(path.read_text(), source=str(path))

    @classmethod
    def load(cls, obj: Union["Registry", str, Path]) -> "Registry":
        """Coerce a registry input: a :class:`Registry` passes through, a
        path-like loads the file, and a string containing a newline (or
        ``BEGIN``) parses as text."""
        if isinstance(obj, Registry):
            return obj
        if isinstance(obj, Path):
            return cls.from_file(obj)
        if isinstance(obj, str):
            if "\n" in obj or obj.lstrip().startswith("BEGIN"):
                return cls.from_text(obj)
            return cls.from_file(obj)
        raise RegistryError(f"cannot interpret registry input of type {type(obj).__name__}")

    # -- queries -----------------------------------------------------------------

    def component_id(self, name: str) -> int:
        """Global component id (file order), the handshake's split color."""
        try:
            return self.component_names.index(name)
        except ValueError:
            raise RegistryError(
                f"component name-tag {name!r} does not appear in the registration file; "
                f"registered names: {list(self.component_names)}"
            ) from None

    def spec(self, name: str) -> ComponentSpec:
        """The :class:`ComponentSpec` registered under *name*."""
        if name not in self._specs:
            raise RegistryError(
                f"component name-tag {name!r} does not appear in the registration file; "
                f"registered names: {list(self.component_names)}"
            )
        return self._specs[name]

    @property
    def total_components(self) -> int:
        """Number of components, instances expanded (``MPH_total_components``)."""
        return len(self.component_names)

    def entry_of(self, name: str) -> tuple[int, RegistryEntry]:
        """The entry index and entry registering component *name*."""
        for i, entry in enumerate(self.entries):
            if name in entry.component_names:
                return i, entry
        raise RegistryError(f"component name-tag {name!r} does not appear in the registration file")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Registry) and self.entries == other.entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Registry {len(self.entries)} executables, {self.total_components} components>"

    # -- serialisation ---------------------------------------------------------------

    def to_text(self) -> str:
        """Render back to registration-file text (parse → render → parse is
        the identity; property-tested)."""
        lines = ["BEGIN"]
        for entry in self.entries:
            if isinstance(entry, SingleComponentEntry):
                lines.append(_render_line(entry.component))
            elif isinstance(entry, MultiComponentEntry):
                lines.append("Multi_Component_Begin")
                lines.extend(_render_line(c) for c in entry.components)
                lines.append("Multi_Component_End")
            else:
                lines.append("Multi_Instance_Begin")
                lines.extend(_render_line(c) for c in entry.instances)
                lines.append("Multi_Instance_End")
        lines.append("END")
        return "\n".join(lines) + "\n"

    def to_file(self, path: Union[str, Path]) -> None:
        """Write the registration file to *path*."""
        Path(path).write_text(self.to_text())


def _entry_specs(entry: RegistryEntry) -> tuple[ComponentSpec, ...]:
    if isinstance(entry, SingleComponentEntry):
        return (entry.component,)
    if isinstance(entry, MultiComponentEntry):
        return entry.components
    return entry.instances


def _render_line(spec: ComponentSpec) -> str:
    parts = [spec.name]
    if spec.has_range:
        parts.extend([str(spec.low), str(spec.high)])
    parts.extend(spec.fields)
    return " ".join(parts)


def _parse_component_line(tokens: list[str], where: str) -> ComponentSpec:
    """Parse a ``NAME LOW HIGH field*`` line (range required)."""
    name = tokens[0]
    try:
        low, high = parse_proc_range(tokens[1:3])
    except ValueError as exc:
        raise RegistryError(f"{where}: component {name!r}: {exc}") from exc
    return ComponentSpec(name, low, high, tuple(tokens[3:]))


def _parse_entries(text: str, source: str) -> Iterator[RegistryEntry]:
    lines = text.splitlines()
    state = "preamble"  # preamble -> body -> done; or inside a block
    block_kind: Optional[str] = None
    block_specs: list[ComponentSpec] = []

    for lineno, raw in enumerate(lines, start=1):
        tokens = tokenize_line(raw)
        if not tokens:
            continue
        where = f"{source}:{lineno}"
        head = tokens[0]

        if state == "preamble":
            if head != "BEGIN" or len(tokens) != 1:
                raise RegistryError(f"{where}: expected 'BEGIN', got {raw.strip()!r}")
            state = "body"
            continue

        if state == "done":
            raise RegistryError(f"{where}: content after 'END': {raw.strip()!r}")

        if state == "body":
            if head == "END":
                if len(tokens) != 1:
                    raise RegistryError(f"{where}: trailing tokens after 'END'")
                state = "done"
                continue
            if head == "Multi_Component_Begin":
                state, block_kind, block_specs = "block", "multi_component", []
                continue
            if head == "Multi_Instance_Begin":
                state, block_kind, block_specs = "block", "multi_instance", []
                continue
            if head in ("Multi_Component_End", "Multi_Instance_End"):
                raise RegistryError(f"{where}: {head} without a matching Begin")
            # A single-component executable: name plus optional argument
            # fields (its processor count comes from the launcher).
            try:
                yield SingleComponentEntry(ComponentSpec(head, fields=tuple(tokens[1:])))
            except RegistryError as exc:
                raise RegistryError(f"{where}: {exc}") from exc
            continue

        # state == "block"
        expected_end = (
            "Multi_Component_End" if block_kind == "multi_component" else "Multi_Instance_End"
        )
        wrong_end = (
            "Multi_Instance_End" if block_kind == "multi_component" else "Multi_Component_End"
        )
        if head == expected_end:
            try:
                if block_kind == "multi_component":
                    yield MultiComponentEntry(tuple(block_specs))
                else:
                    yield MultiInstanceEntry(tuple(block_specs))
            except RegistryError as exc:
                raise RegistryError(f"{where}: {exc}") from exc
            state, block_kind, block_specs = "body", None, []
            continue
        if head == wrong_end:
            raise RegistryError(f"{where}: {head} closes a {block_kind} block")
        if head in ("Multi_Component_Begin", "Multi_Instance_Begin"):
            raise RegistryError(f"{where}: nested {head} blocks are not allowed")
        if head in ("BEGIN", "END"):
            raise RegistryError(f"{where}: {head} inside a {block_kind} block")
        try:
            block_specs.append(_parse_component_line(tokens, where))
        except RegistryError:
            raise

    if state == "preamble":
        raise RegistryError(f"{source}: registration file has no 'BEGIN'")
    if state == "block":
        raise RegistryError(f"{source}: unterminated {block_kind} block at end of file")
    if state != "done":
        raise RegistryError(f"{source}: registration file has no 'END'")
