"""Multi-channel standard-output redirection (paper Section 5.4).

With five components running, "if nothing special is done, all these
messages sent to stdout will go to the session launching terminal.  The
mixed output would be extremely difficult to decipher."  MPH's answer:
redirect the stdout of local processor 0 of each component to a
``<component>.log`` file, while "all other occasional writes from all other
processors are stored in one combined standard output file."

Since this reproduction runs MPI processes as threads of one interpreter,
per-process stdout is simulated with a *thread-aware* stdout proxy: while a
:class:`MultiChannelOutput` is installed, each thread's ``print`` output is
routed to the channel that thread registered (or passed through to the real
stdout when it registered none).  Log file names come from environment
variables — ``MPH_LOG_<NAME>`` per component and ``MPH_COMBINED_LOG`` for
the combined stream — "defined by run time environment variables either in
command line or in batch run script" (paper §5.4).
"""

from __future__ import annotations

import io
import os
import sys
import threading
from pathlib import Path
from typing import Optional, TextIO, Union


def log_path_for(
    component_name: str,
    *,
    is_channel_owner: bool,
    env_vars: Optional[dict[str, str]] = None,
    workdir: Optional[Union[str, Path]] = None,
) -> Path:
    """The Section 5.4 log-path policy, shared by both output managers.

    The component's local processor 0 owns ``<component>.log``
    (overridable via the ``MPH_LOG_<NAME>`` environment variable, name
    upper-cased with ``-``/``.`` mapped to ``_``); every other processor
    shares the combined log (``MPH_COMBINED_LOG`` override, default
    ``mph_combined.log``).  Default-named logs land in *workdir* (or the
    current directory).
    """
    env_vars = env_vars or {}
    base = Path(workdir) if workdir is not None else Path.cwd()
    if is_channel_owner:
        var = "MPH_LOG_" + component_name.upper().replace("-", "_").replace(".", "_")
        return Path(env_vars.get(var, base / f"{component_name}.log"))
    return Path(env_vars.get("MPH_COMBINED_LOG", base / "mph_combined.log"))


class _ThreadAwareProxy(io.TextIOBase):
    """A ``sys.stdout`` stand-in dispatching per-thread."""

    def __init__(self, fallback: TextIO):
        self._fallback = fallback
        self._targets: dict[int, TextIO] = {}
        self._lock = threading.Lock()

    def _target(self) -> TextIO:
        return self._targets.get(threading.get_ident(), self._fallback)

    def register(self, target: TextIO) -> None:
        with self._lock:
            self._targets[threading.get_ident()] = target

    def unregister(self) -> None:
        with self._lock:
            self._targets.pop(threading.get_ident(), None)

    # io.TextIOBase interface -------------------------------------------------

    def write(self, s: str) -> int:  # noqa: D102 - interface method
        return self._target().write(s)

    def flush(self) -> None:  # noqa: D102 - interface method
        self._target().flush()

    @property
    def encoding(self) -> str:  # noqa: D102 - interface method
        return getattr(self._target(), "encoding", "utf-8")

    def writable(self) -> bool:  # noqa: D102 - interface method
        return True


class _LockedWriter(io.TextIOBase):
    """A shared append-mode writer serialising lines from many threads —
    the simulated "log mode" of parallel file systems (paper §5.4), where
    "writes from different processors will be buffered and appended"."""

    def __init__(self, stream: TextIO):
        self._stream = stream
        self._lock = threading.Lock()

    def write(self, s: str) -> int:  # noqa: D102 - interface method
        with self._lock:
            return self._stream.write(s)

    def flush(self) -> None:  # noqa: D102 - interface method
        with self._lock:
            self._stream.flush()

    def writable(self) -> bool:  # noqa: D102 - interface method
        return True

    def close_stream(self) -> None:
        with self._lock:
            self._stream.close()


class MultiChannelOutput:
    """The job-wide output manager: one log channel per component.

    Use as a context manager around the job (done automatically by
    :class:`repro.launcher.job.MpmdJob`); components then call
    :meth:`redirect` — via ``MPH.redirect_output()`` — from their own
    threads.

    The manager is idempotent to install and safe to use uninstalled (all
    operations become no-ops), so library code never has to care whether a
    job harness set it up.
    """

    def __init__(self) -> None:
        self._proxy: Optional[_ThreadAwareProxy] = None
        self._saved_stdout: Optional[TextIO] = None
        self._channels: dict[str, _LockedWriter] = {}
        self._lock = threading.Lock()
        self._installed = 0

    # -- installation ------------------------------------------------------

    def __enter__(self) -> "MultiChannelOutput":
        self.install()
        return self

    def __exit__(self, *exc) -> None:
        self.uninstall()

    def install(self) -> None:
        """Replace ``sys.stdout`` with the thread-aware proxy (re-entrant)."""
        with self._lock:
            self._installed += 1
            if self._proxy is None:
                self._saved_stdout = sys.stdout
                self._proxy = _ThreadAwareProxy(sys.stdout)
                sys.stdout = self._proxy  # type: ignore[assignment]

    def uninstall(self) -> None:
        """Restore ``sys.stdout`` and close all channels (when the last
        installer leaves)."""
        with self._lock:
            if self._installed > 0:
                self._installed -= 1
            if self._installed > 0 or self._proxy is None:
                return
            sys.stdout = self._saved_stdout  # type: ignore[assignment]
            self._proxy = None
            self._saved_stdout = None
            channels, self._channels = self._channels, {}
        for writer in channels.values():
            writer.close_stream()

    @property
    def installed(self) -> bool:
        """Whether the proxy currently owns ``sys.stdout``."""
        return self._proxy is not None

    # -- channels ---------------------------------------------------------------

    def _channel(self, key: str, path: Path) -> _LockedWriter:
        with self._lock:
            writer = self._channels.get(key)
            if writer is None:
                path.parent.mkdir(parents=True, exist_ok=True)
                writer = _LockedWriter(open(path, "a", buffering=1))
                self._channels[key] = writer
            return writer

    def redirect(
        self,
        component_name: str,
        *,
        is_channel_owner: bool,
        env_vars: Optional[dict[str, str]] = None,
        workdir: Optional[Union[str, Path]] = None,
    ) -> Optional[Path]:
        """Route the calling thread's stdout per the Section 5.4 policy.

        Parameters
        ----------
        component_name :
            The component this process belongs to.
        is_channel_owner :
            True on the component's local processor 0, which owns the
            per-component log; other processors share the combined file.
        env_vars :
            Job environment variables; ``MPH_LOG_<NAME>`` (name upper-cased,
            ``-``/``.`` mapped to ``_``) overrides the per-component log
            path and ``MPH_COMBINED_LOG`` the combined path.
        workdir :
            Directory for default-named logs (default: current directory).

        Returns
        -------
        Path or None
            The log path this thread now writes to, or ``None`` when the
            manager is not installed (no redirection happens).
        """
        if self._proxy is None:
            return None
        path = log_path_for(
            component_name,
            is_channel_owner=is_channel_owner,
            env_vars=env_vars,
            workdir=workdir,
        )
        key = f"component:{component_name}" if is_channel_owner else "combined"
        self._proxy.register(self._channel(key, path))
        return path

    def restore(self) -> None:
        """Undo :meth:`redirect` for the calling thread."""
        if self._proxy is not None:
            self._proxy.unregister()


class ProcessOutput:
    """The process-backend output manager: real OS-level redirection.

    Where :class:`MultiChannelOutput` simulates per-process stdout with a
    thread-aware proxy (threads share one interpreter, so there is only
    one real stdout to go around), a process-backend rank *owns* its
    stdout — so §5.4 redirection is done the way the paper's platforms do
    it: ``dup2`` the log file over file descriptor 1.  The path policy
    (:func:`log_path_for`) is identical, so ``MPH_redirect_output`` is
    backend-transparent.

    Duck-types the :class:`MultiChannelOutput` surface MPH touches
    (``install``/``uninstall``/``redirect``/``restore``/``installed``),
    so :class:`~repro.launcher.job.JobEnv.output` can carry either.
    """

    def __init__(self) -> None:
        self._saved_fd: Optional[int] = None
        self._log_fd: Optional[int] = None
        self._saved_stdout: Optional[TextIO] = None

    def __enter__(self) -> "ProcessOutput":
        return self

    def __exit__(self, *exc) -> None:
        self.restore()

    def install(self) -> None:
        """No-op (a process's stdout needs no proxy)."""

    def uninstall(self) -> None:
        """Alias for :meth:`restore` (manager-interface parity)."""
        self.restore()

    @property
    def installed(self) -> bool:
        """Always true: fd 1 is always redirectable."""
        return True

    def redirect(
        self,
        component_name: str,
        *,
        is_channel_owner: bool,
        env_vars: Optional[dict[str, str]] = None,
        workdir: Optional[Union[str, Path]] = None,
    ) -> Path:
        """Point this process's stdout (fd 1) at the §5.4 log file.

        Opened in append mode so the combined log survives many ranks
        writing concurrently (the "log mode" of §5.4).
        """
        path = log_path_for(
            component_name,
            is_channel_owner=is_channel_owner,
            env_vars=env_vars,
            workdir=workdir,
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        sys.stdout.flush()
        fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        if self._saved_fd is None:
            self._saved_fd = os.dup(1)
        os.dup2(fd, 1)
        if self._log_fd is not None:
            os.close(self._log_fd)
        self._log_fd = fd
        # ``print`` must follow the redirection too.  A forked child
        # inherits whatever object the parent had bound to ``sys.stdout``
        # — possibly a capture proxy (pytest, an output manager) that
        # does not write through fd 1 — so rebind it onto fd 1 directly.
        if self._saved_stdout is None:
            self._saved_stdout = sys.stdout
            sys.stdout = io.TextIOWrapper(
                io.FileIO(1, "w", closefd=False), line_buffering=True
            )
        return path

    def restore(self) -> None:
        """Undo :meth:`redirect`: put the original stdout back on fd 1."""
        sys.stdout.flush()
        if self._saved_stdout is not None:
            sys.stdout = self._saved_stdout
            self._saved_stdout = None
        if self._saved_fd is not None:
            os.dup2(self._saved_fd, 1)
            os.close(self._saved_fd)
            self._saved_fd = None
        if self._log_fd is not None:
            os.close(self._log_fd)
            self._log_fd = None
