"""Dynamic component processor reallocation (paper §9, future work (b)).

"Some further work of component integration mechanisms of MPH are: ...
(b) dynamic component model processor allocation or migration."

The mechanism implemented here: at an application-wide synchronisation
point, every process re-runs the handshake against a *new* registration
file that reassigns processors among the components of each executable
(executable sizes are fixed by the launcher and cannot change mid-job).
The component set must be preserved; communicators are rebuilt, and
:func:`redistribute_block` moves 1-D block-decomposed component data from
the old layout to the new one over the executable communicator.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.handshake import handshake
from repro.core.mph import MPH
from repro.errors import HandshakeError


def migrate(mph: MPH, new_registry: Any) -> MPH:
    """Re-handshake the whole application against *new_registry*.

    Collective over the global world: every process must call it at the
    same point.  Returns a fresh :class:`MPH` handle; the old handle's
    communicators remain usable for draining in-flight data but should be
    retired afterwards.

    Raises
    ------
    HandshakeError
        When the new registration changes the component set or regroups
        components across executables (only processor ranges may move).
    """
    old_decl = mph._hs.declaration
    assert old_decl is not None
    new_mph = MPH(handshake(mph.global_world, old_decl, new_registry), env=mph._env)

    old_names = set(mph.layout.registry.component_names)
    new_names = set(new_mph.layout.registry.component_names)
    if old_names != new_names:
        raise HandshakeError(
            f"migration must preserve the component set; "
            f"removed: {sorted(old_names - new_names)}, added: {sorted(new_names - old_names)}"
        )
    return new_mph


def block_rows(n_rows: int, size: int, rank: int) -> tuple[int, int]:
    """The ``[start, stop)`` row range of *rank* in an even 1-D block
    decomposition of *n_rows* over *size* processes (remainder rows go to
    the leading ranks, the standard convention)."""
    base, rem = divmod(n_rows, size)
    start = rank * base + min(rank, rem)
    stop = start + base + (1 if rank < rem else 0)
    return start, stop


def redistribute_block(
    old_mph: MPH,
    new_mph: MPH,
    component: str,
    local_block: Optional[np.ndarray],
    n_rows: int,
) -> Optional[np.ndarray]:
    """Move a 1-D block-decomposed field from the old layout to the new.

    Collective over the *executable* hosting the component.  Each process
    that owned rows under the old layout passes its block (``None``
    otherwise); each process owning rows under the new layout receives its
    new block (``None`` otherwise).

    The implementation gathers the field on the executable's root and
    re-scatters it — simple and obviously correct, which is what a
    migration epoch (a rare event) wants.
    """
    exe = new_mph.exe_world
    old_info = old_mph.layout.component(component)
    new_info = new_mph.layout.component(component)
    me = new_mph.global_proc_id()

    # Gather (old-local-rank, block) contributions on the executable root.
    contribution = None
    if me in old_info.world_ranks and local_block is not None:
        contribution = (old_info.local_rank_of(me), np.asarray(local_block))
    gathered = exe.gather(contribution, root=0)

    blocks_for: Optional[list] = None
    if exe.rank == 0:
        assert gathered is not None
        pieces = sorted((c for c in gathered if c is not None), key=lambda t: t[0])
        if not pieces:
            raise HandshakeError(f"no process contributed data for component {component!r}")
        full = np.concatenate([b for _, b in pieces], axis=0)
        if full.shape[0] != n_rows:
            raise HandshakeError(
                f"component {component!r}: contributed blocks cover {full.shape[0]} rows, "
                f"expected {n_rows}"
            )
        # Slice per the new layout and address each slice to the right
        # executable-local process.
        blocks_for = [None] * exe.size
        exe_ranks = new_mph.layout.executables[new_mph.exe_id()].world_ranks
        for new_local, world_rank in enumerate(new_info.world_ranks):
            start, stop = block_rows(n_rows, new_info.size, new_local)
            blocks_for[exe_ranks.index(world_rank)] = full[start:stop]
    return exe.scatter(blocks_for, root=0)
