"""Parallel M×N data rearrangement between component decompositions.

The Model Coupling Toolkit — which "uses MPH" for its handshaking (paper
§7) — is built around exactly this abstraction: a *router* that moves a
distributed field from component A's decomposition straight to component
B's, each process exchanging only the rows that actually change owner,
with no serial gather-at-rank-0 bottleneck.

:class:`Rearranger` reproduces that for 1-D row (latitude-band)
decompositions.  The communication schedule is computed locally from the
shared layout — both sides derive identical block maps, so no negotiation
traffic is needed — computed **once** at construction, and executed with
eager nonblocking sends.  Message volume is Θ(overlapping pairs) instead
of the Θ(P) serial funnel through a root processor; the comparison is
measured in ``benchmarks/bench_rearranger.py``.

Routing runs on one of two transports, selected by
:attr:`repro.mpi.world.WorldConfig.rearranger_fastpath`:

* **buffer fast path** (default) — per schedule entry, a preallocated
  float64 staging buffer bound to persistent ``Send_init`` /
  ``Recv_init`` requests, with the ``(lo, hi)`` row header packed as a
  fixed-size two-element prefix.  Repeated couplings pay no pickling, no
  per-call allocation, and no request re-setup;
* **object mode** (flag off) — the legacy path shipping pickled
  ``(lo, hi, piece)`` tuples over MPH's name-addressed messaging, kept
  for ablation benchmarks.

Both transports produce identical float64 output blocks (the header
prefix is exact for row indices below 2**53).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.migration import block_rows
from repro.core.mph import MPH
from repro.errors import MPHError
from repro.mpi.request import Request


def overlap_schedule(
    nrows: int, src_size: int, dst_size: int
) -> list[tuple[int, int, int, int]]:
    """The row-exchange schedule between two block decompositions.

    Returns ``(src_local, dst_local, start, stop)`` tuples — global row
    interval ``[start, stop)`` moves from source-local rank *src_local* to
    destination-local rank *dst_local*.  Intervals are disjoint and cover
    every row exactly once.
    """
    out: list[tuple[int, int, int, int]] = []
    for s in range(src_size):
        s0, s1 = block_rows(nrows, src_size, s)
        for d in range(dst_size):
            d0, d1 = block_rows(nrows, dst_size, d)
            lo, hi = max(s0, d0), min(s1, d1)
            if lo < hi:
                out.append((s, d, lo, hi))
    return out


class Rearranger:
    """A reusable router from one component's rows to another's.

    Parameters
    ----------
    mph :
        The caller's MPH handle (provides the layout and messaging).
    src_component, dst_component :
        Component name-tags.  They may be the same component (a
        repartition), different components, or components sharing
        processors — a process appearing on both sides sends to itself
        through the normal path.
    nrows, ncols :
        Global field shape being routed.
    tag :
        World-communicator tag for this router's traffic.  Two routers
        used concurrently between overlapping process sets need distinct
        tags.
    """

    def __init__(
        self,
        mph: MPH,
        src_component: str,
        dst_component: str,
        nrows: int,
        ncols: int,
        tag: int = 950_000,
    ):
        self.mph = mph
        self.src = mph.layout.component(src_component)
        self.dst = mph.layout.component(dst_component)
        self.nrows, self.ncols = int(nrows), int(ncols)
        if self.nrows < max(self.src.size, self.dst.size):
            raise MPHError(
                f"cannot block-decompose {self.nrows} rows over "
                f"{max(self.src.size, self.dst.size)} processes"
            )
        self.tag = tag
        me = mph.global_proc_id()
        self._src_local = self.src.local_rank_of(me)
        self._dst_local = self.dst.local_rank_of(me)
        #: The full exchange schedule, computed once and reused by every
        #: routing call and by :meth:`message_count`.
        self._schedule = overlap_schedule(self.nrows, self.src.size, self.dst.size)
        #: Intervals this process sends: ``(dst_local, start, stop)``.
        self.sends = [
            (d, lo, hi) for s, d, lo, hi in self._schedule if s == self._src_local
        ] if self._src_local >= 0 else []
        #: Intervals this process receives: ``(src_local, start, stop)``.
        self.recvs = [
            (s, lo, hi) for s, d, lo, hi in self._schedule if d == self._dst_local
        ] if self._dst_local >= 0 else []
        self._fastpath = bool(
            getattr(mph.global_world.world.config, "rearranger_fastpath", True)
        )
        if self._fastpath:
            self._init_fastpath()

    def _init_fastpath(self) -> None:
        """Preallocate staging buffers and bind persistent requests.

        One float64 buffer of ``2 + rows*ncols`` elements per schedule
        entry: elements 0/1 carry the ``(lo, hi)`` header, the rest the
        row block.  Block decompositions yield at most one interval per
        (source, destination) pair, so one tag serves every entry.
        """
        world = self.mph.global_world
        #: ``(staging, request, lo, hi)`` per outgoing interval.
        self._send_plan = []
        for dst_local, lo, hi in self.sends:
            staging = np.empty(2 + (hi - lo) * self.ncols)
            staging[0], staging[1] = lo, hi
            dest = self.mph.global_id(self.dst.name, dst_local)
            self._send_plan.append((staging, world.Send_init(staging, dest, self.tag), lo, hi))
        #: ``(rbuf, request, lo, hi)`` per incoming interval.
        self._recv_plan = []
        for src_local, lo, hi in self.recvs:
            rbuf = np.empty(2 + (hi - lo) * self.ncols)
            source = self.mph.global_id(self.src.name, src_local)
            self._recv_plan.append((rbuf, world.Recv_init(rbuf, source, self.tag), lo, hi))

    # -- introspection -------------------------------------------------------

    @property
    def src_rows(self) -> tuple[int, int]:
        """This process's ``[start, stop)`` rows on the source side
        (``(0, 0)`` when not a source member)."""
        if self._src_local < 0:
            return (0, 0)
        return block_rows(self.nrows, self.src.size, self._src_local)

    @property
    def dst_rows(self) -> tuple[int, int]:
        """This process's ``[start, stop)`` rows on the destination side."""
        if self._dst_local < 0:
            return (0, 0)
        return block_rows(self.nrows, self.dst.size, self._dst_local)

    def message_count(self) -> int:
        """Total messages one rearrangement moves (schedule size, minus
        self-sends which still count as one delivery each)."""
        return len(self._schedule)

    # -- execution ----------------------------------------------------------------

    def _check_source_block(self, local_block: Optional[np.ndarray]) -> np.ndarray:
        src_start, src_stop = self.src_rows
        if local_block is None:
            raise MPHError(
                f"process is source-local rank {self._src_local} of "
                f"{self.src.name!r} and must pass its block"
            )
        local_block = np.asarray(local_block)
        expected = (src_stop - src_start, self.ncols)
        if local_block.shape != expected:
            raise MPHError(
                f"source block shape {local_block.shape} != expected {expected}"
            )
        return local_block

    def __call__(self, local_block: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """Route one field: source members pass their row block, others
        ``None``; destination members receive their new block, others get
        ``None``.

        Collective over the union of both components.  Eager sends make
        the send-all-then-receive-all order deadlock-free even when the
        two sides share processors.
        """
        if self._fastpath:
            return self._route_buffered(local_block)
        return self._route_pickled(local_block)

    def _route_buffered(self, local_block: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """The buffer-mode hot path: persistent requests over preallocated
        staging buffers with a packed ``(lo, hi)`` header prefix."""
        if self._dst_local >= 0:
            for _, req, _, _ in self._recv_plan:
                req.start()  # post receives before any traffic moves
        if self._src_local >= 0:
            local_block = self._check_source_block(local_block)
            src_start = self.src_rows[0]
            for staging, req, lo, hi in self._send_plan:
                staging[2:] = local_block[lo - src_start : hi - src_start].ravel()
                req.start()
                req.wait()  # eager: completes immediately
                self.mph.profile.record_send(self.dst.name, staging.nbytes)
        if self._dst_local < 0:
            return None
        dst_start, dst_stop = self.dst_rows
        out = np.empty((dst_stop - dst_start, self.ncols))
        # Complete receives in *arrival* order (MPI_Waitsome) instead of
        # plan order, so one slow peer never serialises the unpacking of
        # blocks that already landed.  Each waitsome call parks at most
        # once on the progress engine; the blocked time is ledgered on the
        # coupling profile.
        remaining = list(range(len(self._recv_plan)))
        while remaining:
            t0 = time.perf_counter()
            done = Request.waitsome([self._recv_plan[i][1] for i in remaining])
            self.mph.profile.record_wait(time.perf_counter() - t0)
            finished = []
            for j, _ in done:
                i = remaining[j]
                rbuf, _, lo, hi = self._recv_plan[i]
                got_lo, got_hi = int(rbuf[0]), int(rbuf[1])
                if (got_lo, got_hi) != (lo, hi):
                    raise MPHError(
                        f"rearranger header mismatch: expected rows [{lo}, {hi}) from "
                        f"{self.src.name!r}, got [{got_lo}, {got_hi})"
                    )
                rows = hi - lo
                out[lo - dst_start : hi - dst_start] = rbuf[2:].reshape(rows, self.ncols)
                self.mph.profile.record_recv(self.src.name, rbuf.nbytes)
                finished.append(i)
            remaining = [i for i in remaining if i not in finished]
        return out

    def _route_pickled(self, local_block: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """The legacy object-mode path (``rearranger_fastpath`` off):
        pickled ``(lo, hi, piece)`` tuples over name-addressed messaging."""
        src_start = self.src_rows[0]
        if self._src_local >= 0:
            local_block = self._check_source_block(local_block)
            reqs: list[Request] = []
            for dst_local, lo, hi in self.sends:
                piece = local_block[lo - src_start : hi - src_start]
                reqs.append(
                    self.mph.isend((lo, hi, piece), self.dst.name, dst_local, self.tag)
                )
            Request.waitall(reqs)

        if self._dst_local < 0:
            return None
        dst_start, dst_stop = self.dst_rows
        out = np.empty((dst_stop - dst_start, self.ncols))
        for src_local, lo, hi in self.recvs:
            got_lo, got_hi, piece = self.mph.recv(self.src.name, src_local, self.tag)
            out[got_lo - dst_start : got_hi - dst_start] = piece
        return out
