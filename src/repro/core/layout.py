"""The resolved processor layout of a running multi-component application.

A :class:`Layout` is what every process knows after the handshake: which
components exist, which executable each belongs to, and exactly which world
ranks every component occupies.  It is computed deterministically from the
broadcast registry plus the allgathered per-executable declarations, so all
processes hold identical copies without further communication.

All MPH inquiry functions (paper §5.3) and the inter-component messaging
address translation (§5.2) read from here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional

from repro.core.registry import (
    MultiComponentEntry,
    MultiInstanceEntry,
    Registry,
    RegistryEntry,
    SingleComponentEntry,
)
from repro.errors import HandshakeError
from repro.mpi.constants import UNDEFINED


@dataclass(frozen=True)
class ComponentInfo:
    """Everything known about one component after the handshake."""

    name: str
    #: Global component id == position in the registry (the split color).
    comp_id: int
    #: Index of the owning executable (by ascending lowest world rank).
    exe_id: int
    #: World ranks of the component, in component-local rank order.
    world_ranks: tuple[int, ...]
    #: Argument fields from the registration line (paper §4.4).
    fields: tuple[str, ...] = ()
    #: For instances of a multi-instance executable: the setup prefix.
    instance_prefix: Optional[str] = None

    @property
    def size(self) -> int:
        """Number of processes running this component."""
        return len(self.world_ranks)

    def local_rank_of(self, world_rank: int) -> int:
        """Component-local rank of *world_rank* (``UNDEFINED`` if absent)."""
        try:
            return self.world_ranks.index(world_rank)
        except ValueError:
            return UNDEFINED


@dataclass(frozen=True)
class ExecutableInfo:
    """Everything known about one executable after the handshake."""

    exe_id: int
    #: Index of the registry entry this executable matched.
    entry_index: int
    #: ``"single"`` / ``"multi_component"`` / ``"multi_instance"``.
    kind: str
    #: World ranks of the executable, ascending (local index order).
    world_ranks: tuple[int, ...]
    #: Names of the components it hosts (instances expanded).
    component_names: tuple[str, ...]
    #: Whether any two of its components overlap on processors.
    has_overlap: bool = False
    #: For multi-instance executables: the prefix passed to
    #: ``MPH_multi_instance`` by the running code.
    instance_prefix: Optional[str] = None

    @property
    def size(self) -> int:
        """Number of processes in the executable."""
        return len(self.world_ranks)

    @property
    def low_proc_limit(self) -> int:
        """Lowest world rank of the executable (``MPH_exe_low_proc_limit``)."""
        return self.world_ranks[0]

    @property
    def up_proc_limit(self) -> int:
        """Highest world rank of the executable (``MPH_exe_up_proc_limit``)."""
        return self.world_ranks[-1]


class Layout:
    """The global component/executable map shared by every process."""

    def __init__(self, registry: Registry, executables: list[ExecutableInfo]):
        self.registry = registry
        self.executables: tuple[ExecutableInfo, ...] = tuple(
            sorted(executables, key=lambda e: e.exe_id)
        )
        components: list[ComponentInfo] = []
        for exe in self.executables:
            entry = registry.entries[exe.entry_index]
            components.extend(_expand_components(registry, entry, exe))
        components.sort(key=lambda c: c.comp_id)
        self.components: tuple[ComponentInfo, ...] = tuple(components)
        self._by_name: dict[str, ComponentInfo] = {c.name: c for c in self.components}

    # -- degradation after process failure ------------------------------------

    @classmethod
    def degrade(
        cls, prev: "Layout", live_world_ids: Iterable[int]
    ) -> tuple["Layout", tuple[str, ...]]:
        """The layout that survives a process failure: *prev* with every
        dead world rank removed.

        World ids are **preserved** — a surviving process keeps its
        original global id, components keep their ``comp_id``, and
        executables keep their ``exe_id`` (an executable that lost every
        process stays in :attr:`executables` with no ranks, so positional
        ``exe_id`` indexing still works).  Components left with zero
        processes are dropped from :attr:`components`; their names are
        returned alongside the new layout so callers can report the
        degradation.

        Returns ``(layout, dead_component_names)``.  Deterministic: every
        survivor passing the same live set derives the identical layout,
        mirroring the original handshake's no-further-communication
        property.
        """
        live = frozenset(live_world_ids)
        lay = cls.__new__(cls)
        lay.registry = prev.registry
        lay.executables = tuple(
            replace(e, world_ranks=tuple(r for r in e.world_ranks if r in live))
            for e in prev.executables
        )
        survivors: list[ComponentInfo] = []
        dead: list[str] = []
        for comp in prev.components:
            ranks = tuple(r for r in comp.world_ranks if r in live)
            if ranks:
                survivors.append(replace(comp, world_ranks=ranks))
            else:
                dead.append(comp.name)
        lay.components = tuple(survivors)
        lay._by_name = {c.name: c for c in lay.components}
        return lay, tuple(dead)

    @classmethod
    def rebuild(
        cls,
        registry: Registry,
        executables: Iterable[ExecutableInfo],
        components: Iterable[ComponentInfo],
    ) -> "Layout":
        """A layout from already-resolved executable and component records.

        The epoch-transition constructor used by the sessions layer
        (``Session.grow``/``retire``): unlike ``__init__`` it does not
        re-expand registry entries, so it can represent memberships the
        registration file never described — grown instances, components
        extended beyond their registered processor range, executables that
        retired every rank.  Records are re-sorted by their ids; the ids
        themselves are preserved.
        """
        lay = cls.__new__(cls)
        lay.registry = registry
        lay.executables = tuple(sorted(executables, key=lambda e: e.exe_id))
        lay.components = tuple(sorted(components, key=lambda c: c.comp_id))
        lay._by_name = {c.name: c for c in lay.components}
        return lay

    # -- lookups --------------------------------------------------------------

    def component(self, name: str) -> ComponentInfo:
        """Info for component *name* (raising a helpful error if unknown)."""
        info = self._by_name.get(name)
        if info is None:
            raise HandshakeError(
                f"unknown component {name!r}; active components: {sorted(self._by_name)}"
            )
        return info

    def has_component(self, name: str) -> bool:
        """Whether *name* is an active component."""
        return name in self._by_name

    @property
    def total_components(self) -> int:
        """Number of active components (``MPH_total_components``)."""
        return len(self.components)

    @property
    def num_executables(self) -> int:
        """Number of executables in the job."""
        return len(self.executables)

    def global_rank(self, name: str, local_rank: int) -> int:
        """World rank of component-local rank *local_rank* of *name* — the
        paper's ``MPH_global_id(name, local)`` address translation (§5.2)."""
        info = self.component(name)
        if not 0 <= local_rank < info.size:
            raise HandshakeError(
                f"component {name!r} has {info.size} processes; local rank "
                f"{local_rank} out of range"
            )
        return info.world_ranks[local_rank]

    def components_on(self, world_rank: int) -> tuple[ComponentInfo, ...]:
        """Components covering *world_rank* (several when overlapping)."""
        return tuple(c for c in self.components if world_rank in c.world_ranks)

    def executable_of(self, world_rank: int) -> ExecutableInfo:
        """The executable owning *world_rank*."""
        for exe in self.executables:
            if world_rank in exe.world_ranks:
                return exe
        raise HandshakeError(f"world rank {world_rank} belongs to no executable")

    def overlap(self, name_a: str, name_b: str) -> bool:
        """Whether two components share any world rank."""
        a = set(self.component(name_a).world_ranks)
        return bool(a.intersection(self.component(name_b).world_ranks))

    def world_size(self) -> int:
        """Total world ranks covered by the executables."""
        return sum(e.size for e in self.executables)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        comps = ", ".join(f"{c.name}({c.size})" for c in self.components)
        return f"<Layout {self.num_executables} executables: {comps}>"

    def describe(self) -> str:
        """A human-readable table of the resolved layout — what
        ``processors_map.in`` plus the launch command actually produced.

        >>> print(mph.layout.describe())  # doctest: +SKIP
        executables:
          exe 0  multi_component  world ranks 0..19   [atmosphere, land, chemistry]
          ...
        components:
          id 0  atmosphere  exe 0  16 procs  world ranks 0-15
          ...
        """
        lines = ["executables:"]
        for exe in self.executables:
            names = ", ".join(exe.component_names)
            span = (
                f"world ranks {exe.low_proc_limit}..{exe.up_proc_limit}"
                if exe.world_ranks
                else "no surviving ranks"
            )
            lines.append(
                f"  exe {exe.exe_id}  {exe.kind:<15s} {span}  [{names}]"
                + ("  (overlapping)" if exe.has_overlap else "")
            )
        lines.append("components:")
        for comp in self.components:
            lines.append(
                f"  id {comp.comp_id}  {comp.name:<16s} exe {comp.exe_id}  "
                f"{comp.size} procs  world ranks {_span(comp.world_ranks)}"
                + (f"  fields: {' '.join(comp.fields)}" if comp.fields else "")
            )
        return "\n".join(lines)


def _span(ranks: tuple[int, ...]) -> str:
    """Compact rendering of a rank list: contiguous runs as ``a-b``."""
    if not ranks:
        return "(none)"
    runs: list[str] = []
    start = prev = ranks[0]
    for r in ranks[1:]:
        if r == prev + 1:
            prev = r
            continue
        runs.append(f"{start}-{prev}" if prev > start else str(start))
        start = prev = r
    runs.append(f"{start}-{prev}" if prev > start else str(start))
    return ",".join(runs)


def _expand_components(
    registry: Registry, entry: RegistryEntry, exe: ExecutableInfo
) -> list[ComponentInfo]:
    """Resolve one executable's registry entry against its world ranks."""
    ranks = exe.world_ranks
    out: list[ComponentInfo] = []
    if isinstance(entry, SingleComponentEntry):
        spec = entry.component
        out.append(
            ComponentInfo(
                name=spec.name,
                comp_id=registry.component_id(spec.name),
                exe_id=exe.exe_id,
                world_ranks=ranks,
                fields=spec.fields,
            )
        )
        return out
    specs = entry.components if isinstance(entry, MultiComponentEntry) else entry.instances
    for spec in specs:
        if spec.high >= len(ranks):  # type: ignore[operator]
            raise HandshakeError(
                f"component {spec.name!r} registers local processors "
                f"{spec.low}..{spec.high} but its executable has only {len(ranks)} "
                "processes — the registration file disagrees with the launch command"
            )
        out.append(
            ComponentInfo(
                name=spec.name,
                comp_id=registry.component_id(spec.name),
                exe_id=exe.exe_id,
                world_ranks=tuple(ranks[i] for i in spec.local_indices()),
                fields=spec.fields,
                instance_prefix=exe.instance_prefix if isinstance(entry, MultiInstanceEntry) else None,
            )
        )
    return out
