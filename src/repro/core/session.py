"""MPI-Sessions-style initialization: named process sets, on-demand
communicators, and elastic membership.

The paper's §4 handshake bootstraps everything eagerly: one registry
broadcast, one declaration allgather, then every communicator is split from
``COMM_WORLD`` up front.  Following the MPI Sessions model ("Implementing
True MPI Sessions and Evaluating MPI Initialization Scalability",
PAPERS.md), this module inverts that: after the (unavoidable) init
exchange, a :class:`Session` only *names* process sets —

* ``mph://world`` — every active process;
* ``mph://self`` — this process alone;
* ``mph://pool`` — parked reserve processes (see below);
* ``mph://exe/<k>`` — executable *k*'s processes;
* ``mph://component/<name>`` — one component (instances expanded, so MIME
  members get instance-scoped psets like ``mph://component/Ocean2``);
* ``mph://ensemble/<prefix>`` — all instances of a multi-instance
  executable together;
* ``mph://node/<k>`` — active processes on SMP node *k*.

Communicators are derived **lazily** from psets by their members only:
the member with the lowest world id allocates a fresh context pair and
distributes it point-to-point over MPH's private control communicator
(the same group-creation idiom ``MPH_comm_join`` already used, and what
MPI-3 standardizes as ``Comm_create_from_group``).  No world-wide splits,
no participation by processes outside the pset, and — because every
receive is specific-source, specific-tag — the derivation is deterministic
under an armed :class:`~repro.mpi.sched.MatchSchedule`.

**Elastic membership.**  Pset membership is versioned by an *epoch*
counter.  Three planned transitions and one unplanned one advance it:

* :meth:`Session.grow` — admit reserve processes (parked via
  :func:`pool_session` + :meth:`Session.await_assignment`) into an
  existing component, a resurrected dead component, or a brand-new
  instance of a multi-instance executable;
* :meth:`Session.retire` — remove processes cleanly: psets shrink,
  emptied components leave the layout, and surviving transports drop the
  departed peers' cached connections and shared-memory rings;
* :meth:`Session.release_pool` — dismiss the remaining reserve;
* :meth:`Session.shrink` — the *unplanned* case: the PR-3
  revoke/shrink/agree recovery plane expressed as the same epoch
  transition (``MPH.shrink_world`` routes here).

Every transition is a deterministic, purely local state update computed
identically by all active processes from the transition record; parked
pool processes replay the records they receive from the lowest active
rank, so the whole application agrees on every epoch's membership without
any collective agreement protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.core.handshake import (
    ComponentDecl,
    Declaration,
    HandshakeResult,
    InstanceDecl,
    PoolDecl,
    _resolve_executables,
)
from repro.core.layout import ComponentInfo, ExecutableInfo, Layout
from repro.core.registry import (
    MultiComponentEntry,
    MultiInstanceEntry,
    Registry,
    SingleComponentEntry,
)
from repro.errors import HandshakeError, SessionError
from repro.mpi.comm import Comm
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.group import Group

#: Control-communicator tag namespace for pset-communicator derivation.
#: Far above the ``comm_join`` namespace (1_000_000 + comp_id * 4096) and
#: far below the recovery reservation (``1 << 31``); the control comm
#: carries both families, disambiguated by tag alone.
SESSION_TAG_BASE = 1 << 28

#: Epochs per pset slot in the derivation tag: one pset derived at two
#: different epochs uses two different tags (until the epoch counter wraps
#: this radix, at which point per-source ordering still disambiguates).
_PSET_TAG_RADIX = 4096

#: Tags for epoch-transition records sent to parked pool processes
#: (``POOL_TAG_BASE + epoch``).  The sender varies by transition kind, so
#: the receive is any-source — but each epoch has exactly one notifier, so
#: the match is unique and schedule-independent.
POOL_TAG_BASE = SESSION_TAG_BASE - (1 << 16)

_EPOCH_TAG_MASK = 0xFFFF


@dataclass(frozen=True)
class ProcessSet:
    """One named process set at one epoch — an immutable membership view."""

    name: str
    #: World ids of the members, in pset rank order.
    members: Tuple[int, ...]
    #: The epoch this view belongs to.
    epoch: int

    @property
    def size(self) -> int:
        return len(self.members)

    def __contains__(self, world_id: int) -> bool:
        return world_id in self.members


@dataclass(frozen=True)
class PrecomputedLayout:
    """A handshake layout resolved ahead of time — the sessions layer's
    layout-cache seam.

    The init exchange (§6 steps 1–3: registry broadcast, declaration
    allgather, layout resolution) is a pure function of the registration
    file and the per-rank declarations.  A launcher that already knows
    both — the MPH service runtime, which derives them from a validated
    job document and caches the result keyed by the document's layout
    hash — can :meth:`build` this once and hand it to every rank as the
    ``registry`` input.  :meth:`Session.init` then skips the exchange
    entirely: no broadcast, no allgather, just a local consistency check
    of this rank's declaration against the precomputed one (a mismatch is
    a :class:`~repro.errors.HandshakeError`, exactly as a live exchange
    would have produced).

    Pure data (picklable), so the process backend can ship it to forked
    and exec'd children inside their launcher metadata.
    """

    #: The parsed registration file.
    registry: Registry
    #: Per-world-rank declarations, in rank order.
    decls: Tuple[Declaration, ...]
    #: Resolved executables (identical to what the live exchange derives).
    exes: Tuple[Any, ...]
    #: World ranks of the reserve pool.
    pool: Tuple[int, ...]
    #: The legacy split-strategy label.
    strategy: str

    @classmethod
    def build(cls, registry_input: Any, decls: Sequence[Declaration]) -> "PrecomputedLayout":
        """Resolve the layout exactly as the live init exchange would:
        parse the registry, group *decls* into executables, match them
        against registry entries.  Raises the same
        :class:`~repro.errors.HandshakeError` /
        :class:`~repro.errors.RegistryError` a live exchange raises."""
        registry = Registry.load(registry_input)
        exes, _, pool = _resolve_executables(registry, list(decls), 0)
        all_single = all(isinstance(e, SingleComponentEntry) for e in registry.entries)
        return cls(
            registry=registry,
            decls=tuple(decls),
            exes=tuple(exes),
            pool=pool,
            strategy="world_split" if all_single else "exe_then_comp",
        )

    def layout(self) -> Layout:
        """The resolved component/executable map."""
        return Layout(self.registry, list(self.exes))


@dataclass(frozen=True)
class Assignment:
    """What :meth:`Session.await_assignment` returns to an admitted
    reserve process."""

    #: Names of the components now covering this process.
    components: Tuple[str, ...]
    #: Index of the executable it joined.
    exe_id: int
    #: The epoch at which it became active.
    epoch: int


class Session:
    """A process's handle on the sessions layer.

    Create one with :func:`components_session`, :func:`instance_session`,
    or :func:`pool_session` (or implicitly through the legacy
    ``components_setup``/``multi_instance``/``handshake`` shims).
    """

    def __init__(
        self,
        *,
        base_world: Comm,
        control: Comm,
        registry: Registry,
        decl: Declaration,
        decls: Sequence[Declaration],
        layout: Layout,
        pool: Tuple[int, ...],
        strategy: str,
    ):
        self._base_world = base_world
        self._control = control
        self._registry = registry
        self._decl = decl
        self._decls = tuple(decls)
        self._strategy = strategy
        self._my_id = base_world.group.world_id(base_world.rank)

        self._epoch = 0
        self._layouts: Dict[int, Layout] = {0: layout}
        self._pools: Dict[int, Tuple[int, ...]] = {0: pool}
        self._actives: Dict[int, Tuple[int, ...]] = {0: _active_ranks(layout)}
        self._catalogs: Dict[int, Dict[str, Tuple[int, ...]]] = {}
        self._pset_index: Dict[int, Dict[str, int]] = {}
        self._comm_cache: Dict[Tuple[str, int], Comm] = {}

        #: Cumulative crashed components still absent from the layout
        #: (a ``grow`` that resurrects one removes it again).
        self._dead_components: list[str] = []
        #: Components removed by planned ``retire`` calls (kept separate
        #: from crash-induced ``dead_components`` on purpose).
        self._retired_components: list[str] = []
        self._departed_ranks: set[int] = set()
        self._transitions: list[tuple] = []
        self._pool_released = False

        # Monotonic counters for grown MIME instances: next local instance
        # number per prefix, and the next fresh component id beyond the
        # registry's (ids are never reused, so join tags stay unambiguous).
        self._instance_counts: Dict[str, int] = {}
        for exe in layout.executables:
            if exe.instance_prefix is not None:
                self._instance_counts[exe.instance_prefix] = len(exe.component_names)
        self._next_comp_id = len(tuple(registry.component_names))

    # -- construction ----------------------------------------------------------

    @classmethod
    def init(cls, world: Comm, decl: Declaration, registry_input: Any) -> "Session":
        """Run the init exchange over *world* and return this process's
        session.

        Collective over every process of *world* — including reserve
        processes, which declare :class:`PoolDecl` and then park.  The
        exchange is the paper's §6 steps 1–3 (registry broadcast,
        declaration allgather, deterministic layout resolution) plus one
        ``dup`` for the control communicator; **no** component
        communicators are built here — they are derived lazily from psets.
        """
        max_comps = world.world.config.max_components_per_executable
        if isinstance(decl, ComponentDecl) and len(decl.names) > max_comps:
            raise HandshakeError(
                f"executable declares {len(decl.names)} components; the limit is {max_comps} "
                "(paper §4.3)"
            )

        if isinstance(registry_input, PrecomputedLayout):
            # Layout-cache fast path: the launcher resolved the layout
            # ahead of time (service runtime, warm job) — skip the
            # broadcast and allgather, check this rank's declaration
            # against the precomputed one, and take the layout as data.
            pre = registry_input
            if len(pre.decls) != world.size:
                raise HandshakeError(
                    f"precomputed layout covers {len(pre.decls)} ranks but the "
                    f"world has {world.size}"
                )
            if pre.decls[world.rank] != decl:
                raise HandshakeError(
                    f"rank {world.rank} declared {decl!r} but the precomputed "
                    f"layout expected {pre.decls[world.rank]!r}; the layout "
                    "cache is stale for this job"
                )
            registry = pre.registry
            decls = list(pre.decls)
            exes, pool = list(pre.exes), pre.pool
            layout = Layout(registry, exes)
            strategy = pre.strategy
        else:
            # Step 1 — root reads the registration file and broadcasts it (§6).
            if world.rank == 0:
                registry = Registry.load(registry_input)
                world.bcast(registry)
            else:
                registry = world.bcast(None)

            # Step 2 — allgather declarations.
            decls = world.allgather(decl)

            # Step 3 — group into executables and match against the registry.
            exes, _my_exe_id, pool = _resolve_executables(registry, decls, world.rank)
            layout = Layout(registry, exes)

            all_single = all(
                isinstance(e, SingleComponentEntry) for e in registry.entries
            )
            strategy = "world_split" if all_single else "exe_then_comp"

        # The control communicator: MPH's private plane for pset-context
        # distribution, comm_join, and pool notifications.  It spans the
        # *full* original world (pool included) and is never rebuilt, so
        # world ids translate to its ranks as the identity for the whole
        # application lifetime.
        control = world.dup("MPH_service")

        session = cls(
            base_world=world,
            control=control,
            registry=registry,
            decl=decl,
            decls=decls,
            layout=layout,
            pool=pool,
            strategy=strategy,
        )
        if not pool:
            # Without a reserve pool the active world *is* the launch
            # world: reuse the existing communicator instead of deriving
            # an identical one (keeps the legacy shim's init cost at the
            # pre-sessions level).
            session._comm_cache[("mph://world", 0)] = world
        return session

    # -- introspection ---------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current pset epoch (0 after init, +1 per transition)."""
        return self._epoch

    @property
    def layout(self) -> Layout:
        """The current epoch's component/executable map."""
        return self._layouts[self._epoch]

    def layout_at(self, epoch: int) -> Layout:
        """The layout as of a specific epoch (kept for every epoch)."""
        return self._layouts[epoch]

    @property
    def strategy(self) -> str:
        """The legacy split-strategy label (``"world_split"`` /
        ``"exe_then_comp"``)."""
        return self._strategy

    @property
    def registry(self) -> Registry:
        return self._registry

    @property
    def control_comm(self) -> Comm:
        """MPH's private control communicator (the legacy ``service_comm``)."""
        return self._control

    @property
    def is_active(self) -> bool:
        """Whether this process is in the current active world."""
        return self._my_id in self._actives[self._epoch]

    @property
    def is_retired(self) -> bool:
        """Whether this process was removed by a :meth:`retire`."""
        return self._my_id in self._departed_ranks

    @property
    def dead_components(self) -> Tuple[str, ...]:
        """Components that lost every process to *failures* and have not
        been resurrected by a :meth:`grow`."""
        return tuple(self._dead_components)

    @property
    def retired_components(self) -> Tuple[str, ...]:
        """Components whose every process was *planned* out via
        :meth:`retire` (disjoint from :attr:`dead_components`)."""
        return tuple(self._retired_components)

    def psets(self) -> Tuple[str, ...]:
        """Names of every process set at the current epoch."""
        return tuple(self._catalog(self._epoch))

    def pset(self, name: str) -> ProcessSet:
        """Look up a process set by name — a purely local operation.

        Accepts the full ``mph://`` URI or a shorthand: ``"world"`` for
        ``mph://world``, ``"component/ocean"`` for
        ``mph://component/ocean``, or a bare component name.
        """
        catalog = self._catalog(self._epoch)
        resolved = self._resolve_pset_name(name, catalog)
        if resolved is None:
            raise SessionError(
                f"unknown process set {name!r}; available: {sorted(catalog)}"
            )
        return ProcessSet(resolved, catalog[resolved], self._epoch)

    def _resolve_pset_name(
        self, name: str, catalog: Dict[str, Tuple[int, ...]]
    ) -> Optional[str]:
        for candidate in (name, f"mph://{name}", f"mph://component/{name}"):
            if candidate in catalog:
                return candidate
        return None

    # -- communicator derivation ------------------------------------------------

    def comm(self, name: str) -> Comm:
        """The communicator of process set *name*, derived on demand.

        Collective over the pset's members **only** — processes outside it
        neither participate nor may call this (that raises
        :class:`SessionError`).  The derived communicator is cached per
        ``(pset, epoch)``, so repeated calls are free and every member
        gets the same epoch's view.
        """
        ps = self.pset(name)
        key = (ps.name, self._epoch)
        cached = self._comm_cache.get(key)
        if cached is not None:
            return cached
        comm = self._derive_comm(ps.name, self._epoch)
        self._comm_cache[key] = comm
        return comm

    def _derive_comm(self, pset_name: str, epoch: int) -> Comm:
        """Group-creation from a pset: the lowest-world-id member allocates
        a context pair and distributes it p2p over the control comm at a
        tag every member computes locally (pset catalog index + epoch)."""
        catalog = self._catalog(epoch)
        members = catalog[pset_name]
        me = self._my_id
        if me not in members:
            raise SessionError(
                f"process {me} is not a member of {pset_name!r} at epoch {epoch}; "
                "only members may derive its communicator"
            )
        if not members:
            raise SessionError(f"process set {pset_name!r} is empty at epoch {epoch}")
        control = self._control
        tag = (
            SESSION_TAG_BASE
            + self._pset_index[epoch][pset_name] * _PSET_TAG_RADIX
            + epoch % _PSET_TAG_RADIX
        )
        leader = min(members)
        if me == leader:
            ctxs = control.world.alloc_context_pair()
            for other in members:
                if other != leader:
                    control.send(ctxs, control.group.rank_of(other), tag)
        else:
            ctxs = control.recv(source=control.group.rank_of(leader), tag=tag)
        return Comm(
            control.world,
            Group(members),
            me,
            ctxs,
            name=_comm_name(pset_name),
        )

    def _catalog(self, epoch: int) -> Dict[str, Tuple[int, ...]]:
        """The pset catalog of *epoch*: an ordered name -> members map,
        built identically by every process from the shared layout (the
        insertion order doubles as the derivation-tag index)."""
        cached = self._catalogs.get(epoch)
        if cached is not None:
            return cached
        lay = self._layouts[epoch]
        active = self._actives[epoch]
        cat: Dict[str, Tuple[int, ...]] = {}
        cat["mph://world"] = active
        cat["mph://self"] = (self._my_id,)
        cat["mph://pool"] = self._pools[epoch]
        for exe in lay.executables:
            cat[f"mph://exe/{exe.exe_id}"] = exe.world_ranks
        for comp in lay.components:
            cat[f"mph://component/{comp.name}"] = comp.world_ranks
        for exe in lay.executables:
            if exe.instance_prefix is not None:
                cat[f"mph://ensemble/{exe.instance_prefix}"] = exe.world_ranks
        topo = getattr(self._control.world, "topology", None)
        if topo is not None:
            for node in range(topo.nnodes):
                cat[f"mph://node/{node}"] = tuple(
                    r for r in active if topo.node_of(r) == node
                )
        self._catalogs[epoch] = cat
        self._pset_index[epoch] = {name: i for i, name in enumerate(cat)}
        return cat

    # -- legacy bridge -----------------------------------------------------------

    def handshake_result(self) -> HandshakeResult:
        """Materialize the legacy :class:`HandshakeResult` view at the
        current epoch.

        Collective over the active world (every active process must call
        it at the same epoch): it derives the world, executable, and
        covering-component communicators from their psets.  Shapes the
        result exactly as the pre-sessions handshake did — including
        ``exe_comm is component_comm`` on the ``"world_split"`` path.
        """
        me = self._my_id
        if not self.is_active:
            raise SessionError(
                f"process {me} is not active at epoch {self._epoch} "
                f"({'retired' if self.is_retired else 'parked in the reserve pool'}); "
                "it has no component view to materialize"
            )
        lay = self._layouts[self._epoch]
        world_comm = self.comm("mph://world")
        exe = lay.executable_of(me)
        my_comps = [c for c in lay.components if me in c.world_ranks]

        comp_comms: Dict[str, Comm] = {}
        if self._strategy == "world_split":
            # Single-component executables: the component communicator is
            # the executable communicator (§6 case 1 made them one split).
            comp = my_comps[0]
            exe_comm = self.comm(f"mph://component/{comp.name}")
            comp_comms[comp.name] = exe_comm
        else:
            exe_comm = self.comm(f"mph://exe/{exe.exe_id}")
            for comp in my_comps:
                comp_comms[comp.name] = self.comm(f"mph://component/{comp.name}")

        return HandshakeResult(
            layout=lay,
            registry=self._registry,
            exe_id=exe.exe_id,
            exe_comm=exe_comm,
            comp_comms=comp_comms,
            strategy=self._strategy,
            world=world_comm,
            service_comm=self._control,
            declaration=self._decl,
            dead_components=tuple(self._dead_components),
            session=self,
        )

    def mph(self, env: Any = None) -> "Any":
        """A fresh :class:`~repro.core.mph.MPH` handle at the current epoch
        (collective over the active world, like :meth:`handshake_result`)."""
        from repro.core.mph import MPH

        return MPH(self.handshake_result(), env=env)

    # -- elastic transitions -----------------------------------------------------

    def grow(self, component: str, n: int) -> Tuple[str, ...]:
        """Admit *n* reserve processes into *component*.

        Collective over every active process (all must call with the same
        arguments).  *component* may be:

        * an existing component — the processes append to it (their
          component-local ranks follow the current members');
        * the instance prefix of a multi-instance executable — a brand-new
          instance (``<prefix><k+1>``) is created on the new processes;
        * a registered component currently dead after a failure — it is
          resurrected with its original component id and drops out of
          :attr:`dead_components`.

        The assigned processes are the first *n* of the reserve pool in
        world-id order; their :meth:`await_assignment` returns.  Returns
        the grown/created component names.  Admitting processes into
        communicators stays lazy: derive what you need afterwards with
        :meth:`comm` or a fresh :meth:`mph` handle.
        """
        self._require_active("grow")
        record = ("grow", str(component), int(n))
        prev_pool = self._pools[self._epoch]
        notifier = min(self._actives[self._epoch])
        grown = self._apply(record)
        self._notify_pool(record, prev_pool, notifier)
        return grown

    def retire(self, ranks: Iterable[int]) -> Tuple[str, ...]:
        """Remove processes from the application cleanly.

        Collective over every active process *including the retiring ones*
        (they participate in this last collective, then should finish
        their program).  Components left with zero processes leave the
        layout and are recorded in :attr:`retired_components` — not
        :attr:`dead_components`; this is the planned flavour of the same
        epoch transition a failure-shrink performs.  Surviving processes
        drop the departed peers from their transports (cached connections,
        shared-memory rings and page holds).  Returns the names of
        components that retired entirely.
        """
        self._require_active("retire")
        ranks = tuple(sorted({int(r) for r in ranks}))
        record = ("retire", ranks)
        prev_pool = self._pools[self._epoch]
        notifier = min(self._actives[self._epoch])
        retired = self._apply(record)
        self._notify_pool(record, prev_pool, notifier)
        return retired

    def release_pool(self) -> None:
        """Dismiss the remaining reserve processes: their
        :meth:`await_assignment` returns ``None`` and the pool pset
        empties.  Collective over every active process; a no-op when the
        pool is already empty."""
        self._require_active("release_pool")
        prev_pool = self._pools[self._epoch]
        if not prev_pool:
            return
        record = ("release",)
        notifier = min(self._actives[self._epoch])
        self._apply(record)
        self._notify_pool(record, prev_pool, notifier)

    def await_assignment(self) -> Optional[Assignment]:
        """Park a reserve process until a :meth:`grow` admits it (returns
        its :class:`Assignment`) or :meth:`release_pool` dismisses it
        (returns ``None``).

        While parked, the process replays every epoch-transition record it
        receives, so its view of psets, layout, and epoch stays exactly in
        step with the active world's.
        """
        if self._my_id not in self._pools[self._epoch]:
            raise SessionError(
                f"process {self._my_id} is not in the reserve pool; "
                "await_assignment is for pool_session processes"
            )
        while True:
            record = self._control.recv(
                source=ANY_SOURCE,
                tag=POOL_TAG_BASE + ((self._epoch + 1) & _EPOCH_TAG_MASK),
            )
            self._apply(record)
            if self._pool_released and not self.is_active:
                return None
            if self.is_active:
                lay = self._layouts[self._epoch]
                comps = tuple(
                    c.name for c in lay.components if self._my_id in c.world_ranks
                )
                return Assignment(
                    components=comps,
                    exe_id=lay.executable_of(self._my_id).exe_id,
                    epoch=self._epoch,
                )

    def shrink(self) -> Tuple[str, ...]:
        """The unplanned epoch transition: rebuild over the survivors of a
        process failure (the ``MPH.shrink_world`` / ``rehandshake`` path).

        Collective over every *live* active process.  Internally this is
        ``Comm.shrink`` on the current world pset's communicator followed
        by the same deterministic record application as :meth:`grow` /
        :meth:`retire` — so original global proc ids stay stable and a
        later ``grow`` composes correctly (it can even resurrect a
        component the failure erased).  Returns the newly dead components.
        """
        self._require_active("shrink")
        current = self.comm("mph://world")
        new_world = current.shrink("MPH_world")
        live = tuple(new_world.group.members)
        record = ("shrink", live)
        prev_pool = self._pools[self._epoch]
        notifier = min(live)
        newly_dead = self._apply(record, shrunk_world=new_world)
        self._notify_pool(record, prev_pool, notifier)
        return newly_dead

    # -- transition machinery ----------------------------------------------------

    def _require_active(self, op: str) -> None:
        if not self.is_active:
            raise SessionError(
                f"Session.{op} is collective over active processes; process "
                f"{self._my_id} is "
                + ("retired" if self.is_retired else "parked in the reserve pool")
            )

    def _notify_pool(
        self, record: tuple, prev_pool: Tuple[int, ...], notifier: int
    ) -> None:
        """Forward a transition record to every process that was parked
        when it happened (including ones it just admitted).  Exactly one
        process — the transition's notifier — sends."""
        if self._my_id != notifier:
            return
        tag = POOL_TAG_BASE + (self._epoch & _EPOCH_TAG_MASK)
        for r in prev_pool:
            self._control.send(record, self._control.group.rank_of(r), tag)

    def _apply(self, record: tuple, shrunk_world: Optional[Comm] = None) -> Tuple[str, ...]:
        """Apply one epoch-transition record — the same pure function on
        every process (active, retiring, or parked), so all views agree.
        Returns the affected component names (grown / retired / newly
        dead, by kind)."""
        kind = record[0]
        epoch = self._epoch
        lay = self._layouts[epoch]
        pool = self._pools[epoch]
        new_epoch = epoch + 1
        affected: Tuple[str, ...] = ()

        if kind == "grow":
            _, component, n = record
            if n <= 0:
                raise SessionError(f"grow needs a positive count, got {n}")
            if n > len(pool):
                raise SessionError(
                    f"grow({component!r}, {n}): only {len(pool)} reserve "
                    f"process{'es' if len(pool) != 1 else ''} in the pool"
                )
            assigned = pool[:n]
            new_pool = pool[n:]
            new_layout, affected = self._grow_layout(lay, component, assigned)
        elif kind == "retire":
            _, ranks = record
            gone = frozenset(ranks)
            active = frozenset(self._actives[epoch])
            stray = sorted(gone - active)
            if stray:
                raise SessionError(f"cannot retire non-active ranks {stray}")
            if gone >= active:
                raise SessionError("cannot retire every active process")
            new_pool = pool
            new_layout, affected = self._retire_layout(lay, gone)
            self._departed_ranks |= gone
            self._retired_components.extend(affected)
        elif kind == "release":
            new_pool = ()
            new_layout = lay
            self._pool_released = True
        elif kind == "shrink":
            _, live = record
            liveset = frozenset(live)
            new_pool = pool
            new_layout, newly_dead = Layout.degrade(lay, liveset)
            self._dead_components.extend(newly_dead)
            affected = newly_dead
        else:  # pragma: no cover - defensive
            raise SessionError(f"unknown session transition record {record!r}")

        self._epoch = new_epoch
        self._layouts[new_epoch] = new_layout
        self._pools[new_epoch] = new_pool
        self._actives[new_epoch] = _active_ranks(new_layout)
        self._transitions.append(record)

        if kind == "retire" and self._my_id not in self._departed_ranks:
            # Survivors (active or parked) invalidate the departed peers'
            # transport state: cached connections, shm rings, page holds.
            transport = getattr(self._control.world, "transport", None)
            if transport is not None:
                for r in record[1]:
                    transport.forget_peer(r)

        # Keep the world pset's communicator materialized at every epoch:
        # transitions change its membership, and an always-live world comm
        # is what lets the unplanned shrink path run at any epoch.
        key = ("mph://world", new_epoch)
        if shrunk_world is not None:
            if self._my_id in self._actives[new_epoch]:
                self._comm_cache[key] = shrunk_world
        elif kind == "release":
            prev = self._comm_cache.get(("mph://world", epoch))
            if prev is not None:
                self._comm_cache[key] = prev
        elif self._my_id in self._actives[new_epoch]:
            self._comm_cache[key] = self._derive_comm("mph://world", new_epoch)
        return affected

    def _grow_layout(
        self, lay: Layout, component: str, assigned: Tuple[int, ...]
    ) -> Tuple[Layout, Tuple[str, ...]]:
        exes = {e.exe_id: e for e in lay.executables}
        comps = list(lay.components)

        if lay.has_component(component):
            # Extend an existing component: new processes rank after the
            # current members, and join the owning executable.
            info = lay.component(component)
            comps[comps.index(info)] = replace(
                info, world_ranks=info.world_ranks + assigned
            )
            exe = exes[info.exe_id]
            exes[info.exe_id] = replace(
                exe, world_ranks=tuple(sorted(exe.world_ranks + assigned))
            )
            grown = (component,)
        elif any(e.instance_prefix == component for e in lay.executables):
            # A new instance of a multi-instance executable: fresh name,
            # fresh component id beyond the registry's.
            exe = next(e for e in lay.executables if e.instance_prefix == component)
            index = self._instance_counts.get(component, 0) + 1
            taken = set(self._registry.component_names) | {c.name for c in comps}
            while f"{component}{index}" in taken:
                index += 1
            name = f"{component}{index}"
            self._instance_counts[component] = index
            comp_id = self._next_comp_id
            self._next_comp_id += 1
            comps.append(
                ComponentInfo(
                    name=name,
                    comp_id=comp_id,
                    exe_id=exe.exe_id,
                    world_ranks=assigned,
                    fields=(),
                    instance_prefix=component,
                )
            )
            exes[exe.exe_id] = replace(
                exe,
                world_ranks=tuple(sorted(exe.world_ranks + assigned)),
                component_names=exe.component_names + (name,),
            )
            grown = (name,)
        else:
            # A registered component with no live processes (erased by a
            # failure): resurrect it with its original component id.
            spec_info = _registry_spec(self._registry, component)
            if spec_info is None:
                raise SessionError(
                    f"cannot grow unknown component {component!r}; it is neither "
                    "an active component, a multi-instance prefix, nor a "
                    "registered component"
                )
            entry_index, spec = spec_info
            exe = next(
                (e for e in lay.executables if e.entry_index == entry_index), None
            )
            if exe is None:  # pragma: no cover - defensive
                raise SessionError(
                    f"component {component!r} has no executable in the layout"
                )
            comps.append(
                ComponentInfo(
                    name=component,
                    comp_id=self._registry.component_id(component),
                    exe_id=exe.exe_id,
                    world_ranks=assigned,
                    fields=tuple(spec.fields),
                    instance_prefix=exe.instance_prefix,
                )
            )
            exes[exe.exe_id] = replace(
                exe, world_ranks=tuple(sorted(exe.world_ranks + assigned))
            )
            if component in self._dead_components:
                self._dead_components.remove(component)
            grown = (component,)

        return Layout.rebuild(self._registry, exes.values(), comps), grown

    def _retire_layout(
        self, lay: Layout, gone: frozenset
    ) -> Tuple[Layout, Tuple[str, ...]]:
        exes = [
            replace(e, world_ranks=tuple(r for r in e.world_ranks if r not in gone))
            for e in lay.executables
        ]
        comps: list[ComponentInfo] = []
        fully_retired: list[str] = []
        for comp in lay.components:
            ranks = tuple(r for r in comp.world_ranks if r not in gone)
            if ranks:
                comps.append(replace(comp, world_ranks=ranks))
            else:
                fully_retired.append(comp.name)
        return Layout.rebuild(self._registry, exes, comps), tuple(fully_retired)


def _active_ranks(layout: Layout) -> Tuple[int, ...]:
    ranks: set[int] = set()
    for exe in layout.executables:
        ranks.update(exe.world_ranks)
    return tuple(sorted(ranks))


def _comm_name(pset_name: str) -> str:
    if pset_name == "mph://world":
        return "MPH_world"
    if pset_name.startswith("mph://component/"):
        return f"MPH:{pset_name[len('mph://component/'):]}"
    if pset_name.startswith("mph://exe/"):
        return f"MPH:exe{pset_name[len('mph://exe/'):]}"
    return f"MPH:pset({pset_name})"


def _registry_spec(registry: Registry, name: str):
    """Find ``(entry_index, component_spec)`` for a registered component."""
    for i, entry in enumerate(registry.entries):
        if isinstance(entry, SingleComponentEntry):
            if entry.component.name == name:
                return i, entry.component
        else:
            specs = (
                entry.components
                if isinstance(entry, MultiComponentEntry)
                else entry.instances
            )
            for spec in specs:
                if spec.name == name:
                    return i, spec
    return None


# -- entry points ---------------------------------------------------------------


def _registry_source(registry: Any, env: Any) -> Any:
    if registry is not None:
        return registry
    env_registry = getattr(env, "registry", None)
    if env_registry is not None:
        return env_registry
    raise SessionError(
        "no registration file: pass `registry=` to the session call or launch "
        "through mph_run(..., registry=...)"
    )


def components_session(
    world: Comm, *names: str, registry: Any = None, env: Any = None
) -> Session:
    """A session for an executable declaring component *names* — the
    sessions-first spelling of ``MPH_components_setup`` (which is now a
    shim over exactly this)."""
    return Session.init(world, ComponentDecl(tuple(names)), _registry_source(registry, env))


def instance_session(
    world: Comm, prefix: str, *, registry: Any = None, env: Any = None
) -> Session:
    """A session for a multi-instance (MIME) executable — the
    sessions-first spelling of ``MPH_multi_instance``."""
    return Session.init(world, InstanceDecl(prefix), _registry_source(registry, env))


def pool_session(world: Comm, *, registry: Any = None, env: Any = None) -> Session:
    """A session for a reserve process: it joins the init exchange, runs no
    component, and parks in :meth:`Session.await_assignment` until an
    elastic :meth:`Session.grow` admits it::

        session = pool_session(world, registry=reg)
        assignment = session.await_assignment()
        if assignment is None:          # pool released, never needed
            return
        mph = session.mph(env=env)      # full MPH handle, current epoch
    """
    return Session.init(world, PoolDecl(), _registry_source(registry, env))
