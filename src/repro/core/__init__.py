"""MPH core: registration, handshaking, and the unified mode interface.

The subpackage layout follows the paper:

* :mod:`repro.core.registry` — the ``processors_map.in`` file (§3, §4);
* :mod:`repro.core.handshake` — the split-based handshake algorithm (§6);
* :mod:`repro.core.mph` — ``components_setup`` / ``multi_instance`` and
  the :class:`MPH` handle (§4, §5.3);
* :mod:`repro.core.join` — ``MPH_comm_join`` (§5.1);
* :mod:`repro.core.messaging` — name-addressed send/recv (§5.2);
* :mod:`repro.core.arguments` — ``MPH_get_argument`` (§4.4);
* :mod:`repro.core.redirect` — multi-channel output (§5.4);
* :mod:`repro.core.ensemble` — ensemble statistics and control (§2.5);
* :mod:`repro.core.migration` — dynamic reallocation (§9 future work).
"""

from repro.core.arguments import ArgumentFields
from repro.core.ensemble import (
    CONTROL_TAG,
    REPORT_TAG,
    EnsembleCollector,
    EnsembleMember,
    EnsembleStats,
    OnlineMoments,
)
from repro.core.handshake import ComponentDecl, HandshakeResult, InstanceDecl, handshake
from repro.core.layout import ComponentInfo, ExecutableInfo, Layout
from repro.core.migration import block_rows, migrate, redistribute_block
from repro.core.mph import MPH, components_setup, multi_instance
from repro.core.profiling import CommProfile, gather_profiles
from repro.core.rearranger import Rearranger, overlap_schedule
from repro.core.redirect import MultiChannelOutput, ProcessOutput, log_path_for
from repro.core.registry import (
    ComponentSpec,
    MultiComponentEntry,
    MultiInstanceEntry,
    Registry,
    SingleComponentEntry,
)

__all__ = [
    "ArgumentFields",
    "CONTROL_TAG",
    "REPORT_TAG",
    "EnsembleCollector",
    "EnsembleMember",
    "EnsembleStats",
    "OnlineMoments",
    "ComponentDecl",
    "HandshakeResult",
    "InstanceDecl",
    "handshake",
    "ComponentInfo",
    "ExecutableInfo",
    "Layout",
    "block_rows",
    "migrate",
    "redistribute_block",
    "MPH",
    "components_setup",
    "multi_instance",
    "CommProfile",
    "gather_profiles",
    "Rearranger",
    "overlap_schedule",
    "MultiChannelOutput",
    "ProcessOutput",
    "log_path_for",
    "ComponentSpec",
    "MultiComponentEntry",
    "MultiInstanceEntry",
    "Registry",
    "SingleComponentEntry",
]
