"""``MPH_comm_join``: a joint communicator over two components (paper §5.1).

"The output comm_new communicator will contain all processors in both
components, with processors in 'atmosphere' component ranked first (rank
0-15) and processors in 'ocean' component ranked second (rank 16-23). ...
If one reverses 'atmosphere' with 'ocean' in the call, then ocean
processors will rank 0-7 and atmosphere processors will rank 8-23."

Implementation note: a world-wide ``Comm_split`` would force *every*
process of the application to participate in every join.  Instead the join
is collective only over the union of the two components: the member with
the lowest world rank allocates the new context ids and distributes them
over MPH's private service communicator.  All members derive the member
list — first component's processors in local order, then the second's —
deterministically from the shared layout, so no further agreement is
needed.  (MPI-3's ``Comm_create_group`` works the same way; in 2004 MPH
had to burn a world split for this.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import JoinError
from repro.mpi.comm import Comm
from repro.mpi.group import Group

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.mph import MPH

#: Service-communicator tag namespace reserved for join context
#: distribution.  The tag of one join is derived from the two component
#: ids, which every member agrees on by construction; repeated joins of the
#: same pair reuse the tag and stay correctly ordered by the per-source
#: non-overtaking guarantee.
JOIN_TAG_BASE = 1_000_000

#: Component-id radix for join tags (far above the 10-components-per-
#: executable paper limit times any realistic executable count).
_JOIN_ID_RADIX = 4096


def comm_join(mph: "MPH", name_first: str, name_second: str) -> Optional[Comm]:
    """Create the joint communicator of two components.

    Collective over the union of the two components' processes (all of
    which must call with the same arguments, in the same order relative to
    other joins).  Processes outside both components get ``None`` without
    communicating.

    Raises
    ------
    JoinError
        For unknown or identical component names, or components that
        overlap on processors (the rank ordering would be ambiguous).
    """
    layout = mph.layout
    if name_first == name_second:
        raise JoinError(f"cannot join component {name_first!r} with itself")
    a = layout.component(name_first)
    b = layout.component(name_second)
    shared = set(a.world_ranks).intersection(b.world_ranks)
    if shared:
        raise JoinError(
            f"components {name_first!r} and {name_second!r} overlap on world ranks "
            f"{sorted(shared)}; a joint communicator would need them at two ranks at once"
        )

    members = a.world_ranks + b.world_ranks  # first component ranks first (§5.1)
    me = mph.global_proc_id()
    if me not in members:
        return None

    # The member list is world ids; the service communicator's ranks only
    # coincide with them on the full world.  After a post-failure shrink
    # the translation goes through the service group (identity otherwise).
    service = mph.service_comm
    tag = JOIN_TAG_BASE + a.comp_id * _JOIN_ID_RADIX + b.comp_id
    leader = min(members)
    if me == leader:
        ctxs = service.world.alloc_context_pair()
        for other in members:
            if other != leader:
                service.send(ctxs, service.group.rank_of(other), tag)
    else:
        ctxs = service.recv(source=service.group.rank_of(leader), tag=tag)

    return Comm(
        service.world,
        Group(members),
        me,
        ctxs,
        name=f"MPH:join({name_first},{name_second})",
    )
