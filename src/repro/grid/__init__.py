"""MPH over the Grid: multi-cluster model integration (paper §9, future
work (c)).

"Some further work of component integration mechanisms of MPH are: ...
(c) an extension of MPH to do model integration over the grid."

In Grid computing each cluster is its own MPI universe — there is no
shared ``MPI_Comm_World`` across sites, so the intra-cluster handshake
cannot see remote components.  This package adds the missing layer:

* :mod:`repro.grid.channel` — a simulated wide-area link between clusters
  (configurable latency and bandwidth, tagged message matching);
* :mod:`repro.grid.session` — :class:`GridSession`: runs one
  :class:`~repro.launcher.job.MpmdJob` per cluster concurrently, wiring
  every job to the shared channel;
* :mod:`repro.grid.gridmph` — :func:`grid_setup`: a cross-grid
  registration exchange that gives every process a directory of every
  cluster's components, and :class:`GridMPH` with send/recv addressed by
  ``(cluster, component, local rank)``.

The intra-cluster world stays ordinary MPH; only explicitly grid-addressed
traffic crosses the wide-area channel — mirroring how a real Grid-enabled
MPH would bridge per-site MPI jobs.
"""

from repro.grid.channel import GridChannel, GridEnvelope
from repro.grid.gridmph import GridDirectory, GridMPH, grid_setup
from repro.grid.session import ClusterSpec, GridSession, run_grid

__all__ = [
    "GridChannel",
    "GridEnvelope",
    "GridDirectory",
    "GridMPH",
    "grid_setup",
    "ClusterSpec",
    "GridSession",
    "run_grid",
]
