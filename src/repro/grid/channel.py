"""The simulated wide-area link between clusters.

A :class:`GridChannel` carries tagged, pickled messages between named
clusters with a configurable one-way latency and bandwidth.  Delivery
semantics mirror the intra-cluster mailboxes — per-sender FIFO, earliest
match wins — but a message only becomes *visible* once its simulated
arrival time has passed, which is what makes latency experiments honest:
a zero-latency channel and a 50 ms channel run the same code.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ReproError

#: Fallback poll interval while waiting for a cross-grid message whose
#: simulated arrival time has not been reached yet and no earlier wake is
#: scheduled (normally the wait is sized exactly to the next arrival).
_WAIT_SLICE = 0.05


@dataclass
class GridEnvelope:
    """One message in flight on the wide-area link."""

    src_cluster: str
    dest_cluster: str
    component: str
    local_rank: int
    tag: int
    #: Pickled payload (value semantics across sites, like everywhere else).
    payload: bytes
    #: Simulated arrival time (``time.monotonic`` seconds).
    visible_at: float = 0.0

    def matches(self, component: str, local_rank: int, tag: Optional[int], src: Optional[str]) -> bool:
        """Whether this envelope satisfies a receive pattern (``None``
        fields are wildcards)."""
        return (
            self.component == component
            and self.local_rank == local_rank
            and (tag is None or self.tag == tag)
            and (src is None or self.src_cluster == src)
        )


class GridChannel:
    """A shared wide-area fabric connecting every cluster of a session.

    Parameters
    ----------
    clusters :
        The participating cluster names.
    latency :
        One-way delivery delay in seconds (default 0: instant).
    bandwidth :
        Optional bytes/second; adds ``size / bandwidth`` to the delay, the
        standard alpha–beta cost model.
    """

    def __init__(
        self,
        clusters: list[str],
        latency: float = 0.0,
        bandwidth: Optional[float] = None,
    ):
        if len(set(clusters)) != len(clusters) or not clusters:
            raise ReproError(f"cluster names must be non-empty and distinct: {clusters}")
        if latency < 0:
            raise ReproError(f"latency must be >= 0, got {latency}")
        self.clusters = list(clusters)
        self.latency = latency
        self.bandwidth = bandwidth
        self._cond = threading.Condition()
        self._queues: dict[str, list[GridEnvelope]] = {c: [] for c in clusters}
        #: Total messages and bytes carried (for the benchmarks).
        self.messages_carried = 0
        self.bytes_carried = 0

    def _check_cluster(self, name: str) -> None:
        if name not in self._queues:
            raise ReproError(f"unknown cluster {name!r}; session has {self.clusters}")

    def delay_for(self, nbytes: int) -> float:
        """The alpha–beta delivery delay for a message of *nbytes*."""
        beta = nbytes / self.bandwidth if self.bandwidth else 0.0
        return self.latency + beta

    # -- sending ------------------------------------------------------------

    def post(
        self,
        src_cluster: str,
        dest_cluster: str,
        component: str,
        local_rank: int,
        tag: int,
        obj: Any,
    ) -> None:
        """Send *obj* to ``(dest_cluster, component, local_rank)``."""
        self._check_cluster(src_cluster)
        self._check_cluster(dest_cluster)
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        env = GridEnvelope(
            src_cluster=src_cluster,
            dest_cluster=dest_cluster,
            component=component,
            local_rank=local_rank,
            tag=tag,
            payload=payload,
            visible_at=time.monotonic() + self.delay_for(len(payload)),
        )
        with self._cond:
            self._queues[dest_cluster].append(env)
            self.messages_carried += 1
            self.bytes_carried += len(payload)
            self._cond.notify_all()

    # -- receiving -------------------------------------------------------------

    def collect(
        self,
        cluster: str,
        component: str,
        local_rank: int,
        tag: Optional[int] = None,
        src_cluster: Optional[str] = None,
        timeout: float = 60.0,
    ) -> tuple[Any, str, int]:
        """Blocking receive for the process ``(cluster, component,
        local_rank)``; returns ``(obj, src_cluster, tag)``.

        Messages are matched earliest-posted-first among those whose
        simulated arrival time has passed.
        """
        self._check_cluster(cluster)
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                now = time.monotonic()
                queue = self._queues[cluster]
                # One pass both matches visible envelopes and finds the
                # next simulated arrival among matching in-flight ones, so
                # the wait below is event-driven: sized exactly to that
                # arrival (or the timeout) instead of a fixed poll slice.
                next_visible: Optional[float] = None
                for env in queue:
                    if env.matches(component, local_rank, tag, src_cluster):
                        if env.visible_at <= now:
                            queue.remove(env)
                            return pickle.loads(env.payload), env.src_cluster, env.tag
                        if next_visible is None or env.visible_at < next_visible:
                            next_visible = env.visible_at
                if now > deadline:
                    raise ReproError(
                        f"grid receive timed out after {timeout}s: "
                        f"({cluster}, {component}, {local_rank}, tag={tag})"
                    )
                # post() notifies on every new arrival, so the only timed
                # event to wake for is the next simulated arrival (or the
                # caller's deadline); _WAIT_SLICE caps the gap defensively.
                wake_at = min(next_visible or (now + _WAIT_SLICE), deadline)
                self._cond.wait(timeout=max(wake_at - now, 0.0))

    def pending(self, cluster: str) -> int:
        """Messages currently queued for *cluster* (diagnostics)."""
        self._check_cluster(cluster)
        with self._cond:
            return len(self._queues[cluster])
