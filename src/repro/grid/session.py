"""Grid sessions: several clusters, one wide-area channel.

A :class:`GridSession` is the multi-site analogue of
:class:`~repro.launcher.job.MpmdJob`: each cluster is an independent MPMD
job with its own ``COMM_WORLD`` (separate :class:`~repro.mpi.world.World`
instances — genuinely disjoint MPI universes), run concurrently and wired
to one :class:`~repro.grid.channel.GridChannel`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.errors import LaunchError, ReproError
from repro.grid.channel import GridChannel
from repro.launcher.job import JobResult, MpmdJob


@dataclass
class ClusterSpec:
    """One cluster of a grid session.

    ``executables`` and ``registry`` are exactly what
    :class:`~repro.launcher.job.MpmdJob` takes; each executable callable
    additionally finds the session's channel and its cluster name on the
    job environment (``env.vars['MPH_GRID_CLUSTER']`` plus the
    ``grid_channel`` attribute patched onto *env*).
    """

    name: str
    executables: Sequence[Any]
    registry: Any = None
    job_kwargs: dict = field(default_factory=dict)


class GridSession:
    """Run several clusters concurrently, bridged by a wide-area channel."""

    def __init__(
        self,
        clusters: Sequence[ClusterSpec],
        latency: float = 0.0,
        bandwidth: Optional[float] = None,
    ):
        names = [c.name for c in clusters]
        if len(set(names)) != len(names) or not names:
            raise ReproError(f"cluster names must be non-empty and distinct: {names}")
        self.clusters = list(clusters)
        self.channel = GridChannel(names, latency=latency, bandwidth=bandwidth)
        #: Per-cluster failures of the last :meth:`run` (empty on success).
        self.failures: dict[str, BaseException] = {}

    def run(
        self, timeout: float = 120.0, allow_partial: bool = False
    ) -> dict[str, JobResult]:
        """Run every cluster to completion; returns per-cluster results.

        By default a failure on any cluster fails the whole session (after
        every cluster thread has stopped), mirroring how a co-allocated
        grid job dies together.  With ``allow_partial=True`` the session
        instead survives individual cluster failures: the results of the
        clusters that finished are returned and the failures are recorded
        in :attr:`failures` — the grid analogue of degraded ensemble mode.
        Only when *every* cluster fails is the first failure re-raised.
        """
        results: dict[str, JobResult] = {}
        errors: dict[str, BaseException] = {}

        def run_cluster(spec: ClusterSpec) -> None:
            job_kwargs = dict(spec.job_kwargs)  # keep the spec reusable
            env_vars = dict(job_kwargs.pop("env_vars", {}) or {})
            env_vars["MPH_GRID_CLUSTER"] = spec.name
            job = MpmdJob(
                [self._wrap(fn_n, spec.name) for fn_n in spec.executables],
                registry=spec.registry,
                env_vars=env_vars,
                **job_kwargs,
            )
            try:
                results[spec.name] = job.run(timeout=timeout)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors[spec.name] = exc

        threads = [
            threading.Thread(target=run_cluster, args=(spec,), name=f"cluster-{spec.name}", daemon=True)
            for spec in self.clusters
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout + 10.0)
            if t.is_alive():
                raise ReproError(f"grid session wedged: {t.name} did not finish")
        self.failures = dict(errors)
        if errors and (not allow_partial or not results):
            name, exc = sorted(errors.items())[0]
            raise exc
        return results

    def _wrap(self, item, cluster_name: str):
        """Attach the session channel to each executable's JobEnv."""
        if not (isinstance(item, tuple) and 2 <= len(item) <= 3 and callable(item[0])):
            raise LaunchError(
                f"grid cluster executables must be (callable, nprocs[, argv]); got {item!r}"
            )
        fn = item[0]
        channel = self.channel

        def wrapped(world, env):
            env.grid_channel = channel
            env.grid_cluster = cluster_name
            return fn(world, env)

        wrapped.__name__ = getattr(fn, "__name__", "program")
        return (wrapped,) + tuple(item[1:])


def run_grid(
    clusters: Sequence[ClusterSpec],
    latency: float = 0.0,
    bandwidth: Optional[float] = None,
    timeout: float = 120.0,
) -> dict[str, JobResult]:
    """One-call grid launch (see :class:`GridSession`)."""
    return GridSession(clusters, latency=latency, bandwidth=bandwidth).run(timeout=timeout)
