"""Cross-grid registration and the GridMPH handle.

``grid_setup`` extends a completed intra-cluster handshake across sites:
each cluster's world rank 0 publishes its component table on the wide-area
channel, collects every other cluster's, and broadcasts the assembled
:class:`GridDirectory` over the local world.  After that, any process can
message any component on any cluster by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.mph import MPH
from repro.errors import ReproError
from repro.grid.channel import GridChannel

#: Channel tag reserved for the directory exchange.
_DIRECTORY_TAG = -1


@dataclass(frozen=True)
class RemoteComponent:
    """What one cluster publishes about one of its components."""

    cluster: str
    name: str
    size: int


class GridDirectory:
    """The assembled cross-grid component map (identical on every process
    of every cluster)."""

    def __init__(self, components: list[RemoteComponent]):
        self.components = tuple(components)
        self._by_key: dict[tuple[str, str], RemoteComponent] = {
            (c.cluster, c.name): c for c in self.components
        }

    def lookup(self, cluster: str, component: str) -> RemoteComponent:
        """The directory entry for ``(cluster, component)``."""
        entry = self._by_key.get((cluster, component))
        if entry is None:
            known = sorted({c.cluster for c in self.components})
            raise ReproError(
                f"no component {component!r} on cluster {cluster!r}; "
                f"clusters in this grid session: {known}"
            )
        return entry

    def clusters(self) -> list[str]:
        """All participating clusters, sorted."""
        return sorted({c.cluster for c in self.components})

    def components_of(self, cluster: str) -> list[RemoteComponent]:
        """The components one cluster runs, in publication order."""
        return [c for c in self.components if c.cluster == cluster]


class GridMPH:
    """A process's handle for cross-grid messaging.

    Wraps the local :class:`~repro.core.mph.MPH` handle; intra-cluster
    operations pass straight through to it, while :meth:`send` /
    :meth:`recv` with a cluster argument travel the wide-area channel.
    """

    def __init__(self, mph: MPH, cluster: str, channel: GridChannel, directory: GridDirectory):
        self.mph = mph
        self.cluster = cluster
        self.channel = channel
        self.directory = directory

    # -- messaging -----------------------------------------------------------

    def send(
        self, obj: Any, cluster: str, component: str, local_rank: int, tag: int = 0
    ) -> None:
        """Send *obj* to ``(cluster, component, local_rank)``.

        Same-cluster destinations short-circuit to ordinary MPH messaging —
        no wide-area hop for local traffic.
        """
        entry = self.directory.lookup(cluster, component)
        if not 0 <= local_rank < entry.size:
            raise ReproError(
                f"component {component!r} on {cluster!r} has {entry.size} processes; "
                f"local rank {local_rank} out of range"
            )
        if cluster == self.cluster:
            self.mph.send(obj, component, local_rank, tag)
            return
        self.channel.post(self.cluster, cluster, component, local_rank, tag, obj)

    def recv(
        self,
        tag: Optional[int] = None,
        src_cluster: Optional[str] = None,
        timeout: float = 60.0,
    ) -> tuple[Any, str, int]:
        """Receive a cross-grid message addressed to this process; returns
        ``(obj, src_cluster, tag)``.

        Only wide-area traffic arrives here; intra-cluster messages use the
        ordinary ``mph.recv`` path.
        """
        return self.channel.collect(
            self.cluster,
            self.mph.comp_name(),
            self.mph.local_proc_id(),
            tag=tag,
            src_cluster=src_cluster,
            timeout=timeout,
        )

    # -- inquiry ----------------------------------------------------------------

    def remote_component_size(self, cluster: str, component: str) -> int:
        """Processor count of a component anywhere on the grid."""
        return self.directory.lookup(cluster, component).size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GridMPH {self.cluster}/{self.mph.comp_name()}>"


def grid_setup(mph: MPH, cluster: str, channel: GridChannel) -> GridMPH:
    """Extend a completed local handshake across the grid.

    Collective over the *local* world (every process of the cluster calls
    it); cluster world rank 0 performs the wide-area directory exchange.
    """
    world = mph.global_world
    directory: Optional[GridDirectory] = None
    if world.rank == 0:
        mine = [
            RemoteComponent(cluster=cluster, name=c.name, size=c.size)
            for c in mph.layout.components
        ]
        for other in channel.clusters:
            if other != cluster:
                channel.post(cluster, other, "__directory__", 0, _DIRECTORY_TAG, mine)
        table: list[RemoteComponent] = list(mine)
        for _ in range(len(channel.clusters) - 1):
            theirs, _, _ = channel.collect(
                cluster, "__directory__", 0, tag=_DIRECTORY_TAG
            )
            table.extend(theirs)
        # Deterministic order: by cluster name, then publication order.
        table.sort(key=lambda c: c.cluster)
        directory = GridDirectory(table)
    directory = world.bcast(directory)
    return GridMPH(mph, cluster, channel, directory)
