"""The runtime layer of the MPH service: validated job documents onto
the existing MPMD machinery.

Three responsibilities:

* **Resolution** — :meth:`JobRuntime.resolve` turns a
  :class:`~repro.service.jobdoc.JobDocument` into a :class:`ResolvedJob`:
  program callables bound from the runtime's catalog, world ranks
  assigned exactly as :class:`~repro.launcher.job.MpmdJob` would assign
  them, a :class:`~repro.mpi.world.WorldConfig` built from the runtime
  spec, and the handshake layout resolved **once** per
  :meth:`~repro.service.jobdoc.JobDocument.layout_key` through a
  :class:`LayoutCache` of
  :class:`~repro.core.session.PrecomputedLayout` objects — every rank of
  every job with the same component/processor map skips the §6 init
  exchange (registry broadcast + declaration allgather).

* **Isolated execution** — the default path runs each job on its own
  world via :class:`~repro.launcher.job.MpmdJob`: its own shm/sockdir
  namespace (the job id, through
  :func:`~repro.mpi.procbackend.rendezvous_prefix`), swept on teardown
  by the rendezvous cleanup, so no two jobs can see each other's
  segments no matter how they die.

* **Resident execution** — for process-backend jobs that opt in
  (``runtime.reuse_world``, the default), the runtime keeps a small pool
  of :class:`WorkerWorld` objects keyed by layout hash: fork +
  bootstrap + handshake are paid once, and subsequent jobs with the
  same layout are dispatched to the already-running ranks over
  multiprocessing queues.  This is the service's warm path — the jobs/s
  win ``benchmarks/bench_service.py`` measures.  A resident world is
  **poisoned** (evicted and shut down) the moment any rank fails or a
  job times out; fault-seeded, match-seeded, and reserve-pool jobs
  never use one (seeds are thread-backend-only by document validation,
  pool ranks park in ``await_assignment`` and cannot loop).

The service convention for program callables is the ``mph_run`` one —
``fn(comm, env)`` with a :class:`~repro.launcher.job.JobEnv` — plus one
rule: ``env.program`` is the **component name** from the job document,
so a cooperative program declares ``components_setup(comm, env.program,
env=env)`` and the precomputed layout matches its declaration.  A
program that declares anything else still works on a live exchange but
fails the precomputed-layout consistency check with a
:class:`~repro.errors.HandshakeError` naming the stale declaration.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.session import PrecomputedLayout
from repro.core.handshake import ComponentDecl, PoolDecl
from repro.errors import ReproError, ServiceError, TimeoutError_
from repro.launcher.job import JobEnv, JobResult, MpmdJob, POOL_PROGRAM, reserve_pool_program
from repro.launcher.rankmap import assign_ranks
from repro.mpi.world import WorldConfig
from repro.service.jobdoc import JobDocument

__all__ = [
    "JobOutcome",
    "JobRuntime",
    "LayoutCache",
    "ResolvedJob",
    "WorkerWorld",
]


# ---------------------------------------------------------------------------
# Layout cache
# ---------------------------------------------------------------------------


class LayoutCache:
    """Precomputed handshake layouts keyed by
    :meth:`JobDocument.layout_key` — resolve once, reuse for every job
    sharing the component/processor map."""

    def __init__(self) -> None:
        self._layouts: Dict[str, PrecomputedLayout] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get_or_build(
        self, key: str, build: Callable[[], PrecomputedLayout]
    ) -> Tuple[PrecomputedLayout, bool]:
        """``(layout, was_hit)`` for *key*, building (and caching) the
        layout on a miss.  The flag is this call's own hit/miss verdict
        — callers must not infer it from the shared counters, which
        concurrent resolves of other keys advance.  Thread-safe;
        concurrent misses may both build, the first stored wins."""
        with self._lock:
            pre = self._layouts.get(key)
            if pre is not None:
                self.hits += 1
                return pre, True
            self.misses += 1
        built = build()  # outside the lock: Registry parsing is pure
        with self._lock:
            return self._layouts.setdefault(key, built), False

    def __len__(self) -> int:
        return len(self._layouts)


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------


@dataclass
class ResolvedJob:
    """A job document bound to this runtime: callables, ranks, config."""

    document: JobDocument
    layout_key: str
    #: One entry per executable: ``(label, fn, nprocs, argv)``.  The
    #: reserve pool, when requested, is the final entry under
    #: :data:`~repro.launcher.job.POOL_PROGRAM`.
    executables: List[Tuple[str, Callable, int, Tuple[str, ...]]]
    #: ``assignment[i]`` — world ranks of executable *i* (MpmdJob order).
    assignment: List[List[int]]
    #: The precomputed handshake layout every rank hands to
    #: ``Session.init`` (cache hit or fresh build).
    pre: PrecomputedLayout
    config: WorldConfig
    #: Whether :attr:`pre` came out of the layout cache.
    layout_cached: bool

    @property
    def world_size(self) -> int:
        return sum(n for _, _, n, _ in self.executables)

    @property
    def component_labels(self) -> List[str]:
        return [label for label, _, _, _ in self.executables if label != POOL_PROGRAM]


@dataclass
class JobOutcome:
    """What the runtime hands back for one executed job."""

    job_id: str
    name: str
    ok: bool
    #: Whether the job ran on a resident worker world (warm path).
    warm: bool
    elapsed: float
    #: Per-component return values in component-local rank order.
    values: Dict[str, List[Any]] = field(default_factory=dict)
    #: Reserve-pool rank summaries (``{"pool": "released"}`` /
    #: ``{"pool": "assigned", ...}``), empty without a pool.
    pool: List[Any] = field(default_factory=list)
    #: Every failed rank as ``(world_rank, component, exception)`` —
    #: the :meth:`~repro.launcher.job.JobResult.failures` shape.
    failures: List[Tuple[int, str, BaseException]] = field(default_factory=list)
    #: Whole-job error when the run never produced per-rank results
    #: (bootstrap death, abort, wall-clock timeout).
    error: Optional[str] = None
    #: Per-world-rank traffic counters when the path collects them
    #: (isolated runs), else ``None`` — deliberately backend-dependent,
    #: so the stager keeps it out of the conformance-checked artifact.
    traffic: Optional[List[Any]] = None

    def failed_components(self) -> Tuple[str, ...]:
        """Names of components with at least one failed rank, sorted."""
        return tuple(sorted({program for _, program, _ in self.failures}))


def _portable(obj: Any) -> Any:
    """An object safe to send across a multiprocessing queue: the object
    itself when picklable, a :class:`ServiceError` describing it when not
    (a silently-lost frame would strand the parent at its timeout)."""
    try:
        pickle.dumps(obj)
        return obj
    except Exception:  # noqa: BLE001 - anything unpicklable degrades
        if isinstance(obj, BaseException):
            return ServiceError(
                f"rank raised unpicklable {type(obj).__name__}: {obj}"
            )
        return ServiceError(f"rank returned unpicklable {type(obj).__name__}: {obj!r}")


# ---------------------------------------------------------------------------
# Resident worker worlds (the warm path)
# ---------------------------------------------------------------------------


def _resident_loop(
    task_q, result_q, fn: Callable, program: str, exe_index: int, local_index: int, pre
) -> Callable:
    """Build one rank's resident loop (closures cross the fork)."""

    def loop(comm):
        jobs_done = 0
        while True:
            task = task_q.get()
            if task is None:
                return jobs_done
            job_id, argvs, env_vars = task
            env = JobEnv(
                program=program,
                exe_index=exe_index,
                local_index=local_index,
                argv=tuple(argvs[exe_index]),
                vars=dict(env_vars),
                registry=pre,
            )
            try:
                ok, value = True, fn(comm, env)
            except BaseException as exc:  # noqa: BLE001 - reported, poisons
                ok, value = False, exc
            # Per-job hygiene: every rank finishes (or fails) before any
            # reports, so a fast rank can't start the next job while a
            # slow sibling still owes this one messages.
            try:
                comm.barrier()
            except BaseException as exc:  # noqa: BLE001
                if ok:
                    ok, value = False, exc
            result_q.put((job_id, comm.rank, ok, value if ok else _portable(value)))
            jobs_done += 1
            if not ok:
                # This world is compromised (mismatched messages may be
                # in flight); stop serving so the parent's poison/evict
                # is symmetric with our exit.
                return jobs_done

    return loop


class WorkerWorld:
    """A resident process-backend world serving jobs that share one
    layout key.

    Fork + socket bootstrap + MPH handshake are paid once in
    ``__init__``; each :meth:`submit` costs one task frame per rank, the
    job's own work, a barrier, and one result frame per rank.
    :func:`~repro.mpi.procbackend.run_procs` runs in a background thread
    with the world's *ttl* as its wall-clock budget — the hard backstop
    that reaps the children even if a job wedges the ranks beyond the
    reach of the shutdown sentinels.
    """

    #: Per-process world generation counter: successive worlds for the
    #: same layout key get distinct namespaces, so a replacement can
    #: bootstrap while its dead predecessor's close (and rendezvous
    #: sweep) is still in flight without either touching the other's
    #: segments.
    _generation = itertools.count()

    def __init__(self, resolved: ResolvedJob, *, ttl: float = 600.0):
        if any(label == POOL_PROGRAM for label, _, _, _ in resolved.executables):
            raise ServiceError("reserve-pool jobs cannot run on a resident world")
        self.layout_key = resolved.layout_key
        self.size = resolved.world_size
        self.namespace = f"w{resolved.layout_key[:12]}g{next(self._generation)}"
        self.poisoned = False
        self.jobs_run = 0
        self._closed = False
        self._lock = threading.Lock()
        self._thread_error: Optional[BaseException] = None

        ctx = multiprocessing.get_context("fork")
        self._task_queues = [ctx.Queue() for _ in range(self.size)]
        self._result_queue = ctx.Queue()

        rank_fns: List[Callable] = [None] * self.size  # type: ignore[list-item]
        labels: List[str] = [""] * self.size
        for exe_index, ranks in enumerate(resolved.assignment):
            label, fn, _, _ = resolved.executables[exe_index]
            for local_index, world_rank in enumerate(ranks):
                labels[world_rank] = f"{label}.{local_index}"
                rank_fns[world_rank] = _resident_loop(
                    self._task_queues[world_rank],
                    self._result_queue,
                    fn,
                    label,
                    exe_index,
                    local_index,
                    resolved.pre,
                )

        def serve() -> None:
            from repro.mpi.procbackend import run_procs

            try:
                run_procs(
                    self.size,
                    rank_fns,
                    config=resolved.config,
                    timeout=ttl,
                    labels=labels,
                    namespace=self.namespace,
                )
            except BaseException as exc:  # noqa: BLE001 - surfaced via submit
                self._thread_error = exc
                self.poisoned = True

        self._thread = threading.Thread(
            target=serve, daemon=True, name=f"worker-world-{self.namespace}"
        )
        self._thread.start()

    def submit(
        self,
        job_id: str,
        argvs: Sequence[Sequence[str]],
        env_vars: Mapping[str, str],
        timeout: float,
    ) -> Dict[int, Tuple[bool, Any]]:
        """Dispatch one job to every resident rank; per-rank ``(ok,
        value)`` keyed by world rank.  Serialized — a resident world runs
        one job at a time.  Any failure or timeout poisons the world."""
        with self._lock:
            if self.poisoned or self._closed:
                raise ServiceError(
                    f"worker world {self.namespace} is "
                    + ("closed" if self._closed else "poisoned")
                )
            task = (job_id, [tuple(a) for a in argvs], dict(env_vars))
            for q in self._task_queues:
                q.put(task)
            deadline = time.monotonic() + timeout
            got: Dict[int, Tuple[bool, Any]] = {}
            while len(got) < self.size:
                if self._thread_error is not None:
                    self.poisoned = True
                    raise ServiceError(
                        f"resident world {self.namespace} died: {self._thread_error}"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.poisoned = True
                    raise TimeoutError_(
                        f"job {job_id} exceeded its {timeout}s budget on the "
                        f"resident world (world poisoned)"
                    )
                try:
                    jid, rank, ok, value = self._result_queue.get(
                        timeout=min(0.2, remaining)
                    )
                except queue.Empty:
                    continue
                if jid != job_id:
                    continue  # stale frame from a poisoned predecessor
                got[rank] = (ok, value)
            if any(not ok for ok, _ in got.values()):
                self.poisoned = True
            self.jobs_run += 1
            return got

    def close(self, timeout: float = 10.0) -> None:
        """Send every rank its shutdown sentinel and join the serve
        thread.  Idempotent; a wedged world is abandoned to its ttl."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for q in self._task_queues:
            try:
                q.put(None)
            except (ValueError, OSError):  # pragma: no cover - defensive
                pass
        self._thread.join(timeout)
        for q in self._task_queues + [self._result_queue]:
            q.close()
            q.cancel_join_thread()


# ---------------------------------------------------------------------------
# The runtime
# ---------------------------------------------------------------------------


class JobRuntime:
    """Executes validated job documents against a program catalog.

    Parameters
    ----------
    programs :
        The service's program catalog — job documents bind their
        components' ``program`` keys against it (an unknown key is a
        :class:`ServiceError` at resolve time, before anything forks).
    max_resident :
        How many resident worker worlds to keep (LRU-evicted beyond
        this; 0 disables the warm path entirely).
    resident_ttl :
        Wall-clock budget of each resident world's ``run_procs``.
    """

    def __init__(
        self,
        programs: Mapping[str, Callable],
        *,
        max_resident: int = 2,
        resident_ttl: float = 600.0,
    ):
        self.programs = dict(programs)
        self.layouts = LayoutCache()
        self.max_resident = max_resident
        self.resident_ttl = resident_ttl
        self._resident: "OrderedDict[str, WorkerWorld]" = OrderedDict()
        self._resident_lock = threading.Lock()
        self._seq = itertools.count()
        self.stats = {"jobs": 0, "warm": 0, "cold": 0, "worlds_built": 0, "worlds_poisoned": 0}

    # -- resolution --------------------------------------------------------

    def resolve(self, document: JobDocument) -> ResolvedJob:
        """Bind *document* to callables, ranks, config, and a (possibly
        cached) precomputed handshake layout."""
        executables: List[Tuple[str, Callable, int, Tuple[str, ...]]] = []
        for comp in document.components:
            fn = self.programs.get(comp.program)
            if fn is None:
                raise ServiceError(
                    f"job {document.name!r}: component {comp.name!r} wants program "
                    f"{comp.program!r}, which is not in the catalog "
                    f"(available: {sorted(self.programs)})"
                )
            executables.append((comp.name, fn, comp.nprocs, comp.argv))
        pool = document.runtime.pool
        if pool:
            executables.append((POOL_PROGRAM, reserve_pool_program, pool, ()))

        sizes = [n for _, _, n, _ in executables]
        assignment = assign_ranks(sizes, document.runtime.rank_policy)

        key = document.layout_key()

        def build() -> PrecomputedLayout:
            decls: List[Any] = [None] * sum(sizes)
            for exe_index, ranks in enumerate(assignment):
                label = executables[exe_index][0]
                decl = (
                    PoolDecl()
                    if label == POOL_PROGRAM
                    else ComponentDecl((label,))
                )
                for world_rank in ranks:
                    decls[world_rank] = decl
            return PrecomputedLayout.build(document.registry_text(), decls)

        pre, layout_cached = self.layouts.get_or_build(key, build)

        rt = document.runtime
        config_kwargs: Dict[str, Any] = {
            "backend": rt.backend,
            "transport": rt.transport,
            "nodes": rt.nodes,
        }
        if document.seeds.fault is not None:
            from repro.mpi.faults import FaultSchedule

            config_kwargs["fault_schedule"] = FaultSchedule.from_spec(document.seeds.fault)
        if document.seeds.match is not None:
            from repro.mpi.sched import MatchSchedule

            config_kwargs["match_schedule"] = MatchSchedule(seed=document.seeds.match)
        config = WorldConfig(**config_kwargs)

        return ResolvedJob(
            document=document,
            layout_key=key,
            executables=executables,
            assignment=assignment,
            pre=pre,
            config=config,
            layout_cached=layout_cached,
        )

    # -- execution ---------------------------------------------------------

    def execute(self, document: JobDocument, job_id: Optional[str] = None) -> JobOutcome:
        """Run one job to completion and return its outcome.

        Never raises for a *job* failure — crashed ranks, aborts, and
        timeouts all come back as a failed :class:`JobOutcome` — only
        for *caller* errors (unknown program, closed runtime)."""
        return self.execute_resolved(self.resolve(document), job_id)

    def execute_resolved(
        self,
        resolved: ResolvedJob,
        job_id: Optional[str] = None,
        *,
        log_dir: Optional[str] = None,
    ) -> JobOutcome:
        """Run an already-:meth:`resolve`-d job (the orchestrator's
        two-step path, so resolution errors surface in its ``staging``
        state instead of mid-run).  *log_dir* receives per-process log
        files when the document asked for them."""
        if job_id is None:
            job_id = f"job{next(self._seq):05d}"
        self.stats["jobs"] += 1

        if self._warm_eligible(resolved):
            outcome = self._execute_resident(resolved, job_id)
            if outcome is not None:
                return outcome
        self.stats["cold"] += 1
        return self._execute_isolated(resolved, job_id, log_dir=log_dir)

    def _warm_eligible(self, resolved: ResolvedJob) -> bool:
        rt = resolved.document.runtime
        return (
            self.max_resident > 0
            and rt.backend == "process"
            and rt.reuse_world
            and rt.pool == 0
            # per-job artifacts (process log files) need per-job children
            and "logs" not in resolved.document.output.save
            # traffic counters are only collected by isolated runs
            and "traffic" not in resolved.document.output.save
            # seeds are thread-only by document validation, so no check
        )

    def _execute_resident(self, resolved: ResolvedJob, job_id: str) -> Optional[JobOutcome]:
        """Run on (or build) the resident world for this layout key.
        Returns ``None`` to fall back to the isolated path when the
        cached world turned out to be dead on arrival."""
        fresh = False
        evicted: List[WorkerWorld] = []
        with self._resident_lock:
            world = self._resident.get(resolved.layout_key)
            if world is not None and (world.poisoned or not world._thread.is_alive()):
                evicted.append(self._resident.pop(resolved.layout_key))
                world = None
            if world is None:
                world = WorkerWorld(resolved, ttl=self.resident_ttl)
                self._resident[resolved.layout_key] = world
                self.stats["worlds_built"] += 1
                fresh = True
                while len(self._resident) > self.max_resident:
                    oldest = next(iter(self._resident))
                    evicted.append(self._resident.pop(oldest))
            else:
                self._resident.move_to_end(resolved.layout_key)
        # close() can block for a long time (an evictee mid-job holds its
        # submit lock for up to the job's timeout, then the serve thread
        # join) — never hold the pool lock across it, or every other
        # dispatch/evict/close stalls behind this one.
        for old in evicted:
            old.close()

        argvs = [argv for _, _, _, argv in resolved.executables]
        start = time.perf_counter()
        try:
            per_rank = world.submit(
                job_id, argvs, {}, timeout=resolved.document.runtime.timeout
            )
        except ServiceError:
            # Dead/stale world: evict and (once) retry cold.
            self._evict(resolved.layout_key, world)
            return None
        except TimeoutError_ as exc:
            self._evict(resolved.layout_key, world)
            self.stats["cold" if fresh else "warm"] += 1
            return JobOutcome(
                job_id=job_id,
                name=resolved.document.name,
                ok=False,
                warm=not fresh,
                elapsed=time.perf_counter() - start,
                error=str(exc),
            )
        elapsed = time.perf_counter() - start

        values: Dict[str, List[Any]] = {}
        failures: List[Tuple[int, str, BaseException]] = []
        for exe_index, ranks in enumerate(resolved.assignment):
            label = resolved.executables[exe_index][0]
            values[label] = []
            for rank in ranks:
                ok, value = per_rank[rank]
                if ok:
                    values[label].append(value)
                else:
                    values[label].append(None)
                    failures.append((rank, label, value))
        if failures:
            self._evict(resolved.layout_key, world)
            self.stats["worlds_poisoned"] += 1
        # Match the per-outcome warm flag: a freshly built resident world
        # paid the cold cost even though it will serve later jobs warm.
        self.stats["cold" if fresh else "warm"] += 1
        return JobOutcome(
            job_id=job_id,
            name=resolved.document.name,
            ok=not failures,
            warm=not fresh,
            elapsed=elapsed,
            values=values,
            failures=sorted(failures, key=lambda f: f[0]),
        )

    def _execute_isolated(
        self, resolved: ResolvedJob, job_id: str, *, log_dir: Optional[str] = None
    ) -> JobOutcome:
        """The default path: a fresh world per job, namespaced segments,
        swept on teardown by the rendezvous cleanup."""
        doc = resolved.document
        if "logs" not in doc.output.save:
            log_dir = None
        from repro.launcher.cmdfile import ExecutableSpec

        # Specs named after components (not Python functions), so
        # JobResult.failures() and process-backend labels name the
        # component a client would recognize from its document.
        job = MpmdJob(
            [
                ExecutableSpec(label, nprocs, argv)
                for label, _, nprocs, argv in resolved.executables
            ],
            programs={label: fn for label, fn, _, _ in resolved.executables},
            rank_policy=doc.runtime.rank_policy,
            config=resolved.config,
            registry=resolved.pre,
            namespace=job_id,
            log_dir=log_dir,
        )
        start = time.perf_counter()
        try:
            result = job.run(timeout=doc.runtime.timeout)
        except Exception as exc:  # noqa: BLE001 - _raise_root_cause re-raises
            # the *user program's* exception type when the whole job
            # aborted, so anything can land here; a job failure must
            # come back as a failed outcome, never unwind the service.
            return JobOutcome(
                job_id=job_id,
                name=doc.name,
                ok=False,
                warm=False,
                elapsed=time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}",
            )
        elapsed = time.perf_counter() - start

        values: Dict[str, List[Any]] = {}
        pool_values: List[Any] = []
        for exe_index, (label, _, _, _) in enumerate(resolved.executables):
            vals = [result.procs[r].value for r in result.assignment[exe_index]]
            if label == POOL_PROGRAM:
                pool_values = vals
            else:
                values[label] = vals
        failures = result.failures()
        return JobOutcome(
            job_id=job_id,
            name=doc.name,
            ok=not failures,
            warm=False,
            elapsed=elapsed,
            values=values,
            pool=pool_values,
            failures=failures,
            traffic=[p.traffic for p in result.procs],
        )

    # -- lifecycle ---------------------------------------------------------

    def _evict(self, key: str, world: Optional[WorkerWorld] = None) -> None:
        """Drop a world from the resident pool and close it.

        With *world* given, only that instance leaves the pool — if a
        concurrent dispatch already replaced the slot, the replacement
        stays and the handed-in instance is closed anyway (close is
        idempotent).  The close itself always runs *outside* the pool
        lock: it can block for the length of an in-flight job plus the
        serve-thread join, and nothing else may stall behind that.
        """
        with self._resident_lock:
            current = self._resident.get(key)
            if world is None or current is world:
                self._resident.pop(key, None)
            victim = world if world is not None else current
        if victim is not None:
            victim.close()

    def close(self) -> None:
        """Shut down every resident world.  The runtime stays usable for
        isolated jobs afterwards."""
        with self._resident_lock:
            victims = list(self._resident.values())
            self._resident.clear()
        for world in victims:
            world.close()

    def __enter__(self) -> "JobRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
