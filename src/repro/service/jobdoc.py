"""The canonical JSON job document: what a client submits to the MPH
service.

The paper treats MPH as a library each executable links against; the
service inverts that, following the separation the process-management
component papers (Butler, Gropp & Lusk) draw between *describing* a job
and *executing* it.  A :class:`JobDocument` is the description half — a
plain JSON document naming the job's components, processor map, entry
arguments, backend/transport selection, fault and match-schedule seeds,
and output spec.  The runtime half lives in
:mod:`repro.service.runtime`.

Design rules, enforced here:

* **Strict validation with typed errors.**  Every malformed input —
  wrong type, missing field, unknown key, out-of-range value, an
  inconsistent combination — raises :class:`~repro.errors.JobSpecError`
  naming the offending document path (``components[1].nprocs``).  A raw
  ``KeyError``/``TypeError`` escaping validation is a bug, and the fuzz
  suite (``tests/service/test_jobdoc.py``) hunts for exactly that.
* **Stable round-trip.**  ``from_spec(to_spec(doc))`` reproduces the
  document exactly, and :meth:`JobDocument.canonical_json` is
  byte-stable (sorted keys, defaults materialized) — the same
  serialization discipline :class:`~repro.mpi.faults.FaultSchedule`
  established for replayable fault seeds.
* **Layout hash.**  :meth:`JobDocument.layout_key` hashes only the
  portion of the document that determines the handshake layout
  (components, processor map, backend selection) — two documents that
  differ only in entry arguments, seeds, or output spec share a key, and
  the runtime's layout cache and resident worker worlds key on it.

Example document::

    {
      "mph_job": 1,
      "name": "coupled-demo",
      "components": [
        {"name": "atmosphere", "nprocs": 2, "program": "atm",
         "argv": ["--scenario", "a2"]},
        {"name": "ocean", "nprocs": 2, "program": "ocn"}
      ],
      "runtime": {"backend": "process", "transport": "auto"},
      "output": {"save": ["values"]}
    }
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Tuple

from repro.errors import JobSpecError, ReproError

#: The one schema version this service speaks.
SCHEMA_VERSION = 1

_BACKENDS = ("thread", "process")
_TRANSPORTS = ("auto", "unix", "tcp", "shm")
_RANK_POLICIES = ("block", "round_robin")
_SAVE_KINDS = ("values", "document", "traffic", "logs")
_FORMATS = ("json", "pickle")

_TOP_KEYS = {"mph_job", "name", "components", "registry", "runtime", "seeds", "output"}
_COMPONENT_KEYS = {"name", "program", "nprocs", "argv"}
_RUNTIME_KEYS = {
    "backend",
    "transport",
    "nodes",
    "rank_policy",
    "pool",
    "reuse_world",
    "timeout",
}
_SEED_KEYS = {"fault", "match"}
_OUTPUT_KEYS = {"save", "format"}


# ---------------------------------------------------------------------------
# Typed extraction helpers: every failure is a JobSpecError naming the path
# ---------------------------------------------------------------------------


def _require_mapping(value: Any, path: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise JobSpecError(
            f"expected an object, got {type(value).__name__}", path=path
        )
    return value


def _reject_unknown(d: Mapping, allowed: set, path: str) -> None:
    for key in d:
        if not isinstance(key, str):
            raise JobSpecError(f"non-string key {key!r}", path=path)
        if key not in allowed:
            raise JobSpecError(
                f"unknown key {key!r} (allowed: {sorted(allowed)})", path=path
            )


def _get_str(d: Mapping, key: str, path: str, default: Optional[str] = None) -> str:
    if key not in d:
        if default is not None:
            return default
        raise JobSpecError(f"missing required key {key!r}", path=path)
    value = d[key]
    if not isinstance(value, str) or not value:
        raise JobSpecError(
            f"expected a non-empty string, got {value!r}", path=f"{path}.{key}"
        )
    return value


def _get_choice(d: Mapping, key: str, choices: Sequence[str], path: str, default: str) -> str:
    value = d.get(key, default)
    if value not in choices:
        raise JobSpecError(
            f"expected one of {list(choices)}, got {value!r}", path=f"{path}.{key}"
        )
    return value


def _get_int(
    d: Mapping, key: str, path: str, *, default: Optional[int] = None, minimum: int = 0
) -> int:
    if key not in d:
        if default is not None:
            return default
        raise JobSpecError(f"missing required key {key!r}", path=path)
    value = d[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise JobSpecError(
            f"expected an integer, got {value!r}", path=f"{path}.{key}"
        )
    if value < minimum:
        raise JobSpecError(
            f"expected an integer >= {minimum}, got {value}", path=f"{path}.{key}"
        )
    return value


def _get_bool(d: Mapping, key: str, path: str, default: bool) -> bool:
    value = d.get(key, default)
    if not isinstance(value, bool):
        raise JobSpecError(
            f"expected a boolean, got {value!r}", path=f"{path}.{key}"
        )
    return value


def _get_float(d: Mapping, key: str, path: str, default: float) -> float:
    value = d.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise JobSpecError(
            f"expected a number, got {value!r}", path=f"{path}.{key}"
        )
    if value <= 0:
        raise JobSpecError(
            f"expected a positive number, got {value}", path=f"{path}.{key}"
        )
    return float(value)


def _get_str_list(d: Mapping, key: str, path: str) -> Tuple[str, ...]:
    value = d.get(key, ())
    if isinstance(value, str) or not isinstance(value, Sequence):
        raise JobSpecError(
            f"expected a list of strings, got {value!r}", path=f"{path}.{key}"
        )
    out = []
    for i, item in enumerate(value):
        if not isinstance(item, str):
            raise JobSpecError(
                f"expected a string, got {item!r}", path=f"{path}.{key}[{i}]"
            )
        out.append(item)
    return tuple(out)


# ---------------------------------------------------------------------------
# Document pieces
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ComponentSpec:
    """One component entry: a single-component executable of the job."""

    #: MPH component name (the registration-file name-tag).
    name: str
    #: Number of MPI processes the component runs on.
    nprocs: int
    #: Program key resolved against the service's program catalog
    #: (defaults to the component name).
    program: str
    #: Entry-point command-line arguments.
    argv: Tuple[str, ...] = ()

    def to_spec(self) -> dict:
        """Plain-data form of this component entry."""
        return {
            "name": self.name,
            "program": self.program,
            "nprocs": self.nprocs,
            "argv": list(self.argv),
        }

    @classmethod
    def from_spec(cls, spec: Any, path: str) -> "ComponentSpec":
        d = _require_mapping(spec, path)
        _reject_unknown(d, _COMPONENT_KEYS, path)
        name = _get_str(d, "name", path)
        from repro.core.names import validate_name

        try:
            validate_name(name)
        except ReproError as exc:
            raise JobSpecError(str(exc), path=f"{path}.name") from None
        return cls(
            name=name,
            nprocs=_get_int(d, "nprocs", path, minimum=1),
            program=_get_str(d, "program", path, default=name),
            argv=_get_str_list(d, "argv", path),
        )


@dataclass(frozen=True)
class RuntimeSpec:
    """Backend/transport selection and processor-map policy."""

    backend: str = "thread"
    transport: str = "auto"
    nodes: Optional[int] = None
    rank_policy: str = "block"
    #: Reserve-pool ranks launched alongside the components (they park in
    #: ``Session.await_assignment``; see ``mphrun --pool N``).
    pool: int = 0
    #: Allow the runtime to run this job on a cached resident worker
    #: world sharing the document's layout key (process backend).
    reuse_world: bool = True
    #: Per-job wall-clock budget in seconds.
    timeout: float = 60.0

    def to_spec(self) -> dict:
        """Plain-data form with every default materialized."""
        return {
            "backend": self.backend,
            "transport": self.transport,
            "nodes": self.nodes,
            "rank_policy": self.rank_policy,
            "pool": self.pool,
            "reuse_world": self.reuse_world,
            "timeout": self.timeout,
        }

    @classmethod
    def from_spec(cls, spec: Any, path: str) -> "RuntimeSpec":
        d = _require_mapping(spec, path)
        _reject_unknown(d, _RUNTIME_KEYS, path)
        nodes = d.get("nodes")
        if nodes is not None and (
            isinstance(nodes, bool) or not isinstance(nodes, int) or nodes < 1
        ):
            raise JobSpecError(
                f"expected null or an integer >= 1, got {nodes!r}", path=f"{path}.nodes"
            )
        return cls(
            backend=_get_choice(d, "backend", _BACKENDS, path, "thread"),
            transport=_get_choice(d, "transport", _TRANSPORTS, path, "auto"),
            nodes=nodes,
            rank_policy=_get_choice(d, "rank_policy", _RANK_POLICIES, path, "block"),
            pool=_get_int(d, "pool", path, default=0, minimum=0),
            reuse_world=_get_bool(d, "reuse_world", path, True),
            timeout=_get_float(d, "timeout", path, 60.0),
        )


@dataclass(frozen=True)
class SeedSpec:
    """Fault and match-schedule seeds — the deterministic chaos inputs.

    ``fault`` is a full :meth:`repro.mpi.faults.FaultSchedule.to_spec`
    dict (so a failing chaos seed replays exactly); ``match`` is a
    :class:`~repro.mpi.sched.MatchSchedule` seed.  Both require the
    thread backend — the substrate's injection hooks live in the shared
    world — and validation enforces that here rather than letting the
    process backend reject the config at launch time.
    """

    fault: Optional[dict] = None
    match: Optional[int] = None

    def to_spec(self) -> dict:
        """Plain-data form (the fault spec in its canonical shape)."""
        return {
            "fault": dict(self.fault) if self.fault is not None else None,
            "match": self.match,
        }

    @classmethod
    def from_spec(cls, spec: Any, path: str) -> "SeedSpec":
        d = _require_mapping(spec, path)
        _reject_unknown(d, _SEED_KEYS, path)
        fault = d.get("fault")
        if fault is not None:
            fault_map = _require_mapping(fault, f"{path}.fault")
            from repro.mpi.faults import FaultSchedule

            try:
                rebuilt = FaultSchedule.from_spec(dict(fault_map))
            except Exception as exc:  # noqa: BLE001 - any malformed spec
                # detail (wrong-typed sub-field, bad rank, ...) must come
                # back typed, whatever FaultSchedule raises internally.
                raise JobSpecError(
                    f"not a valid FaultSchedule spec: {exc}", path=f"{path}.fault"
                ) from None
            fault = rebuilt.to_spec()
        match = d.get("match")
        if match is not None and (isinstance(match, bool) or not isinstance(match, int)):
            raise JobSpecError(
                f"expected null or an integer seed, got {match!r}", path=f"{path}.match"
            )
        return cls(fault=fault, match=match)


@dataclass(frozen=True)
class OutputSpec:
    """What the stager persists for a finished job."""

    #: Artifacts to stage: ``values`` (per-component return values),
    #: ``document`` (the canonical submitted document), ``traffic``
    #: (per-rank byte/message counters; backend-dependent, so excluded
    #: from cross-backend conformance), ``logs`` (per-process stdout,
    #: process backend only).
    save: Tuple[str, ...] = ("values",)
    #: ``json`` stages canonical JSON; ``pickle`` additionally keeps a
    #: pickle of the raw values for non-JSON-serializable results.
    format: str = "json"

    def to_spec(self) -> dict:
        """Plain-data form of the output selection."""
        return {"save": list(self.save), "format": self.format}

    @classmethod
    def from_spec(cls, spec: Any, path: str) -> "OutputSpec":
        d = _require_mapping(spec, path)
        _reject_unknown(d, _OUTPUT_KEYS, path)
        save = d.get("save", ["values"])
        if isinstance(save, str) or not isinstance(save, Sequence):
            raise JobSpecError(
                f"expected a list of artifact kinds, got {save!r}", path=f"{path}.save"
            )
        seen = []
        for i, kind in enumerate(save):
            if kind not in _SAVE_KINDS:
                raise JobSpecError(
                    f"expected one of {list(_SAVE_KINDS)}, got {kind!r}",
                    path=f"{path}.save[{i}]",
                )
            if kind in seen:
                raise JobSpecError(
                    f"duplicate artifact kind {kind!r}", path=f"{path}.save[{i}]"
                )
            seen.append(kind)
        return cls(
            save=tuple(seen),
            format=_get_choice(d, "format", _FORMATS, path, "json"),
        )


# ---------------------------------------------------------------------------
# The document
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobDocument:
    """A validated MPH service job document."""

    name: str
    components: Tuple[ComponentSpec, ...]
    registry: Optional[str] = None
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)
    seeds: SeedSpec = field(default_factory=SeedSpec)
    output: OutputSpec = field(default_factory=OutputSpec)

    # -- derived views -----------------------------------------------------

    @property
    def world_size(self) -> int:
        """Total MPI processes: component ranks plus reserve-pool ranks."""
        return sum(c.nprocs for c in self.components) + self.runtime.pool

    def registry_text(self) -> str:
        """The registration file for this job: the explicit ``registry``
        field, or one synthesized from the component list (one
        single-component entry per component, §3's registration table)."""
        if self.registry is not None:
            return self.registry
        lines = ["BEGIN"]
        lines += [c.name for c in self.components]
        lines.append("END")
        return "\n".join(lines) + "\n"

    # -- serialization -----------------------------------------------------

    def to_spec(self) -> dict:
        """A plain-data description with every default materialized —
        ``from_spec(to_spec(doc))`` reproduces the document exactly."""
        return {
            "mph_job": SCHEMA_VERSION,
            "name": self.name,
            "components": [c.to_spec() for c in self.components],
            "registry": self.registry,
            "runtime": self.runtime.to_spec(),
            "seeds": self.seeds.to_spec(),
            "output": self.output.to_spec(),
        }

    @classmethod
    def from_spec(cls, spec: Any) -> "JobDocument":
        """Validate *spec* and build the document.

        Raises :class:`~repro.errors.JobSpecError` naming the offending
        path for **every** malformed input — never a raw ``KeyError`` or
        ``TypeError``.
        """
        d = _require_mapping(spec, "$")
        _reject_unknown(d, _TOP_KEYS, "$")
        version = d.get("mph_job", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise JobSpecError(
                f"unsupported schema version {version!r} (this service speaks "
                f"{SCHEMA_VERSION})",
                path="$.mph_job",
            )
        name = _get_str(d, "name", "$", default="job")
        components_raw = d.get("components")
        if isinstance(components_raw, str) or not isinstance(components_raw, Sequence):
            raise JobSpecError(
                f"expected a list of components, got {components_raw!r}",
                path="$.components",
            )
        if not components_raw:
            raise JobSpecError("a job needs at least one component", path="$.components")
        components = tuple(
            ComponentSpec.from_spec(c, f"$.components[{i}]")
            for i, c in enumerate(components_raw)
        )
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            dup = next(n for n in names if names.count(n) > 1)
            raise JobSpecError(
                f"duplicate component name {dup!r}", path="$.components"
            )

        registry = d.get("registry")
        if registry is not None and (not isinstance(registry, str) or not registry.strip()):
            raise JobSpecError(
                f"expected null or registration-file text, got {registry!r}",
                path="$.registry",
            )

        doc = cls(
            name=name,
            components=components,
            registry=registry,
            runtime=RuntimeSpec.from_spec(d.get("runtime", {}), "$.runtime"),
            seeds=SeedSpec.from_spec(d.get("seeds", {}), "$.seeds"),
            output=OutputSpec.from_spec(d.get("output", {}), "$.output"),
        )

        # Cross-field consistency: the substrate's injection hooks live in
        # the shared thread-backend world (procbackend refuses them at
        # launch); reject the combination here, at the document level.
        if doc.runtime.backend == "process":
            if doc.seeds.fault is not None:
                raise JobSpecError(
                    "fault injection requires the thread backend",
                    path="$.seeds.fault",
                )
            if doc.seeds.match is not None:
                raise JobSpecError(
                    "match-schedule exploration requires the thread backend",
                    path="$.seeds.match",
                )
        if doc.runtime.backend == "thread" and doc.runtime.transport != "auto":
            raise JobSpecError(
                f"transport {doc.runtime.transport!r} selects a process-backend "
                "socket family; the thread backend only accepts 'auto'",
                path="$.runtime.transport",
            )
        if "logs" in doc.output.save and doc.runtime.backend != "process":
            raise JobSpecError(
                "per-process logs exist only on the process backend",
                path="$.output.save",
            )

        # The registration file, explicit or synthesized, must actually
        # parse and cover every declared component — catching it here
        # turns a mid-handshake abort into a typed rejection.
        from repro.core.registry import Registry

        # from_text, never load: load() treats a newline-free string as a
        # *file path*, and a service document must not reach the filesystem.
        try:
            parsed = Registry.from_text(doc.registry_text())
        except Exception as exc:  # noqa: BLE001 - typed rejection, always
            raise JobSpecError(
                f"registration text does not parse: {exc}", path="$.registry"
            ) from None
        known = set(parsed.component_names)
        for i, comp in enumerate(components):
            if comp.name not in known:
                raise JobSpecError(
                    f"component {comp.name!r} is not in the registration file "
                    f"(registered: {sorted(known)})",
                    path=f"$.components[{i}].name",
                )
        return doc

    @classmethod
    def from_json(cls, text: str) -> "JobDocument":
        """Parse JSON text and validate it."""
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise JobSpecError(f"not valid JSON: {exc}", path="$") from None
        return cls.from_spec(spec)

    def canonical_json(self) -> str:
        """Byte-stable serialization: sorted keys, no whitespace drift.
        Two equal documents always produce identical bytes."""
        return json.dumps(self.to_spec(), sort_keys=True, separators=(",", ":"))

    # -- the layout hash ---------------------------------------------------

    def layout_portion(self) -> dict:
        """The sub-document that determines the handshake layout: the
        components and processor map, the registration text, and the
        backend/transport/topology selection.  Entry arguments, seeds,
        and the output spec are deliberately excluded — they vary per job
        without changing the layout."""
        return {
            "components": [
                {"name": c.name, "program": c.program, "nprocs": c.nprocs}
                for c in self.components
            ],
            "registry": self.registry_text(),
            "runtime": {
                "backend": self.runtime.backend,
                "transport": self.runtime.transport,
                "nodes": self.runtime.nodes,
                "rank_policy": self.runtime.rank_policy,
                "pool": self.runtime.pool,
            },
        }

    def layout_key(self) -> str:
        """SHA-256 over the canonical JSON of :meth:`layout_portion` —
        the key under which the runtime caches resolved handshake
        layouts and resident worker worlds."""
        blob = json.dumps(self.layout_portion(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()
