"""Result staging: a finished job's outcome persisted to an output
directory, deterministically.

One directory per job id, containing whatever the document's
:class:`~repro.service.jobdoc.OutputSpec` asked for:

* ``result.json`` — always.  The canonical outcome artifact: job name,
  success flag, per-rank failures, and (with ``"values"`` in the save
  list) the per-component return values in component-local rank order.
  Serialized with sorted keys and fixed separators so **the bytes are a
  pure function of the outcome** — the cross-backend conformance suite
  asserts the same document stages bitwise-identical ``result.json`` on
  the thread backend, the process backend, and process+shm.  Anything
  backend-dependent (traffic counters, timings, the warm/cold flag) is
  deliberately kept out of this file.
* ``document.json`` — the submitted document's canonical JSON
  (``"document"`` in the save list): the replay artifact.
* ``traffic.json`` — per-rank wire counters when the run collected them
  (``"traffic"``; isolated runs only).
* ``result.pkl`` — a pickle of the raw values (``format: "pickle"``),
  for results that don't survive the JSON round-trip.
* ``meta.json`` — always.  The backend-dependent sidecar: elapsed time,
  warm flag, error text.  Excluded from conformance on purpose.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.errors import ServiceError
from repro.service.jobdoc import JobDocument
from repro.service.runtime import JobOutcome

__all__ = ["ResultStager"]


def _canonical(payload) -> bytes:
    """Sorted keys, fixed separators, ``repr`` fallback for stragglers —
    equal payloads always serialize to equal bytes."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr) + "\n"
    ).encode()


class ResultStager:
    """Persists job outcomes under ``output_dir/<job_id>/``."""

    def __init__(self, output_dir: Optional[Union[str, Path]] = None):
        if output_dir is None:
            output_dir = tempfile.mkdtemp(prefix="mph-service-out-")
        self.output_dir = Path(output_dir)
        self.output_dir.mkdir(parents=True, exist_ok=True)

    def job_dir(self, job_id: str) -> Path:
        """Where one job's artifacts live (may not exist yet)."""
        return self.output_dir / job_id

    def stage(self, outcome: JobOutcome, document: JobDocument) -> Path:
        """Write the job's artifacts; returns the job directory.

        Staging is atomic per file (write to a temp name, ``rename``) so
        a reader never sees a torn artifact, and re-staging a job id is
        an error — job ids are unique per orchestrator lifetime and a
        silent overwrite would mask an id collision.  The collision
        guard is ``result.json`` (the one artifact every staging
        writes), not the directory itself: the job directory may
        legitimately pre-exist, because a ``"logs"`` job streams
        per-process log files into ``<job_id>/logs/`` *while running*,
        before its outcome ever reaches the stager.
        """
        target = self.job_dir(outcome.job_id)
        if (target / "result.json").exists():
            raise ServiceError(
                f"job {outcome.job_id!r} already staged under {target}; job ids "
                "must be unique per service lifetime"
            )
        target.mkdir(parents=True, exist_ok=True)

        result: dict = {
            "name": outcome.name,
            "ok": outcome.ok,
            "failures": [
                [rank, component, f"{type(exc).__name__}: {exc}"]
                for rank, component, exc in outcome.failures
            ],
        }
        if outcome.error is not None:
            result["error"] = outcome.error
        if "values" in document.output.save:
            result["components"] = outcome.values
            if outcome.pool:
                result["pool"] = outcome.pool
        self._write(target, "result.json", _canonical(result))

        if "document" in document.output.save:
            self._write(
                target, "document.json", (document.canonical_json() + "\n").encode()
            )
        if "traffic" in document.output.save and outcome.traffic is not None:
            self._write(target, "traffic.json", _canonical(outcome.traffic))
        if document.output.format == "pickle":
            self._write(
                target,
                "result.pkl",
                pickle.dumps({"components": outcome.values, "pool": outcome.pool}),
            )

        meta = {
            "job_id": outcome.job_id,
            "warm": outcome.warm,
            "elapsed": outcome.elapsed,
            "error": outcome.error,
        }
        self._write(target, "meta.json", _canonical(meta))
        return target

    @staticmethod
    def _write(target: Path, name: str, data: bytes) -> None:
        tmp = target / f".{name}.tmp"
        tmp.write_bytes(data)
        os.replace(tmp, target / name)

    def read_result(self, job_id: str) -> dict:
        """Load a staged ``result.json`` back."""
        path = self.job_dir(job_id) / "result.json"
        if not path.exists():
            raise ServiceError(f"no staged result for job {job_id!r} under {self.output_dir}")
        return json.loads(path.read_text())
