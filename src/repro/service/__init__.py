"""MPH as a service: JSON job documents, a runtime over the existing
MPMD backends, and an asyncio orchestrator front-end.

The paper's MPH is a library the application links; this package wraps
the whole reproduction — handshake, sessions, thread and process
backends, fault/match seeds — behind a service boundary:

* :mod:`repro.service.jobdoc` — the canonical JSON **job document**
  (components + processor map + backend selection + seeds + output
  spec), strictly validated with typed
  :class:`~repro.errors.JobSpecError` rejections and a byte-stable
  ``to_spec``/``from_spec`` round-trip.
* :mod:`repro.service.runtime` — documents onto worlds:
  per-job isolation (own world, own shm namespace, swept teardown),
  a handshake-layout cache keyed by the document's layout hash, and
  resident worker worlds for the process-backend warm path.
* :mod:`repro.service.stager` — deterministic result staging (the
  artifact the cross-backend conformance suite byte-compares).
* :mod:`repro.service.orchestrator` — the asyncio front-end: admission
  control, a bounded worker pool, job states, cancellation.
"""

from repro.errors import AdmissionError, JobSpecError, ServiceError
from repro.service.jobdoc import (
    ComponentSpec,
    JobDocument,
    OutputSpec,
    RuntimeSpec,
    SeedSpec,
)
from repro.service.orchestrator import JobHandle, JobState, Orchestrator
from repro.service.runtime import (
    JobOutcome,
    JobRuntime,
    LayoutCache,
    ResolvedJob,
    WorkerWorld,
)
from repro.service.stager import ResultStager

__all__ = [
    "AdmissionError",
    "ComponentSpec",
    "JobDocument",
    "JobHandle",
    "JobOutcome",
    "JobRuntime",
    "JobSpecError",
    "JobState",
    "LayoutCache",
    "Orchestrator",
    "OutputSpec",
    "ResolvedJob",
    "ResultStager",
    "RuntimeSpec",
    "SeedSpec",
    "ServiceError",
    "WorkerWorld",
]
