"""The asyncio front-end: one multiplexer admitting, queueing, and
dispatching job documents onto a bounded worker pool.

The shape is a classic service loop, not an MPI program: clients
``await submit(...)`` job documents; a bounded queue applies admission
control at the door (:class:`~repro.errors.AdmissionError` when full or
shutting down); *max_workers* asyncio workers pull jobs off the queue
and drive them through the blocking :class:`~repro.service.runtime.JobRuntime`
in ``asyncio.to_thread`` threads, so many jobs make progress
concurrently while the event loop stays free to admit, report, and
cancel.

Job lifecycle::

    submit ──► queued ──► staging ──► running ──► done
         │        │           │           └─────► failed
         │        └► cancelled│
         └──► rejected        └─────────────────► failed

* ``rejected`` — the document failed validation (the handle carries the
  :class:`~repro.errors.JobSpecError`); nothing was queued.
* ``queued`` — admitted, waiting for a worker.  Only queued jobs can be
  cancelled: a running job is real forked processes mid-collective, and
  the runtime's per-job timeout — not the front-end — bounds it.
* ``staging`` — a worker is resolving the document (program binding,
  layout cache) and preparing output.
* ``running`` — executing on a backend world.
* ``done`` / ``failed`` — outcome staged (when an output dir is
  configured); ``failed`` covers failed ranks, aborts, timeouts, and
  resolution errors.

Per-job isolation is the runtime's: a crashed job poisons at most its
own world (isolated namespace or evicted resident world), so concurrent
healthy jobs are untouched — the property the chaos suite
(``tests/service/test_chaos.py``) exercises with seeded fault schedules.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.errors import AdmissionError, JobSpecError, ServiceError
from repro.service.jobdoc import JobDocument
from repro.service.runtime import JobOutcome, JobRuntime
from repro.service.stager import ResultStager

__all__ = ["JobHandle", "JobState", "Orchestrator"]


class JobState:
    """The job lifecycle states (plain strings, comparable/printable)."""

    QUEUED = "queued"
    STAGING = "staging"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    REJECTED = "rejected"
    CANCELLED = "cancelled"

    #: States a job can never leave.
    TERMINAL = frozenset({DONE, FAILED, REJECTED, CANCELLED})


@dataclass
class JobHandle:
    """A client's view of one submitted job."""

    job_id: str
    state: str
    document: Optional[JobDocument] = None
    outcome: Optional[JobOutcome] = None
    #: Staged output directory, when the orchestrator has a stager.
    staged: Optional[Path] = None
    #: Why the job rejected/failed (validation message, outcome error,
    #: or a summary of the failed components).
    error: Optional[str] = None
    _done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)
    _cancel: bool = field(default=False, repr=False)

    @property
    def finished(self) -> bool:
        return self.state in JobState.TERMINAL

    async def wait(self) -> "JobHandle":
        """Block until the job reaches a terminal state; returns self."""
        await self._done.wait()
        return self

    def _finish(self, state: str, error: Optional[str] = None) -> None:
        self.state = state
        if error is not None:
            self.error = error
        self._done.set()


class Orchestrator:
    """The MPH service front-end.

    Use as an async context manager::

        async with Orchestrator({"coupled": coupled}, output_dir=out) as orch:
            handles = [await orch.submit(doc) for doc in documents]
            for h in handles:
                await h.wait()

    Parameters
    ----------
    programs :
        Program catalog for a runtime the orchestrator builds and owns,
        or pass *runtime* directly (the orchestrator then closes it on
        shutdown either way).
    max_workers :
        Concurrent jobs in flight (each runs the blocking runtime in its
        own thread).
    max_queued :
        Admission bound: ``submit`` raises :class:`AdmissionError` once
        this many jobs are queued and unclaimed.
    output_dir :
        When given, finished outcomes are staged there via
        :class:`~repro.service.stager.ResultStager`.
    """

    def __init__(
        self,
        programs: Optional[Mapping[str, Callable]] = None,
        *,
        runtime: Optional[JobRuntime] = None,
        max_workers: int = 2,
        max_queued: int = 16,
        output_dir: Optional[Union[str, Path]] = None,
        max_resident: int = 2,
    ):
        if runtime is None:
            if programs is None:
                raise ServiceError("Orchestrator needs `programs` or a `runtime`")
            runtime = JobRuntime(programs, max_resident=max_resident)
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        self.runtime = runtime
        self.stager = ResultStager(output_dir) if output_dir is not None else None
        self.max_workers = max_workers
        self.max_queued = max_queued
        self.jobs: Dict[str, JobHandle] = {}
        self._seq = itertools.count()
        self._queue: Optional[asyncio.Queue] = None
        self._workers: List[asyncio.Task] = []
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "Orchestrator":
        """Open the submission queue and spawn the worker pool."""
        if self._queue is not None:
            raise ServiceError("orchestrator already started")
        self._queue = asyncio.Queue(maxsize=self.max_queued)
        self._workers = [
            asyncio.create_task(self._worker(), name=f"mph-service-worker-{i}")
            for i in range(self.max_workers)
        ]
        return self

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop admitting, finish (or cancel) the backlog, close worlds.

        With ``drain=True`` queued jobs run to completion first; with
        ``drain=False`` they finish as ``cancelled`` and only in-flight
        jobs complete.
        """
        if self._queue is None:
            return
        self._closing = True
        if not drain:
            for handle in self.jobs.values():
                if handle.state == JobState.QUEUED:
                    handle._cancel = True
        for _ in self._workers:
            await self._queue.put(None)
        await asyncio.gather(*self._workers)
        self._workers = []
        self._queue = None
        await asyncio.to_thread(self.runtime.close)

    async def __aenter__(self) -> "Orchestrator":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    # -- the client API ----------------------------------------------------

    async def submit(self, job: Union[JobDocument, Mapping, str]) -> JobHandle:
        """Validate and admit one job; returns its handle immediately.

        A document that fails validation comes back as a ``rejected``
        handle (already terminal, carrying the
        :class:`~repro.errors.JobSpecError` text) — the submission
        itself does not raise, so a client sweeping a corpus can submit
        blind and sort the outcomes afterwards.  Admission refusal
        (queue full, shutting down, not started) **does** raise
        :class:`~repro.errors.AdmissionError`: nothing was recorded.
        """
        if self._queue is None or self._closing:
            raise AdmissionError(
                "the orchestrator is " + ("shutting down" if self._closing else "not started")
            )
        job_id = f"job{next(self._seq):05d}"
        handle = JobHandle(job_id=job_id, state=JobState.QUEUED)
        try:
            handle.document = self._coerce(job)
        except JobSpecError as exc:
            handle._finish(JobState.REJECTED, str(exc))
            self.jobs[job_id] = handle
            return handle
        try:
            self._queue.put_nowait(handle)
        except asyncio.QueueFull:
            raise AdmissionError(
                f"submission queue is full ({self.max_queued} jobs queued); retry later"
            ) from None
        self.jobs[job_id] = handle
        return handle

    @staticmethod
    def _coerce(job: Union[JobDocument, Mapping, str]) -> JobDocument:
        if isinstance(job, JobDocument):
            return job
        if isinstance(job, str):
            return JobDocument.from_json(job)
        return JobDocument.from_spec(job)

    async def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; ``True`` when it will not run.  A job
        already claimed by a worker (or terminal) returns ``False`` —
        running worlds are bounded by the document's own timeout."""
        handle = self.jobs.get(job_id)
        if handle is None or handle.state != JobState.QUEUED:
            return False
        handle._cancel = True
        return True

    def handle(self, job_id: str) -> JobHandle:
        """The handle of a previously submitted job id."""
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job id {job_id!r}") from None

    # -- the worker loop ---------------------------------------------------

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            handle = await self._queue.get()
            if handle is None:
                return
            if handle._cancel:
                handle._finish(JobState.CANCELLED, "cancelled while queued")
                continue
            await self._run_one(handle)

    async def _run_one(self, handle: JobHandle) -> None:
        assert handle.document is not None
        handle.state = JobState.STAGING
        try:
            resolved = await asyncio.to_thread(self.runtime.resolve, handle.document)
        except Exception as exc:  # noqa: BLE001 - a bad job must not kill a worker
            handle._finish(JobState.FAILED, f"{type(exc).__name__}: {exc}")
            return

        log_dir = None
        if self.stager is not None and "logs" in handle.document.output.save:
            log_dir = str(self.stager.job_dir(handle.job_id) / "logs")

        handle.state = JobState.RUNNING
        try:
            outcome = await asyncio.to_thread(
                self.runtime.execute_resolved, resolved, handle.job_id, log_dir=log_dir
            )
        except Exception as exc:  # noqa: BLE001
            # execute_resolved converts job failures itself; reaching
            # here means a runtime-level error — still the job's
            # problem, never the worker's.
            handle._finish(JobState.FAILED, f"{type(exc).__name__}: {exc}")
            return
        handle.outcome = outcome

        if self.stager is not None:
            try:
                handle.staged = await asyncio.to_thread(
                    self.stager.stage, outcome, handle.document
                )
            except Exception as exc:  # noqa: BLE001
                handle._finish(JobState.FAILED, f"staging failed: {exc}")
                return

        if outcome.ok:
            handle._finish(JobState.DONE)
        else:
            summary = outcome.error or (
                "failed components: " + ", ".join(outcome.failed_components())
            )
            handle._finish(JobState.FAILED, summary)

    # -- introspection -----------------------------------------------------

    def states(self) -> Dict[str, str]:
        """``job_id -> state`` for every job this orchestrator has seen."""
        return {job_id: h.state for job_id, h in self.jobs.items()}

    def counts(self) -> Dict[str, int]:
        """How many jobs are in each state."""
        out: Dict[str, int] = {}
        for h in self.jobs.values():
            out[h.state] = out.get(h.state, 0) + 1
        return out
