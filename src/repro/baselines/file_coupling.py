"""File-exchange coupling baseline: components coupled through the
filesystem.

Before shared ``MPI_Comm_World`` MPMD jobs, loosely-coupled model systems
exchanged boundary data by writing files one component polled for (the
first-generation flux couplers worked this way between queued jobs).  This
baseline couples two components — an atmosphere and an ocean on the same
grid — through ``.npy`` files with atomic renames, giving experiment E6/E10
a latency reference point against MPH's in-memory messaging.

The exchange is genuinely concurrent: both components run inside one MPMD
job but never touch MPI for data exchange — only the filesystem.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.climate.components import AtmosphereModel, OceanModel
from repro.climate.grid import LatLonGrid
from repro.errors import ReproError
from repro.launcher.job import mph_run

#: Default seconds between polls for a partner's file (the filesystem has
#: no notification channel, so polling is inherent to this baseline; both
#: knobs are per-run parameters of :func:`run_file_coupled`).
_POLL_INTERVAL = 0.002

#: Default overall seconds to wait for any single partner file before the
#: run fails instead of spinning forever.
_POLL_TIMEOUT = 30.0


@dataclass
class FileCouplingReport:
    """Outcome of a file-coupled run."""

    nsteps: int
    #: Mean seconds spent per exchange (write + poll + read), per side.
    atm_exchange_seconds: float
    ocn_exchange_seconds: float
    files_written: int
    atm_mean_T: list[float]
    ocn_mean_T: list[float]


def _write_atomic(path: Path, array: np.ndarray) -> None:
    tmp = path.with_suffix(".tmp.npy")
    np.save(tmp, array)
    tmp.rename(path)


def _poll_read(
    path: Path,
    timeout: float = _POLL_TIMEOUT,
    interval: float = _POLL_INTERVAL,
) -> np.ndarray:
    if timeout <= 0:
        raise ReproError(f"file-coupling poll timeout must be > 0, got {timeout}")
    if interval <= 0:
        raise ReproError(f"file-coupling poll interval must be > 0, got {interval}")
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while True:
        if path.exists():
            # A file that exists but will not parse is truncated or
            # corrupt (e.g. a writer died mid-write on a filesystem
            # without atomic rename).  Keep polling — the writer may
            # still replace it — and fail with a clean ReproError at the
            # deadline instead of leaking an unpickling traceback.
            try:
                return np.load(path)
            except (ValueError, EOFError, OSError) as exc:
                last_error = exc
        if time.monotonic() > deadline:
            if last_error is not None:
                raise ReproError(
                    f"file-coupling gave up after {timeout}s: {path.name} exists "
                    f"but is truncated or corrupt ({type(last_error).__name__}: "
                    f"{last_error})"
                ) from last_error
            raise ReproError(
                f"file-coupling timed out after {timeout}s waiting for {path.name}"
            )
        time.sleep(interval)


def run_file_coupled(
    grid: LatLonGrid,
    nsteps: int,
    dt: float,
    workdir: Path,
    coupling_coeff: float = 15.0,
    poll_interval: float = _POLL_INTERVAL,
    poll_timeout: float = _POLL_TIMEOUT,
) -> FileCouplingReport:
    """Run the two-component file-coupled system.

    Per step each side writes its temperature, polls for the partner's
    file, reads it, computes the (antisymmetric) sensible flux locally,
    and steps.  Both sides run single-process — file coupling between
    decomposed components would need one file per rank, compounding the
    overhead this baseline quantifies.

    *poll_interval* sets the seconds between existence checks for the
    partner's file and *poll_timeout* the overall budget per file; when a
    file never appears the run raises :class:`ReproError` instead of
    spinning forever.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    def make_side(kind: str):
        def side(world, env):
            model_cls = AtmosphereModel if kind == "atm" else OceanModel
            model = model_cls(world, grid, model_cls.default_params())
            other = "ocn" if kind == "atm" else "atm"
            exchange_time = 0.0
            means: list[float] = []
            files = 0
            for step in range(nsteps):
                t0 = time.perf_counter()
                _write_atomic(workdir / f"{kind}_{step:05d}.npy", model.temperature.data)
                files += 1
                partner = _poll_read(
                    workdir / f"{other}_{step:05d}.npy",
                    timeout=poll_timeout,
                    interval=poll_interval,
                )
                exchange_time += time.perf_counter() - t0
                # Antisymmetric sensible flux: each side warms toward the
                # partner, so the pair conserves the exchanged energy.
                flux = coupling_coeff * (partner - model.temperature.data)
                model.step(dt, flux)
                means.append(model.mean_temperature())
            return {
                "kind": kind,
                "exchange_seconds": exchange_time / max(nsteps, 1),
                "files": files,
                "mean_T": means,
            }

        side.__name__ = kind
        return side

    result = mph_run([(make_side("atm"), 1), (make_side("ocn"), 1)], registry=None)
    atm = result.by_executable("atm")[0]
    ocn = result.by_executable("ocn")[0]
    return FileCouplingReport(
        nsteps=nsteps,
        atm_exchange_seconds=atm["exchange_seconds"],
        ocn_exchange_seconds=ocn["exchange_seconds"],
        files_written=atm["files"] + ocn["files"],
        atm_mean_T=atm["mean_T"],
        ocn_mean_T=ocn["mean_T"],
    )
