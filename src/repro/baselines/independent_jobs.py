"""Conventional ensemble baseline: K independent jobs + post-processing.

"Conventional approach is to treat the K runs as K independent jobs.  The
simulation results of the K runs are then averaged to get ensemble
average" (paper §2.5).  The drawbacks the paper calls out — and this
module measures for experiment E10:

* every run must **write every sampled field to disk** so statistics can
  be computed afterwards (the MIME approach needs zero intermediate
  files);
* **nonlinear order statistics** (median, percentiles, min/max) require
  *all* K fields per time sample to coexist, so nothing can be discarded;
* **no dynamic control**: a run cannot react to its siblings, because
  they literally are other jobs.

The per-instance model is the same :class:`~repro.climate.components.OceanModel`
physics the MIME example uses, perturbed per instance, so the two
approaches are comparable run-for-run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional

import numpy as np

from repro.climate.components import OceanModel
from repro.climate.grid import LatLonGrid
from repro.errors import ReproError
from repro.mpi.executor import run_spmd


@dataclass
class EnsembleRunReport:
    """Accounting of one independent-jobs ensemble campaign."""

    k: int
    nsteps: int
    #: Intermediate files written (K * sampled steps).
    files_written: int
    #: Total bytes of intermediate output.
    bytes_written: int
    #: Ensemble-mean time series of the global-mean temperature.
    mean_series: np.ndarray
    #: Ensemble-median series — only computable because everything was
    #: stored (the cost MIME avoids).
    median_series: np.ndarray
    #: Pointwise-spread series (max - min of global means).
    spread_series: np.ndarray


def perturbed_params(member: int):
    """Per-member parameter perturbation: albedo shifted by member index —
    a deterministic stand-in for perturbed-physics ensembles."""
    base = OceanModel.default_params()
    return replace(base, albedo=min(0.9, base.albedo + 0.02 * member))


def run_one_member(
    member: int,
    grid: LatLonGrid,
    nsteps: int,
    dt: float,
    outdir: Optional[Path],
    sample_every: int = 1,
) -> tuple[int, int, list[float]]:
    """Run one ensemble member as its own (single-process) job.

    Writes each sampled field to ``outdir`` (one ``.npy`` per sample) when
    *outdir* is given.  Returns ``(files, bytes, mean_T series)``.
    """

    def program(comm):
        model = OceanModel(comm, grid, perturbed_params(member))
        files = bytes_out = 0
        means: list[float] = []
        for step in range(nsteps):
            model.step(dt)
            means.append(model.mean_temperature())
            if outdir is not None and step % sample_every == 0:
                path = outdir / f"member{member:03d}_step{step:05d}.npy"
                np.save(path, model.temperature.data)
                files += 1
                bytes_out += path.stat().st_size
        return files, bytes_out, means

    return run_spmd(1, program)[0]


def run_independent_ensemble(
    k: int,
    grid: LatLonGrid,
    nsteps: int,
    dt: float,
    workdir: Path,
    sample_every: int = 1,
) -> EnsembleRunReport:
    """Run the K-independent-jobs campaign end to end.

    Each member runs as a separate job writing its samples to *workdir*;
    :func:`postprocess` then reads everything back to compute the
    statistics.
    """
    if k < 1:
        raise ReproError("ensemble needs k >= 1")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    files = bytes_out = 0
    for member in range(k):
        f, b, _ = run_one_member(member, grid, nsteps, dt, workdir, sample_every)
        files += f
        bytes_out += b
    mean_s, median_s, spread_s = postprocess(workdir, k, nsteps, sample_every)
    return EnsembleRunReport(
        k=k,
        nsteps=nsteps,
        files_written=files,
        bytes_written=bytes_out,
        mean_series=mean_s,
        median_series=median_s,
        spread_series=spread_s,
    )


def postprocess(
    workdir: Path, k: int, nsteps: int, sample_every: int = 1
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The offline averaging pass: read every stored field back and reduce.

    Returns ``(mean, median, spread)`` series of the global-mean
    temperature over the sampled steps.  Raises when files are missing —
    the fragility of the approach is part of the point.
    """
    workdir = Path(workdir)
    means: list[float] = []
    medians: list[float] = []
    spreads: list[float] = []
    for step in range(0, nsteps, sample_every):
        fields = []
        for member in range(k):
            path = workdir / f"member{member:03d}_step{step:05d}.npy"
            if not path.exists():
                raise ReproError(f"post-processing failed: missing sample {path.name}")
            fields.append(np.load(path))
        per_member = np.array([f.mean() for f in fields])
        means.append(float(per_member.mean()))
        medians.append(float(np.median(per_member)))
        spreads.append(float(per_member.max() - per_member.min()))
    return np.array(means), np.array(medians), np.array(spreads)
