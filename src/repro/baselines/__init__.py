"""Baseline approaches the paper compares MPH against.

* :mod:`repro.baselines.pcm_monolithic` — the PCM-style hardwired
  single-executable build (§2.2), including its static-allocation memory
  waste;
* :mod:`repro.baselines.independent_jobs` — the conventional K-independent-
  jobs ensemble with file output and offline post-processing (§2.5);
* :mod:`repro.baselines.file_coupling` — filesystem-mediated component
  coupling, the pre-MPMD exchange mechanism.
"""

from repro.baselines.file_coupling import FileCouplingReport, run_file_coupled
from repro.baselines.independent_jobs import (
    EnsembleRunReport,
    perturbed_params,
    postprocess,
    run_independent_ensemble,
    run_one_member,
)
from repro.baselines.pcm_monolithic import (
    StaticAllocation,
    hardwired_ranges,
    run_pcm_monolithic,
)

__all__ = [
    "FileCouplingReport",
    "run_file_coupled",
    "EnsembleRunReport",
    "perturbed_params",
    "postprocess",
    "run_independent_ensemble",
    "run_one_member",
    "StaticAllocation",
    "hardwired_ranges",
    "run_pcm_monolithic",
]
