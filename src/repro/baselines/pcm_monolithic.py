"""PCM-style hardwired monolithic baseline (what MPH replaces, paper §2.2).

"The widely used Parallel Climate Model (PCM) uses this mode.  All
components are written as modules and are finally merged into one single
source code. ... Name conflicts have to be resolved.  Static allocation
will increase unnecessary memory usage.  For example, component A on
processor group A will still allocate memory for static allocations in
module component B which actually sits in processor group B."

This baseline runs the *same physics* as the MPH-based driver, but wired
the pre-MPH way:

* one executable, processor ranges **hardwired as constants** (changing
  the allocation means editing code, not a runtime file);
* component communicators built by a hand-rolled ``Comm_split`` with
  hardwired colors;
* coupling messages addressed by **hardwired global ranks**;
* Fortran-style static allocation simulated faithfully: every process
  allocates the full-grid static arrays of *every* component module,
  whether it runs that component or not — the §2.2 memory-waste drawback,
  measured and returned so experiment E12 can quantify it.

Producing identical numbers to :func:`repro.climate.ccsm.run_ccsm` in MCSE
mode is the point: MPH adds flexibility, not physics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.climate.ccsm import CCSMConfig, MODEL_KINDS, _MODEL_CLASSES
from repro.climate.coupler import FluxCoupler
from repro.climate.grid import Decomposition
from repro.errors import ReproError
from repro.mpi.executor import run_spmd

#: Hardwired coupling tags — magic numbers, as a hardwired code would have.
_TEMP_TAG = 11
_FLUX_TAG = 12


@dataclass
class StaticAllocation:
    """The per-process static memory a monolithic build carries.

    ``all_modules_bytes`` is what the monolithic executable allocates
    (every module's statics on every process); ``own_component_bytes`` is
    what an MPH-style build needs (only the locally-run component's
    share).  The ratio is the §2.2 waste factor.
    """

    all_modules_bytes: int
    own_component_bytes: int

    @property
    def waste_factor(self) -> float:
        """How many times more static memory the monolithic build holds."""
        return self.all_modules_bytes / max(self.own_component_bytes, 1)


def _static_arrays(cfg: CCSMConfig, kind: str) -> dict[str, np.ndarray]:
    """The module-level static arrays of one component: prognostic field,
    work buffer, and climatology — three full-grid float64 arrays, the
    Fortran ``save``-variable pattern.  The coupler's statics live on the
    atmosphere grid (where it computes fluxes)."""
    shape = cfg.shapes["atmosphere" if kind == "coupler" else kind]
    return {
        "temperature": np.zeros(shape),
        "work": np.zeros(shape),
        "climatology": np.zeros(shape),
    }


def hardwired_ranges(cfg: CCSMConfig) -> dict[str, tuple[int, int]]:
    """The baked-in processor ranges (inclusive), in PCM fashion."""
    ranges: dict[str, tuple[int, int]] = {}
    offset = 0
    for kind in MODEL_KINDS + ("coupler",):
        n = cfg.procs[kind]
        ranges[kind] = (offset, offset + n - 1)
        offset += n
    return ranges


def run_pcm_monolithic(cfg: Optional[CCSMConfig] = None, **spmd_kwargs) -> dict[str, Any]:
    """Run the hardwired monolithic coupled model.

    Returns the same diagnostics dict as
    :func:`repro.climate.ccsm.run_ccsm`, with an extra ``"memory"`` entry
    holding the worst-case per-process :class:`StaticAllocation`.
    """
    cfg = cfg or CCSMConfig()
    ranges = hardwired_ranges(cfg)
    total = sum(cfg.procs[k] for k in MODEL_KINDS + ("coupler",))

    def program(world):
        # --- the §2.2 drawback, faithfully: every process allocates every
        # module's statics, then figures out which component it runs.
        statics = {kind: _static_arrays(cfg, kind) for kind in MODEL_KINDS + ("coupler",)}
        my_kind = None
        for kind, (lo, hi) in ranges.items():
            if lo <= world.rank <= hi:
                my_kind = kind
                break
        if my_kind is None:
            raise ReproError(f"rank {world.rank} outside every hardwired range")
        own_bytes = sum(a.nbytes for a in statics[my_kind].values())
        all_bytes = sum(a.nbytes for mod in statics.values() for a in mod.values())
        memory = StaticAllocation(all_modules_bytes=all_bytes, own_component_bytes=own_bytes)

        # --- hand-rolled component communicator (hardwired color).
        color = list(ranges).index(my_kind)
        comm = world.split(color, key=world.rank)
        assert comm is not None

        cpl_root = ranges["coupler"][0]  # hardwired global rank
        if my_kind == "coupler":
            diag = _run_coupler(world, comm, cfg, ranges)
        else:
            diag = _run_component(world, comm, cfg, ranges, my_kind, cpl_root)
        diag["memory"] = memory
        return {my_kind: diag}

    results = run_spmd(total, program, **spmd_kwargs)
    out: dict[str, Any] = {}
    worst: Optional[StaticAllocation] = None
    for value in results:
        for kind, diag in value.items():
            mem: StaticAllocation = diag["memory"]
            if worst is None or mem.waste_factor > worst.waste_factor:
                worst = mem
            keep = out.get(kind)
            if keep is None or (
                diag.get("final_field") is not None and keep.get("final_field") is None
            ):
                out[kind] = diag
    out["memory"] = worst
    return out


def _run_component(world, comm, cfg: CCSMConfig, ranges, kind: str, cpl_root: int) -> dict:
    model = _MODEL_CLASSES[kind](comm, cfg.grid(kind), cfg.param(kind))
    mean_T = [model.mean_temperature()]
    energy = [model.energy()]
    decomp = Decomposition(cfg.grid(kind), comm.size)
    for step in range(cfg.nsteps):
        full = model.temperature.gather_global(root=0)
        if comm.rank == 0:
            world.send((kind, step, full), cpl_root, _TEMP_TAG)
        blocks = None
        if comm.rank == 0:
            got_step, flux = world.recv(cpl_root, _FLUX_TAG)
            if got_step != step:
                raise ReproError(f"{kind}: hardwired protocol out of step")
            blocks = [flux[decomp.rows(r)[0] : decomp.rows(r)[1]] for r in range(comm.size)]
        local_flux = comm.scatter(blocks, root=0)
        model.step(cfg.dt, local_flux)
        mean_T.append(model.mean_temperature())
        energy.append(model.energy())
    return {
        "kind": kind,
        "mean_T": mean_T,
        "energy": energy,
        "budget": {
            "solar_in": model.budget.solar_in,
            "olr_out": model.budget.olr_out,
            "coupling_in": model.budget.coupling_in,
            "diffusion_residual": model.budget.diffusion_residual,
        },
        "final_field": model.temperature.gather_global(root=0),
    }


def _run_coupler(world, comm, cfg: CCSMConfig, ranges) -> dict:
    surfaces = [k for k in MODEL_KINDS if k != "atmosphere"]
    engine = FluxCoupler(
        cfg.grid("atmosphere"),
        {k: cfg.grid(k) for k in surfaces},
        {k: cfg.coupling_coeff[k] for k in surfaces},
    )
    for step in range(cfg.nsteps):
        if comm.rank != 0:
            continue
        temps = {}
        for kind in MODEL_KINDS:
            got_kind, got_step, full = world.recv(ranges[kind][0], _TEMP_TAG)
            if got_kind != kind or got_step != step:
                raise ReproError("coupler: hardwired protocol out of step")
            temps[kind] = full
        atm_flux, sfc_fluxes = engine.compute_fluxes(
            temps["atmosphere"], {k: temps[k] for k in surfaces}
        )
        world.send((step, atm_flux), ranges["atmosphere"][0], _FLUX_TAG)
        for kind in surfaces:
            world.send((step, sfc_fluxes[kind]), ranges[kind][0], _FLUX_TAG)
    return {
        "kind": "coupler",
        "exchange_residual": list(engine.exchange_residual),
        "max_exchange_residual": engine.max_residual(),
    }
