"""Receive status objects (the ``MPI_Status`` analogue)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Status:
    """Metadata about a received (or probed) message.

    Attributes
    ----------
    source :
        Rank of the sender *within the communicator the receive used*.
    tag :
        Tag the message was sent with.
    count :
        Payload size: element count for buffer-mode messages, pickled byte
        length for object-mode messages.  ``0`` for empty messages.
    cancelled :
        Whether the underlying request was cancelled (always False here —
        kept for API parity).
    """

    source: int = -1
    tag: int = -1
    count: int = 0
    cancelled: bool = False

    def Get_source(self) -> int:
        """mpi4py-style accessor for :attr:`source`."""
        return self.source

    def Get_tag(self) -> int:
        """mpi4py-style accessor for :attr:`tag`."""
        return self.tag

    def Get_count(self) -> int:
        """mpi4py-style accessor for :attr:`count`."""
        return self.count
