"""Persistent communication requests (``MPI_Send_init`` family).

Fixed communication patterns — above all the per-step halo exchange —
re-specify the same (buffer, peer, tag) triple every iteration.  MPI's
persistent requests bind the triple once; each iteration then only
``start``s and ``wait``s.  Semantics follow MPI: a request cycles
*inactive → active → complete*; ``start`` on an active receive is an
error; buffers are read (sends) or written (receives) at the
``start``/``wait`` boundaries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.errors import CommError, TruncationError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, is_valid_recv_tag, is_valid_tag
from repro.mpi.progress import Completion
from repro.mpi.request import Request
from repro.mpi.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Comm
    from repro.mpi.world import World


class Prequest(Request):
    """Base persistent request: the start/wait cycle machinery."""

    def __init__(self, comm: "Comm", what: str):
        self._comm = comm
        self._what = what
        self._active = False

    @property
    def active(self) -> bool:
        """Whether a started operation is still outstanding."""
        return self._active

    def start(self) -> "Prequest":
        """Begin one cycle of the bound operation; returns self."""
        if self._active:
            raise CommError(f"persistent request already active: {self._what}")
        self._start()
        self._active = True
        return self

    def _start(self) -> None:
        raise NotImplementedError

    def _rollback_start(self) -> None:
        """Undo a :meth:`start` so a failed ``startall`` leaves no orphaned
        operation.  Subclasses with posted state override."""
        self._active = False

    def _site(self) -> Optional[tuple["World", int]]:
        mailbox = self._comm._mailbox
        return mailbox.world, mailbox.owner

    @staticmethod
    def startall(requests: Sequence["Prequest"]) -> None:
        """Start every request (``MPI_Startall``).

        All-or-nothing: if any ``start`` raises (already-active request,
        invalid state, abort), every request started by *this call* is
        rolled back before the error propagates, so no orphaned posted
        receive can swallow a later message.  Receives that already
        matched an envelope cannot be unposted; those stay active (the
        message was genuinely consumed) and the error still propagates.
        """
        started: list["Prequest"] = []
        try:
            for req in requests:
                req.start()
                started.append(req)
        except BaseException:
            for req in reversed(started):
                req._rollback_start()
            raise


class PersistentSend(Prequest):
    """A persistent buffer-mode send: the buffer's *current* contents are
    snapshotted at each ``start`` (eager delivery, so the cycle completes
    immediately)."""

    def __init__(self, comm: "Comm", buf: np.ndarray, dest: int, tag: int):
        # Destination validation (including PROC_NULL) happens in
        # Comm.Send_init before construction.
        if not is_valid_tag(tag):
            raise CommError(f"invalid send tag {tag}")
        super().__init__(comm, f"Send_init(dest={dest}, tag={tag})")
        self._buf = np.asarray(buf)
        self._dest = dest
        self._tag = tag

    def _start(self) -> None:
        self._comm.Send(self._buf, self._dest, self._tag)

    def _rollback_start(self) -> None:
        # Sends are eager: the message left at start and cannot be
        # recalled (matching MPI, where a started send may already be on
        # the wire).  Rollback only returns the cycle to inactive.
        self._active = False

    def wait(self, status: Optional[Status] = None):
        """Complete the cycle (sends are eager, so this only resets)."""
        if not self._active:
            raise CommError(f"wait on inactive persistent request: {self._what}")
        self._active = False
        return None

    def test(self, status: Optional[Status] = None):
        """Persistent sends complete at start (eager delivery)."""
        if not self._active:
            return True, None
        self._active = False
        return True, None


class PersistentRecv(Prequest):
    """A persistent buffer-mode receive into a bound buffer."""

    def __init__(self, comm: "Comm", buf: np.ndarray, source: int, tag: int):
        if source != ANY_SOURCE and not 0 <= source < comm.size:
            raise CommError(f"source rank {source} out of range")
        if not is_valid_recv_tag(tag):
            raise CommError(f"invalid receive tag {tag}")
        super().__init__(comm, f"Recv_init(source={source}, tag={tag})")
        self._buf = np.asarray(buf)
        self._source = source
        self._tag = tag
        self._posted = None

    def _start(self) -> None:
        self._posted = self._comm._mailbox.post_recv(
            self._comm._p2p_ctx, self._source, self._tag
        )

    def _rollback_start(self) -> None:
        # Unpost the receive if still unmatched; a matched receive has
        # consumed its message and must stay active so the caller can
        # still drain it with wait().
        if self._posted is not None and self._posted.envelope is None:
            if self._comm._mailbox.cancel(self._posted):
                self._posted = None
                self._active = False

    def completion(self) -> Optional[Completion]:
        if self._active and self._posted is not None:
            return self._posted.completion
        return None

    def cancel(self) -> bool:
        """Cancel the active cycle's posted receive if still unmatched;
        the request returns to inactive and can be ``start``ed again."""
        if self._posted is None or self._posted.envelope is not None:
            return False
        if self._comm._mailbox.cancel(self._posted):
            self._posted = None
            self._active = False
            return True
        return False

    def wait(self, status: Optional[Status] = None):
        """Block for the matching message and copy it into the bound
        buffer; returns the buffer."""
        if not self._active or self._posted is None:
            raise CommError(f"wait on inactive persistent request: {self._what}")
        env = self._comm._mailbox.wait(self._posted, self._what)
        from repro.mpi.comm import _decode_buffer

        arr = _decode_buffer(env)
        if arr.size > self._buf.size:
            raise TruncationError(
                f"message of {arr.size} elements truncates persistent buffer of "
                f"{self._buf.size}"
            )
        flat = self._buf.reshape(-1)
        flat[: arr.size] = arr.reshape(-1)
        if status is not None:
            status.source, status.tag, status.count = env.source, env.tag, arr.size
        self._active = False
        self._posted = None
        return self._buf

    def test(self, status: Optional[Status] = None):
        """Nonblocking completion check; copies on success."""
        if not self._active or self._posted is None:
            return True, self._buf
        if self._posted.envelope is None:
            return False, None
        return True, self.wait(status)
