"""Wildcards and sentinel constants of the simulated MPI substrate.

Values are chosen to be distinctive negative integers so accidental use as a
real rank or tag fails fast in validation rather than silently aliasing.
"""

from __future__ import annotations

from typing import Final

#: Wildcard source rank for receives and probes (``MPI_ANY_SOURCE``).
ANY_SOURCE: Final[int] = -101

#: Wildcard message tag for receives and probes (``MPI_ANY_TAG``).
ANY_TAG: Final[int] = -102

#: Null process: sends to it vanish, receives from it complete immediately
#: with no data (``MPI_PROC_NULL``).  Handy at decomposition boundaries.
PROC_NULL: Final[int] = -103

#: Returned by group/rank translations for "not a member", and accepted as a
#: ``Split`` color meaning "I do not participate" (``MPI_UNDEFINED``).
UNDEFINED: Final[int] = -104

#: Root sentinel used internally by collectives that have no root.
NO_ROOT: Final[int] = -105

#: Inclusive upper bound on user tags (``MPI_TAG_UB`` on most platforms).
TAG_UB: Final[int] = 2**31 - 1


def is_valid_tag(tag: int) -> bool:
    """Whether *tag* is a legal tag for a send (wildcards are receive-only)."""
    return 0 <= tag <= TAG_UB


def is_valid_recv_tag(tag: int) -> bool:
    """Whether *tag* is legal for a receive or probe (user tag or wildcard)."""
    return tag == ANY_TAG or is_valid_tag(tag)
