"""Per-process message queues with MPI matching semantics.

Each simulated process owns one :class:`Mailbox`.  A mailbox holds two
queues:

* ``pending`` — envelopes that have arrived but matched no receive yet;
* ``posted`` — receives that have been posted but matched no envelope yet.

Matching follows the MPI rules: a receive selects the *earliest-arrived*
pending envelope whose ``(context, source, tag)`` it accepts (wildcards
``ANY_SOURCE`` / ``ANY_TAG`` allowed on the receive side only), and an
arriving envelope is handed to the *earliest-posted* receive that accepts
it.  Because arrival order is preserved per source, the MPI non-overtaking
guarantee holds.

The context id — one per communicator per traffic class (point-to-point vs
collective) — isolates communicators from each other exactly as real MPI
contexts do, so a stray ``tag=0`` user message can never be swallowed by a
collective in flight.

Blocking receives and probes run on the world's progress engine
(:mod:`repro.mpi.progress`): each :class:`PostedRecv` carries a
:class:`~repro.mpi.progress.Completion` signalled at match time, so in
event mode a blocked waiter parks once and is woken exactly once — by
delivery, abort, or the deadlock watchdog.  The legacy wait-slice polling
loops remain behind ``WorldConfig.progress_engine = "polling"``.

When a :class:`~repro.mpi.sched.MatchSchedule` is armed
(``WorldConfig.match_schedule``), the two nondeterministic choice points
of this layer are delegated to it: a wildcard receive chooses among its
*candidate frontier* (the first matching envelope per source — per-source
order is the non-overtaking guarantee and is never up for choice), and an
arriving envelope that matches no posted receive may be *held* invisible
for a bounded number of visibility events, permuting cross-source
delivery order and probe visibility.  Holds are deadlock-free by
construction: posting a matching receive or scanning in a blocking probe
force-reveals them (so no program ever blocks on a hidden message), while
nonblocking probes only age them — exactly the "sent but not yet visible
to iprobe" window real MPI permits.  With the schedule off, every path
here is the historical earliest-first behaviour behind one ``is None``
branch.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.errors import AbortError, CommError, ProcessFailedError, RevokedError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.progress import Completion
from repro.mpi.serialization import payload_nbytes

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import World


class Envelope:
    """A message in flight: routing metadata plus an opaque payload.

    ``payload`` is a :class:`~repro.mpi.serialization.Blob` (object mode)
    or a private numpy array copy (buffer mode); the
    :class:`~repro.mpi.comm.Comm` layer decides which and how to decode.
    ``count`` is the payload size for ``Status``.  ``op`` carries the
    collective operation name for collective-context messages (``None``
    for point-to-point traffic), so mismatched collectives are detected
    without decoding the payload.  ``copy_avoided`` is the number of
    payload bytes this delivery *reused* from an existing encoding (the
    zero-copy fast path's savings ledger; see
    :mod:`repro.mpi.serialization`).
    """

    __slots__ = (
        "context",
        "source",
        "tag",
        "payload",
        "kind",
        "count",
        "sync_event",
        "op",
        "copy_avoided",
    )

    def __init__(
        self,
        context: int,
        source: int,
        tag: int,
        payload,
        kind: str,
        count: int,
        sync_event: Optional[Completion] = None,
        op: Optional[str] = None,
        copy_avoided: int = 0,
    ):
        self.context = context
        self.source = source
        self.tag = tag
        self.payload = payload
        self.kind = kind
        self.count = count
        #: Signalled when a matching receive claims this envelope; used by
        #: synchronous sends (``ssend``) to block until matched.  A
        #: :class:`~repro.mpi.progress.Completion` (or anything with an
        #: Event-style ``set()``).
        self.sync_event = sync_event
        self.op = op
        self.copy_avoided = copy_avoided

    def matches(self, context: int, source: int, tag: int) -> bool:
        """Whether this envelope satisfies a receive pattern."""
        return (
            self.context == context
            and (source == ANY_SOURCE or source == self.source)
            and (tag == ANY_TAG or tag == self.tag)
        )


class PostedRecv:
    """A posted receive awaiting a matching envelope."""

    __slots__ = (
        "context",
        "source",
        "tag",
        "envelope",
        "completion",
        "cancelled",
        "world_source",
        "failed_rank",
        "revoked",
        "post_seq",
    )

    def __init__(
        self, context: int, source: int, tag: int, world_source: Optional[int] = None
    ):
        self.context = context
        self.source = source
        self.tag = tag
        #: Filled in (under the mailbox lock) when a match is made.
        self.envelope: Optional[Envelope] = None
        #: Signalled (after the lock is released) when a match is made —
        #: what the event engine's waitsets park on.
        self.completion = Completion()
        #: Set by a successful :meth:`Mailbox.cancel`; waiting on a
        #: cancelled receive raises instead of blocking forever.
        self.cancelled = False
        #: *World* rank of the expected sender (``None`` for wildcard
        #: receives) — lets :meth:`Mailbox.fail_posted_from` fail this
        #: receive the moment that rank dies.
        self.world_source = world_source
        #: World rank whose fail-stop death doomed this receive (waiting
        #: on it raises :class:`~repro.errors.ProcessFailedError`).
        self.failed_rank: Optional[int] = None
        #: Set when the owning communicator was revoked (waiting raises
        #: :class:`~repro.errors.RevokedError`).
        self.revoked = False
        #: Per-rank post index under an armed
        #: :class:`~repro.mpi.sched.MatchSchedule` (the receive's trace
        #: key; -1 when no schedule is armed).
        self.post_seq = -1

    def accepts(self, env: Envelope) -> bool:
        """Whether this posted receive accepts *env*."""
        return env.matches(self.context, self.source, self.tag)

    @property
    def done(self) -> bool:
        """Whether a matching envelope has been attached."""
        return self.envelope is not None


#: Default for how often (seconds) blocked waiters wake to re-check for
#: aborts under the **polling** engine — short enough that deadlock aborts
#: propagate promptly, long enough to stay cheap.  Tunable per world
#: through :attr:`repro.mpi.world.WorldConfig.wait_slice`; the event
#: engine does not poll at all.
_WAIT_SLICE = 0.05


def _payload_bytes(env: Envelope) -> int:
    """Approximate wire size of an envelope's payload."""
    return payload_nbytes(env.payload)


class Mailbox:
    """The incoming-message endpoint of one simulated process."""

    def __init__(self, world: "World", owner_rank: int):
        self._world = world
        #: World rank of the owning process.
        self.owner = owner_rank
        self._cond = threading.Condition()
        self._pending: deque[Envelope] = deque()
        self._posted: deque[PostedRecv] = deque()
        #: Envelopes held invisible by an armed MatchSchedule, as mutable
        #: ``[ttl, env]`` entries in arrival order.  Invariant: a held
        #: envelope matches nothing in ``_posted`` (delivery matches
        #: first, and posting a receive force-reveals its matches), so a
        #: reveal only ever appends to ``_pending``.
        self._held: deque[list] = deque()
        #: Blocked probes in event mode: ``(completion, (ctx, src, tag))``
        #: pairs signalled when a matching envelope lands in ``pending``.
        self._probe_watchers: list[tuple[Completion, tuple[int, int, int]]] = []

    @property
    def world(self) -> "World":
        """The world this mailbox belongs to."""
        return self._world

    @property
    def _wait_slice(self) -> float:
        """Poll interval for blocked waiters (see ``WorldConfig.wait_slice``)."""
        return getattr(self._world.config, "wait_slice", _WAIT_SLICE)

    # -- delivery (called from the *sender's* thread) ----------------------

    def deliver(self, env: Envelope) -> None:
        """Hand an envelope to this mailbox, matching a posted receive if
        one accepts it, else queueing it as pending.

        Fails fast with :class:`~repro.errors.ProcessFailedError` when
        the owner is dead (a send to a failed rank must error, not
        vanish), and applies the world's armed
        :class:`~repro.mpi.faults.FaultSchedule` — drop, delay,
        duplication, corruption — on the sender's thread.
        """
        world = self._world
        if world.rank_failed(self.owner):
            raise ProcessFailedError(
                f"delivery to failed world rank {self.owner} "
                f"(source rank {env.source}, tag {env.tag})",
                failed_ranks=(self.owner,),
            )
        schedule = world.config.fault_schedule
        if schedule is not None:
            envs = schedule.on_deliver(self.owner, env)
            if not envs:
                return  # dropped: the message silently never arrives
            for extra in envs[:-1]:
                self._deliver_one(extra)
            env = envs[-1]
        self._deliver_one(env)

    def _deliver_one(self, env: Envelope) -> None:
        self._world.record_traffic(env.kind, _payload_bytes(env), env.copy_avoided)
        sched = self._world.config.match_schedule
        matched: Optional[PostedRecv] = None
        probe_hits: list[Completion] = []
        with self._cond:
            if sched is not None:
                # Every delivery is a visibility event for already-held
                # envelopes, and every delivery consumes one per-stream
                # hold decision (consumed whether or not it applies, so
                # the decision stream follows the sender's program order,
                # not match timing).
                if self._held:
                    self._age_held(probe_hits)
                ttl = sched.hold_ttl(self.owner, env.source)
            else:
                ttl = 0
            for pr in self._posted:
                if pr.accepts(env):
                    self._posted.remove(pr)
                    pr.envelope = env
                    matched = pr
                    if sched is not None:
                        sched.record_match(
                            self.owner, pr.post_seq, env.source, env.tag
                        )
                    break
            else:
                if sched is not None and self._maybe_hold(env, ttl, probe_hits):
                    pass  # held: invisible until aged out or force-revealed
                else:
                    self._to_pending(env, probe_hits)
            self._cond.notify_all()
        self._world.note_activity()
        # Signal completions with no mailbox lock held (a waitset notify
        # takes the waiter's lock; keeping the order one-directional rules
        # out inversions against World.abort's wake path).
        if matched is not None:
            matched.completion.signal()
            if env.sync_event is not None:
                # Matched immediately by a posted receive: release a
                # blocked synchronous sender.
                env.sync_event.set()
        for completion in probe_hits:
            completion.signal()

    # -- schedule holds (all helpers run under self._cond) ------------------

    def _to_pending(self, env: Envelope, probe_hits: list[Completion]) -> None:
        """Append *env* to pending and collect matching probe watchers
        (signalled by the caller outside the lock)."""
        self._pending.append(env)
        if self._probe_watchers:
            keep = []
            for watcher in self._probe_watchers:
                if env.matches(*watcher[1]):
                    probe_hits.append(watcher[0])
                else:
                    keep.append(watcher)
            self._probe_watchers = keep

    def _maybe_hold(
        self, env: Envelope, ttl: int, probe_hits: list[Completion]
    ) -> bool:
        """Hold *env* invisible if the schedule decided a delay (or a
        same-stream predecessor is still held — per-stream FIFO means an
        envelope can never overtake a held one from its own sender).
        Never holds an envelope a parked blocking probe is waiting for:
        that watcher was armed because nothing matched, and hiding its
        match would turn a legal delay into a missed wakeup."""
        stream_blocked = any(
            h[1].context == env.context and h[1].source == env.source
            for h in self._held
        )
        if ttl <= 0 and not stream_blocked:
            return False
        if self._probe_watchers and any(
            env.matches(*w[1]) for w in self._probe_watchers
        ):
            self._reveal_stream(env.context, env.source, probe_hits)
            return False
        self._held.append([ttl, env])
        return True

    def _age_held(self, probe_hits: list[Completion]) -> None:
        """One visibility event: decrement every hold and reveal expired
        envelopes, keeping per-stream order (an expired envelope stays
        held while an earlier envelope of its stream is held)."""
        released: list[Envelope] = []
        blocked: set[tuple[int, int]] = set()
        keep: deque[list] = deque()
        for item in self._held:
            item[0] -= 1
            env = item[1]
            stream = (env.context, env.source)
            if item[0] <= 0 and stream not in blocked:
                released.append(env)
            else:
                keep.append(item)
                blocked.add(stream)
        self._held = keep
        for env in released:
            self._to_pending(env, probe_hits)

    def _reveal_matching(
        self, context: int, source: int, tag: int, probe_hits: list[Completion]
    ) -> None:
        """Force-reveal every held envelope matching the receive/probe
        pattern — plus each one's held same-stream predecessors, so the
        pending queue stays FIFO per stream.  Called before a posted
        receive scans and inside blocking-probe scans: a blocked caller
        must see everything that has been *sent*, holds only delay
        visibility to nonblocking observers."""
        last: dict[tuple[int, int], int] = {}
        for i, item in enumerate(self._held):
            env = item[1]
            if env.matches(context, source, tag):
                last[(env.context, env.source)] = i
        if not last:
            return
        keep: deque[list] = deque()
        for i, item in enumerate(self._held):
            env = item[1]
            stream = (env.context, env.source)
            if stream in last and i <= last[stream]:
                self._to_pending(env, probe_hits)
            else:
                keep.append(item)
        self._held = keep

    def _reveal_stream(
        self, context: int, source: int, probe_hits: list[Completion]
    ) -> None:
        """Force-reveal every held envelope of one stream, in order."""
        keep: deque[list] = deque()
        for item in self._held:
            env = item[1]
            if env.context == context and env.source == source:
                self._to_pending(env, probe_hits)
            else:
                keep.append(item)
        self._held = keep

    def _claim_scheduled(self, sched, pr: PostedRecv) -> Optional[Envelope]:
        """Scheduled wildcard matching: build the candidate frontier (the
        first pending envelope *pr* accepts from each source — per-source
        order is non-overtaking and never up for choice), sort it by
        ``(source, tag)`` so the choice is independent of arrival order,
        and let the schedule pick."""
        cands: list[Envelope] = []
        seen: set[int] = set()
        for env in self._pending:
            if env.source not in seen and pr.accepts(env):
                seen.add(env.source)
                cands.append(env)
        if not cands:
            return None
        cands.sort(key=lambda e: (e.source, e.tag))
        idx = sched.choose_match(
            self.owner, pr.post_seq, tuple((e.source, e.tag) for e in cands)
        )
        env = cands[idx]
        self._pending.remove(env)
        pr.envelope = env
        return env

    # -- receiving (called from the *owner's* thread) ----------------------

    def post_recv(
        self,
        context: int,
        source: int,
        tag: int,
        world_source: Optional[int] = None,
    ) -> PostedRecv:
        """Post a receive; match immediately against pending envelopes.

        *world_source* is the expected sender's world rank (``None`` for
        wildcards).  Eager delivery means everything a rank sent before
        dying is already pending, so a receive posted against an
        already-dead rank with no pending match can never complete — it
        is failed at post time (the waiter raises
        :class:`~repro.errors.ProcessFailedError`).
        """
        pr = PostedRecv(context, source, tag, world_source)
        sched = self._world.config.match_schedule
        claimed: Optional[Envelope] = None
        probe_hits: list[Completion] = []
        with self._cond:
            if sched is not None:
                # A posted receive must see everything already *sent* to
                # it: force-reveal matching held envelopes (liveness),
                # then let the schedule choose among the candidate
                # frontier.  The post index is allocated for every
                # receive — matched here or later at delivery — so the
                # rank's decision keys follow its own program order.
                pr.post_seq = sched.next_post_seq(self.owner)
                if self._held:
                    self._reveal_matching(context, source, tag, probe_hits)
                claimed = self._claim_scheduled(sched, pr)
            else:
                for env in self._pending:
                    if pr.accepts(env):
                        self._pending.remove(env)
                        pr.envelope = env
                        claimed = env
                        break
            if claimed is None:
                if world_source is not None and self._world.rank_failed(world_source):
                    pr.failed_rank = world_source
                else:
                    self._posted.append(pr)
        for completion in probe_hits:
            completion.signal()
        if claimed is not None:
            pr.completion.signal()
            self._world.note_activity()
            if claimed.sync_event is not None:
                claimed.sync_event.set()
        elif pr.failed_rank is not None:
            pr.completion.signal()
        return pr

    def cancel(self, pr: PostedRecv) -> bool:
        """Remove a not-yet-matched posted receive.  Returns True if it was
        still unmatched (and is now cancelled)."""
        with self._cond:
            if pr in self._posted:
                self._posted.remove(pr)
                pr.cancelled = True
                return True
            return False

    def wait(self, pr: PostedRecv, what: str) -> Envelope:
        """Block until *pr* is matched; abort-aware and deadlock-detecting.

        Parameters
        ----------
        pr :
            The posted receive to wait on.
        what :
            Human-readable description of the blocking call, shown in
            deadlock diagnostics (e.g. ``"recv(source=2, tag=7)"``).

        Raises
        ------
        CommError
            If *pr* was cancelled — its message can never arrive.
        ProcessFailedError
            If the expected sender died — its message can never arrive.
        RevokedError
            If the communicator was revoked while the receive was pending.
        """
        if pr.envelope is not None:
            return pr.envelope
        if pr.cancelled:
            raise CommError(f"wait on a cancelled receive: {what}")
        self._check_doomed(pr, what)
        world = self._world
        if world.progress.event_mode:
            world.progress.wait((pr.completion,), self.owner, what)
            self._check_doomed(pr, what)
            assert pr.envelope is not None
            return pr.envelope
        world.block_enter(self.owner, what)
        wakeups = 0
        start = time.monotonic()
        try:
            while True:
                with self._cond:
                    if pr.envelope is not None:
                        return pr.envelope
                    world.check_abort()
                    self._check_doomed(pr, what)
                    self._cond.wait(timeout=self._wait_slice)
                    wakeups += 1
                # The deadlock check may abort the world and wake every
                # mailbox; it must run with no mailbox lock held to keep a
                # global lock order (see World.abort).
                world.maybe_detect_deadlock()
        finally:
            world.block_exit(self.owner)
            world.record_block_episode(self.owner, time.monotonic() - start, wakeups)

    @staticmethod
    def _check_doomed(pr: PostedRecv, what: str) -> None:
        """Raise if *pr* can never complete (dead sender / revoked comm)."""
        if pr.failed_rank is not None and pr.envelope is None:
            raise ProcessFailedError(
                f"receive from failed world rank {pr.failed_rank}: {what}",
                failed_ranks=(pr.failed_rank,),
            )
        if pr.revoked and pr.envelope is None:
            raise RevokedError(f"communicator revoked while blocked in {what}")

    # -- probing -----------------------------------------------------------

    def probe(self, context: int, source: int, tag: int, block: bool, what: str) -> Optional[Envelope]:
        """Peek at the earliest pending envelope matching the pattern.

        With ``block=True``, waits (abort-aware) until one arrives.  The
        envelope is *not* removed.  Returns ``None`` only when non-blocking
        and nothing matches.

        Under an armed :class:`~repro.mpi.sched.MatchSchedule` the probe
        reports a schedule-chosen envelope from the candidate frontier
        (still the earliest per source, so a follow-up receive addressed
        by the reported ``(source, tag)`` claims the probed message).  A
        *blocking* probe force-reveals matching held envelopes — it must
        see everything sent; a nonblocking probe only ages holds, which
        is the "sent but not yet visible" window real MPI permits.
        """
        world = self._world
        sched = world.config.match_schedule

        def scan() -> Optional[Envelope]:
            if sched is None:
                for env in self._pending:
                    if env.matches(context, source, tag):
                        return env
                return None
            if block and self._held:
                hits: list[Completion] = []
                self._reveal_matching(context, source, tag, hits)
                # Owner-thread probes can have no parked watcher of
                # their own mailbox; any hits here are defensive.
                for completion in hits:
                    completion.signal()
            cands: list[Envelope] = []
            seen: set[int] = set()
            for env in self._pending:
                if env.source not in seen and env.matches(context, source, tag):
                    seen.add(env.source)
                    cands.append(env)
            if not cands:
                return None
            cands.sort(key=lambda e: (e.source, e.tag))
            return cands[
                sched.choose_probe(
                    self.owner, tuple((e.source, e.tag) for e in cands)
                )
            ]

        with self._cond:
            if sched is not None and not block and self._held:
                hits: list[Completion] = []
                self._age_held(hits)
                for completion in hits:
                    completion.signal()
            env = scan()
            if env is not None or not block:
                return env
        if world.progress.event_mode:
            # Arm a fresh one-shot watcher per park: deliver() signals it
            # when a matching envelope lands in pending.  Only the owner
            # consumes this mailbox's pending queue, and the owner is the
            # thread parked here, so a signalled match cannot vanish
            # before the re-scan.
            while True:
                if world.ctx_revoked(context):
                    raise RevokedError(f"communicator revoked while blocked in {what}")
                watcher = Completion()
                with self._cond:
                    env = scan()
                    if env is not None:
                        return env
                    self._probe_watchers.append((watcher, (context, source, tag)))
                try:
                    world.progress.wait((watcher,), self.owner, what)
                finally:
                    with self._cond:
                        self._probe_watchers = [
                            w for w in self._probe_watchers if w[0] is not watcher
                        ]
        world.block_enter(self.owner, what)
        wakeups = 0
        start = time.monotonic()
        try:
            while True:
                with self._cond:
                    env = scan()
                    if env is not None:
                        return env
                    world.check_abort()
                    if world.ctx_revoked(context):
                        raise RevokedError(
                            f"communicator revoked while blocked in {what}"
                        )
                    self._cond.wait(timeout=self._wait_slice)
                    wakeups += 1
                world.maybe_detect_deadlock()
        finally:
            world.block_exit(self.owner)
            world.record_block_episode(self.owner, time.monotonic() - start, wakeups)

    # -- maintenance --------------------------------------------------------

    def wake(self) -> None:
        """Wake all waiters (used by :meth:`World.abort`).  Also flushes
        any schedule-held envelopes into pending: during abort, revoke,
        or failure recovery nothing may stay hidden — diagnostics and the
        ULFM recovery plane must see the full mailbox state."""
        probe_hits: list[Completion] = []
        with self._cond:
            if self._held:
                released = [item[1] for item in self._held]
                self._held = deque()
                for env in released:
                    self._to_pending(env, probe_hits)
            self._cond.notify_all()
        for completion in probe_hits:
            completion.signal()

    def fail_posted_from(self, world_rank: int) -> None:
        """Fail every unmatched posted receive that can only be satisfied
        by *world_rank* (called by :meth:`World.proc_failed` when that
        rank dies).  Wildcard receives are untouched — another sender may
        still satisfy them; a global stall is caught by the watchdog's
        failure pulse instead."""
        doomed: list[PostedRecv] = []
        with self._cond:
            keep: deque[PostedRecv] = deque()
            for pr in self._posted:
                if pr.world_source == world_rank and pr.envelope is None:
                    pr.failed_rank = world_rank
                    doomed.append(pr)
                else:
                    keep.append(pr)
            self._posted = keep
            if doomed:
                self._cond.notify_all()
        for pr in doomed:
            pr.completion.signal()

    def revoke_ctxs(self, ctxs: set, comm_name: str) -> None:
        """Fail every unmatched posted receive and wake every probe on the
        given context ids (called by :meth:`World.revoke_contexts`)."""
        doomed: list[PostedRecv] = []
        probe_hits: list[Completion] = []
        with self._cond:
            keep: deque[PostedRecv] = deque()
            for pr in self._posted:
                if pr.context in ctxs and pr.envelope is None:
                    pr.revoked = True
                    doomed.append(pr)
                else:
                    keep.append(pr)
            self._posted = keep
            watchers = []
            for watcher in self._probe_watchers:
                if watcher[1][0] in ctxs:
                    probe_hits.append(watcher[0])
                else:
                    watchers.append(watcher)
            self._probe_watchers = watchers
            if doomed or probe_hits:
                self._cond.notify_all()
        for pr in doomed:
            pr.completion.signal()
        for completion in probe_hits:
            completion.signal()

    def stats(self) -> tuple[int, int]:
        """Return ``(pending, posted)`` queue depths (diagnostics only).
        Schedule-held envelopes count as pending — they have been
        delivered, the schedule is merely delaying their visibility."""
        with self._cond:
            return len(self._pending) + len(self._held), len(self._posted)

    def check_abort(self) -> None:
        """Raise :class:`AbortError` if the world has aborted."""
        self._world.check_abort()
