"""Reduction operators for the simulated MPI collectives.

Each operator is a small value object wrapping an associative binary
function.  The predefined set mirrors MPI's: SUM, PROD, MAX, MIN, the
logical and bitwise families, and the location-carrying MAXLOC / MINLOC.

Operators work on any Python values supporting the underlying operation —
numbers, numpy arrays (elementwise), and for MAXLOC/MINLOC, ``(value, loc)``
pairs.  User-defined operators are created with :func:`Op.create`.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence

import numpy as np


class Op:
    """An associative (and possibly commutative) reduction operator.

    Parameters
    ----------
    fn :
        Binary function combining two contributions.  Contributions are
        always combined in rank order (``((r0 op r1) op r2) ...``) so that
        non-commutative user operators behave deterministically, as MPI
        guarantees.
    name :
        Display name used in diagnostics.
    commutative :
        Declared commutativity.  Tree-based reduction algorithms may only
        reorder contributions when this is true.
    """

    __slots__ = ("fn", "name", "commutative")

    def __init__(self, fn: Callable[[Any, Any], Any], name: str, commutative: bool = True):
        self.fn = fn
        self.name = name
        self.commutative = commutative

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Op {self.name}>"

    def reduce(self, contributions: Sequence[Any]) -> Any:
        """Fold *contributions* (given in rank order) with this operator."""
        if not contributions:
            raise ValueError("cannot reduce zero contributions")
        acc = contributions[0]
        for item in contributions[1:]:
            acc = self.fn(acc, item)
        return acc

    @staticmethod
    def create(fn: Callable[[Any, Any], Any], name: str = "user", commutative: bool = False) -> "Op":
        """Create a user-defined operator (``MPI_Op_create`` analogue)."""
        return Op(fn, name, commutative)


def _elementwise_max(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _elementwise_min(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def _maxloc(a: tuple, b: tuple) -> tuple:
    """MAXLOC on ``(value, loc)`` pairs: larger value wins, ties take the
    smaller location — exactly MPI's tie-breaking rule."""
    if a[0] > b[0]:
        return a
    if b[0] > a[0]:
        return b
    return a if a[1] <= b[1] else b


def _minloc(a: tuple, b: tuple) -> tuple:
    """MINLOC on ``(value, loc)`` pairs (smaller value wins, ties take the
    smaller location)."""
    if a[0] < b[0]:
        return a
    if b[0] < a[0]:
        return b
    return a if a[1] <= b[1] else b


SUM = Op(operator.add, "SUM")
PROD = Op(operator.mul, "PROD")
MAX = Op(_elementwise_max, "MAX")
MIN = Op(_elementwise_min, "MIN")
LAND = Op(lambda a, b: np.logical_and(a, b) if isinstance(a, np.ndarray) else bool(a) and bool(b), "LAND")
LOR = Op(lambda a, b: np.logical_or(a, b) if isinstance(a, np.ndarray) else bool(a) or bool(b), "LOR")
LXOR = Op(lambda a, b: np.logical_xor(a, b) if isinstance(a, np.ndarray) else bool(a) != bool(b), "LXOR")
BAND = Op(operator.and_, "BAND")
BOR = Op(operator.or_, "BOR")
BXOR = Op(operator.xor, "BXOR")
MAXLOC = Op(_maxloc, "MAXLOC")
MINLOC = Op(_minloc, "MINLOC")

#: All predefined operators, keyed by name.
PREDEFINED = {
    op.name: op
    for op in (SUM, PROD, MAX, MIN, LAND, LOR, LXOR, BAND, BOR, BXOR, MAXLOC, MINLOC)
}
