"""Cartesian process topologies (``MPI_Cart_create`` family).

Component models with 2-D domain decompositions (the production version
of the 1-D latitude bands the toy CCSM uses) address neighbours through a
Cartesian topology.  :meth:`CartComm.shift` returns ``PROC_NULL`` across
non-periodic edges, so stencil code stays branch-free at domain
boundaries — the same idiom the halo exchange in
:mod:`repro.climate.fields` uses.

Rank-to-coordinate mapping is row-major (C order), matching MPI.
"""

from __future__ import annotations

from math import prod
from typing import Optional, Sequence

from repro.errors import CommError
from repro.mpi.comm import Comm
from repro.mpi.constants import PROC_NULL, UNDEFINED
from repro.mpi.group import Group


def dims_create(nnodes: int, ndims: int, dims: Optional[Sequence[int]] = None) -> list[int]:
    """``MPI_Dims_create``: balanced factorisation of *nnodes* over
    *ndims* dimensions; non-zero entries of *dims* are constraints.

    >>> dims_create(12, 2)
    [4, 3]
    >>> dims_create(12, 2, [3, 0])
    [3, 4]
    """
    out = list(dims) if dims is not None else [0] * ndims
    if len(out) != ndims:
        raise CommError(f"dims has {len(out)} entries for ndims={ndims}")
    fixed = prod(d for d in out if d > 0)
    free = [i for i, d in enumerate(out) if d == 0]
    if fixed <= 0 or nnodes % fixed != 0:
        raise CommError(f"cannot factor {nnodes} nodes with constraints {dims}")
    remaining = nnodes // fixed
    # Greedy balanced factorisation: repeatedly give the largest prime
    # factor to the currently-smallest free dimension.
    factors: list[int] = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    sizes = {i: 1 for i in free}
    for factor in sorted(factors, reverse=True):
        smallest = min(free, key=lambda i: sizes[i]) if free else None
        if smallest is None:
            break
        sizes[smallest] *= factor
    for i in free:
        out[i] = sizes[i]
    if prod(out) != nnodes:
        raise CommError(f"cannot factor {nnodes} nodes over {ndims} dims with {dims}")
    # MPI convention: dimensions in non-increasing order when unconstrained.
    if dims is None or all(d == 0 for d in dims):
        out.sort(reverse=True)
    return out


class CartComm(Comm):
    """A communicator with Cartesian topology attached."""

    def __init__(self, base: Comm, dims: Sequence[int], periods: Sequence[bool], name: str):
        super().__init__(base.world, base.group, base._my_world_id, (base._p2p_ctx, base._coll_ctx), name)
        self.dims = tuple(int(d) for d in dims)
        self.periods = tuple(bool(p) for p in periods)

    @property
    def ndims(self) -> int:
        """Number of topology dimensions."""
        return len(self.dims)

    # -- coordinate algebra ------------------------------------------------

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Coordinates of *rank* (``MPI_Cart_coords``, row-major)."""
        self._check_rank(rank, "rank")
        coords = []
        for extent in reversed(self.dims):
            coords.append(rank % extent)
            rank //= extent
        return tuple(reversed(coords))

    @property
    def coords(self) -> tuple[int, ...]:
        """This process's coordinates."""
        return self.coords_of(self.rank)

    def rank_of(self, coords: Sequence[int]) -> int:
        """Rank at *coords* (``MPI_Cart_rank``); periodic dimensions wrap,
        out-of-range coordinates on non-periodic dimensions raise."""
        if len(coords) != self.ndims:
            raise CommError(f"need {self.ndims} coordinates, got {len(coords)}")
        rank = 0
        for c, extent, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                raise CommError(
                    f"coordinate {c} outside non-periodic dimension of extent {extent}"
                )
            rank = rank * extent + c
        return rank

    def shift(self, direction: int, disp: int = 1) -> tuple[int, int]:
        """``MPI_Cart_shift``: ``(source, dest)`` ranks for a shift of
        *disp* along *direction*; ``PROC_NULL`` across open edges."""
        if not 0 <= direction < self.ndims:
            raise CommError(f"direction {direction} out of range for {self.ndims}-d topology")

        def neighbour(offset: int) -> int:
            coords = list(self.coords)
            coords[direction] += offset
            extent, periodic = self.dims[direction], self.periods[direction]
            if not periodic and not 0 <= coords[direction] < extent:
                return PROC_NULL
            return self.rank_of(coords)

        return neighbour(-disp), neighbour(+disp)

    def sub(self, remain_dims: Sequence[bool]) -> "CartComm":
        """``MPI_Cart_sub``: split into lower-dimensional slices keeping
        the dimensions flagged in *remain_dims* (collective)."""
        if len(remain_dims) != self.ndims:
            raise CommError(f"remain_dims needs {self.ndims} entries")
        keep = [i for i, k in enumerate(remain_dims) if k]
        drop = [i for i, k in enumerate(remain_dims) if not k]
        my = self.coords
        # Color: the dropped coordinates identify the slice.
        color = 0
        for i in drop:
            color = color * self.dims[i] + my[i]
        key = 0
        for i in keep:
            key = key * self.dims[i] + my[i]
        flat = self.split(color, key)
        assert flat is not None
        return CartComm(
            flat,
            [self.dims[i] for i in keep],
            [self.periods[i] for i in keep],
            name=f"{self.name}.sub",
        )


def create_cart(
    comm: Comm,
    dims: Sequence[int],
    periods: Optional[Sequence[bool]] = None,
    reorder: bool = False,
) -> Optional[CartComm]:
    """``MPI_Cart_create``: attach a Cartesian topology to *comm*.

    Collective.  Processes beyond ``prod(dims)`` get ``None`` (as MPI
    returns ``MPI_COMM_NULL``).  *reorder* is accepted for signature
    parity; this substrate never renumbers.
    """
    dims = [int(d) for d in dims]
    if any(d < 1 for d in dims):
        raise CommError(f"every dimension must be >= 1, got {dims}")
    size = prod(dims)
    if size > comm.size:
        raise CommError(f"topology {dims} needs {size} processes; have {comm.size}")
    periods = [False] * len(dims) if periods is None else [bool(p) for p in periods]
    if len(periods) != len(dims):
        raise CommError("periods must match dims in length")
    color = 0 if comm.rank < size else UNDEFINED
    flat = comm.split(color, key=comm.rank)
    if flat is None:
        return None
    return CartComm(flat, dims, periods, name=f"{comm.name}.cart{tuple(dims)}")
