"""Shared-memory transport: ring buffers + zero-copy Blob pages.

MPICH-G2 picks the fastest substrate per peer pair; this module is the
fast substrate for *same-node* pairs of the process backend.  Each rank
owns one shared-memory segment (a plain file in ``/dev/shm``, mapped
with :mod:`mmap`) containing:

* one inbound SPSC **ring buffer** per potential sender — senders write
  framed envelopes directly into the receiver's segment;
* a **page pool** for the rank's outbound large payloads — a ``Blob``
  is written once into the owner's pool and every same-node receiver
  maps it zero-copy (read-only view; the copy happens only on
  ``Blob.decode``, i.e. copy-on-read);
* a **doorbell** protocol: a receiver with empty rings parks on its
  (already existing) socket reader threads; a sender that publishes a
  frame and observes the receiver's ``sleeping`` flag sends one tiny
  ``kick`` control frame over the bootstrap socket, which wakes a
  reader thread, drains every ring, and delivers into the mailbox —
  thereby waking whatever the :class:`~repro.mpi.progress.ProgressEngine`
  has parked.  Because the flag is cleared by the first kicker, a burst
  of small frames coalesces into a single kick (batching).

Memory-ordering notes (this is the subtle part): ring publication uses
monotonic u64 head/tail counters — the writer publishes ``tail`` only
after the record bytes are in place, the reader publishes ``head`` only
after copying the record out.  The sleeping-flag handshake is a Dekker
pattern (writer: publish tail, *fence*, read flag; reader: write flag,
*fence*, re-check tails), where the fence is :func:`_membarrier` — an
acquire/release of an uncontended lock, which compiles to a full
barrier on every platform CPython runs on.  Each ring record carries a
check word derived from its position counter, so a torn or misaligned
write is detected as corruption instead of being decoded as garbage.

Segments are plain ``O_CREAT|O_EXCL`` files (not
:mod:`multiprocessing.shared_memory`, whose resource tracker unlinks
attached segments from under sibling processes).  Files are sparse:
untouched ring/pool pages cost nothing, so the default 64 MiB pool is
cheap.  The owner unlinks its file on close; the launcher additionally
sweeps ``<prefix>-r*`` in :meth:`~repro.mpi.procbackend._Rendezvous.cleanup`
so a crashed child can never leak a segment.
"""

from __future__ import annotations

import bisect
import mmap
import os
import pickle
import struct
import tempfile
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import TransportError
from repro.mpi.mailbox import Envelope
from repro.mpi.serialization import Blob
from repro.mpi.topology import Topology
from repro.mpi.transport import (
    WIRE_PICKLE_PROTOCOL,
    SocketTransport,
    _SyncAck,
    encode_envelope,
)

__all__ = [
    "ShmSegment",
    "ShmRing",
    "PagePool",
    "ShmTransport",
    "ShmStats",
    "segment_dir",
    "segment_path",
    "list_segments",
    "sweep_segments",
]

_MAGIC = b"REPROSM1"
_HDR = 4096  # segment header + ring directory
_DIR_OFF = 64
_DIR_ENT = 16
_RING_CTRL = 128  # head @ +0, tail @ +64 (separate cache lines)
_PAGE = 4096

_REC = struct.Struct("<II")  # record header: payload length, check word
_WRAP = 0xFFFFFFFF  # length marker: rest of ring is padding, wrap to 0

_U64 = struct.Struct("<Q")

_fence_lock = threading.Lock()


def _membarrier() -> None:
    """Full memory fence (acquire/release of an uncontended lock).

    CPython's lock acquire is an atomic RMW — a LOCK-prefixed
    instruction on x86, an acquire/release pair elsewhere — which
    orders the store-before / load-after pairs the sleeping-flag
    doorbell handshake depends on.
    """
    with _fence_lock:
        pass


def _resolve_spin_us(spin_us: Optional[int], nprocs: int) -> int:
    """Effective poll window for this job (``WorldConfig.shm_spin_us``).

    ``None`` means auto: spin 200µs only when every rank can have its
    own core.  When ranks oversubscribe the host, a spinning reader
    steals the very cycles the sender needs to produce the frame it is
    waiting for — there, parking on the doorbell immediately is
    strictly faster (measured: 4-rank allreduce on 1 CPU drops ~33%
    with spin 0), so auto resolves to 0.
    """
    if spin_us is not None:
        return spin_us
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return 200 if nprocs <= cpus else 0


def segment_dir() -> str:
    """Directory holding shm segment files (``/dev/shm`` when present,
    the tempdir otherwise — still correct, just not guaranteed RAM)."""
    if os.path.isdir("/dev/shm"):
        return "/dev/shm"
    return tempfile.gettempdir()


def segment_path(prefix: str, rank: int, directory: Optional[str] = None) -> str:
    """Path of *rank*'s segment file under *prefix*."""
    return os.path.join(directory or segment_dir(), f"{prefix}-r{rank}")


def list_segments(prefix: str, directory: Optional[str] = None) -> List[str]:
    """Existing segment files of a job (leak-check helper for tests)."""
    d = directory or segment_dir()
    try:
        names = os.listdir(d)
    except OSError:
        return []
    return sorted(
        os.path.join(d, n) for n in names if n.startswith(f"{prefix}-r")
    )


def sweep_segments(
    prefix: str,
    directory: Optional[str] = None,
    ranks: Optional[List[int]] = None,
) -> List[str]:
    """Unlink leftover segments of a job; returns what was removed.

    Run by the launcher during rendezvous cleanup so segments cannot
    outlive the job even when a child died before unlinking its own.
    With *ranks*, only those ranks' segments are removed — the
    mid-job form used when ranks *retire* (planned departure): the
    survivors keep running, so sweeping everything would rip live
    rings out from under them.
    """
    if ranks is not None:
        paths = [
            segment_path(prefix, r, directory) for r in sorted(set(ranks))
        ]
    else:
        paths = list_segments(prefix, directory)
    removed = []
    for path in paths:
        try:
            os.unlink(path)
        except OSError:
            continue
        removed.append(path)
    return removed


# ---------------------------------------------------------------------------
# Segment: header + per-sender rings + page pool, in one mapped file
# ---------------------------------------------------------------------------


class ShmSegment:
    """One rank's shared-memory segment.

    Layout: 4 KiB header (magic, geometry, ``sleeping`` doorbell flag,
    ring directory), then one inbound ring per sender rank, then the
    owner's page pool.  The creator writes the magic **last** (behind a
    fence), so an attacher that sees the magic sees a fully initialised
    header; :meth:`attach` spins on that with a timeout, which absorbs
    the bootstrap race where a fast peer sends before a slow peer has
    created its segment.
    """

    def __init__(
        self,
        path: str,
        fd: int,
        mm: mmap.mmap,
        owner: int,
        nprocs: int,
        ring_bytes: int,
        pool_off: int,
        pool_size: int,
    ):
        self.path = path
        self._fd = fd
        self.mm = mm
        self.owner = owner
        self.nprocs = nprocs
        self.ring_bytes = ring_bytes
        self.pool_off = pool_off
        self.pool_size = pool_size
        self._closed = False

    @classmethod
    def create(
        cls,
        prefix: str,
        owner: int,
        nprocs: int,
        ring_bytes: int,
        pool_bytes: int,
        directory: Optional[str] = None,
    ) -> "ShmSegment":
        if _DIR_OFF + _DIR_ENT * nprocs > _HDR:
            raise TransportError(
                f"shm segment supports at most "
                f"{(_HDR - _DIR_OFF) // _DIR_ENT} ranks, got {nprocs}"
            )
        path = segment_path(prefix, owner, directory)
        size = _HDR + nprocs * (_RING_CTRL + ring_bytes) + pool_bytes
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
        try:
            os.ftruncate(fd, size)
            mm = mmap.mmap(fd, size)
        except OSError:
            os.close(fd)
            os.unlink(path)
            raise
        pool_off = _HDR + nprocs * (_RING_CTRL + ring_bytes)
        struct.pack_into("<II", mm, 8, nprocs, owner)
        _U64.pack_into(mm, 16, 1)  # owner starts parked: first frame kicks
        struct.pack_into("<QQQ", mm, 24, pool_off, pool_bytes, ring_bytes)
        for r in range(nprocs):
            _U64.pack_into(
                mm,
                _DIR_OFF + _DIR_ENT * r,
                _HDR + r * (_RING_CTRL + ring_bytes),
            )
        _membarrier()
        mm[0:8] = _MAGIC  # header complete; attachers may now proceed
        return cls(path, fd, mm, owner, nprocs, ring_bytes, pool_off, pool_bytes)

    @classmethod
    def attach(
        cls,
        prefix: str,
        owner: int,
        directory: Optional[str] = None,
        timeout: float = 30.0,
    ) -> "ShmSegment":
        """Map a peer's segment, waiting out its creation if need be."""
        path = segment_path(prefix, owner, directory)
        deadline = time.monotonic() + timeout
        delay = 0.002
        while True:
            fd = -1
            try:
                fd = os.open(path, os.O_RDWR)
                size = os.fstat(fd).st_size
                if size > _HDR:
                    mm = mmap.mmap(fd, size)
                    if mm[0:8] == _MAGIC:
                        nprocs, own = struct.unpack_from("<II", mm, 8)
                        pool_off, pool_size, ring_bytes = struct.unpack_from(
                            "<QQQ", mm, 24
                        )
                        return cls(
                            path, fd, mm, own, nprocs,
                            ring_bytes, pool_off, pool_size,
                        )
                    mm.close()
            except OSError:
                pass
            if fd >= 0:
                os.close(fd)
            if time.monotonic() > deadline:
                raise TransportError(
                    f"timed out attaching shm segment of rank {owner} "
                    f"({path})"
                )
            time.sleep(delay)
            delay = min(delay * 2, 0.05)

    def ring_off(self, sender: int) -> int:
        """Offset of the inbound ring written by world rank *sender*."""
        return _U64.unpack_from(self.mm, _DIR_OFF + _DIR_ENT * sender)[0]

    # -- doorbell flag ------------------------------------------------------

    def sleeping(self) -> bool:
        """True when the owner has parked and wants a doorbell kick."""
        return _U64.unpack_from(self.mm, 16)[0] != 0

    def set_sleeping(self, value: bool) -> None:
        """Publish the owner's parked/awake state (the doorbell flag)."""
        _U64.pack_into(self.mm, 16, 1 if value else 0)

    # -- lifecycle ----------------------------------------------------------

    def close(self, unlink: bool = False) -> None:
        """Unmap the segment (and unlink its file when *unlink*)."""
        if self._closed:
            return
        self._closed = True
        try:
            self.mm.close()
        except BufferError:
            # Received blobs still export buffers into this mapping;
            # leave it mapped — process exit reclaims it, and unlinking
            # the file below is independent of the mapping.
            pass
        try:
            os.close(self._fd)
        except OSError:  # pragma: no cover - defensive
            pass
        if unlink:
            try:
                os.unlink(self.path)
            except OSError:
                pass


# ---------------------------------------------------------------------------
# SPSC ring buffer over a segment region
# ---------------------------------------------------------------------------


class ShmRing:
    """Single-producer single-consumer byte ring over mapped memory.

    Positions are *monotonic* u64 counters (``head`` written only by the
    reader, ``tail`` only by the writer); the byte offset is the counter
    modulo capacity, so empty is ``head == tail`` and full needs no
    wasted slot.  A record is ``[u32 len][u32 check]payload``, padded to
    8 bytes; ``check`` is the record's start counter truncated to 32
    bits, so a reader positioned at a record that doesn't carry the
    expected check word knows the ring is corrupt (torn write, stray
    memory clobber) and raises instead of decoding garbage.  Records
    never straddle the end: a writer without room emits a ``_WRAP``
    marker (or, with less than a header of room, relies on the implicit
    skip both sides compute identically).

    Each side also keeps a *shadow* of the one counter it owns (the
    writer shadows ``tail``, the reader ``head``).  Counters are
    monotonic and single-writer, so the shadow is always authoritative;
    if the mapped word ever disagrees — observed in practice as a lost
    store when the kernel migrates a shared page under a concurrent
    writer — the owner re-asserts the shadow value and continues
    (``heals`` counts these).  A reader that sees ``tail < head``
    treats the ring as empty rather than corrupt: the writer's tail
    store was lost and is re-asserted by its next write.
    """

    __slots__ = ("_mm", "_base", "_data", "cap", "_shadow_tail",
                 "_shadow_head", "heals")

    def __init__(self, mm: mmap.mmap, base: int, cap: int):
        self._mm = mm
        self._base = base
        self._data = base + _RING_CTRL
        self.cap = cap
        self._shadow_tail: Optional[int] = None
        self._shadow_head: Optional[int] = None
        self.heals = 0

    # head/tail live on separate cache lines of the control area.

    def _head(self) -> int:
        return _U64.unpack_from(self._mm, self._base)[0]

    def _set_head(self, v: int) -> None:
        self._shadow_head = v
        _U64.pack_into(self._mm, self._base, v)

    def _tail(self) -> int:
        return _U64.unpack_from(self._mm, self._base + 64)[0]

    def _set_tail(self, v: int) -> None:
        self._shadow_tail = v
        _U64.pack_into(self._mm, self._base + 64, v)

    @property
    def max_frame(self) -> int:
        """Largest payload accepted (half the ring, minus the header)."""
        return self.cap // 2 - _REC.size

    def readable(self) -> bool:
        """True when at least one record is waiting (head != tail)."""
        return self._head() != self._tail()

    def try_write(self, payload) -> bool:
        """Append one record; False when the ring lacks space (caller
        backs off — the reader frees space by consuming)."""
        n = len(payload)
        if n > self.max_frame:
            raise TransportError(
                f"shm ring frame of {n} bytes exceeds ring capacity "
                f"budget ({self.max_frame})"
            )
        rec = _REC.size + ((n + 7) & ~7)
        tail = self._tail()
        if self._shadow_tail is None:
            self._shadow_tail = tail
        elif tail != self._shadow_tail:
            # Our own store went missing from the mapping (kernel page
            # migration under a racing writer) — the shadow is the
            # truth; re-assert it before computing anything from tail.
            tail = self._shadow_tail
            self._set_tail(tail)
            self.heals += 1
        head = self._head()  # stale reads only under-estimate free space
        if head > tail:
            # the reader's head can never pass our tail: its mapping
            # still shows a healed-away value — treat as no space and
            # let the reader's next pass re-assert head.
            return False
        off = tail - (tail // self.cap) * self.cap
        room = self.cap - off
        if room >= rec:
            skip, start = 0, off
        else:
            skip, start = room, 0
        if self.cap - (tail - head) < skip + rec:
            return False
        data = self._data
        if skip and room >= _REC.size:
            _REC.pack_into(self._mm, data + off, _WRAP, tail & 0xFFFFFFFF)
        # room < header size needs no marker: both sides skip implicitly.
        self._mm[data + start + _REC.size : data + start + _REC.size + n] = (
            payload
        )
        _REC.pack_into(self._mm, data + start, n, (tail + skip) & 0xFFFFFFFF)
        _membarrier()  # record bytes must be visible before the publish
        self._set_tail(tail + skip + rec)
        return True

    def try_read(self) -> Optional[bytes]:
        """Pop one record (copied out), or ``None`` when empty.

        Raises :class:`TransportError` on a check-word mismatch — the
        torn-write / corruption detector.
        """
        head = self._head()
        if self._shadow_head is None:
            self._shadow_head = head
        elif head != self._shadow_head:
            # our head store was lost from the mapping — re-assert it
            head = self._shadow_head
            self._set_head(head)
            self.heals += 1
        start = head
        tail = self._tail()
        _membarrier()  # tail read before record bytes (load ordering)
        if tail < head:
            # the writer's tail store was lost; it re-asserts the true
            # value on its next write — nothing readable *now*.
            return None
        while True:
            if head == tail:
                if head != start:
                    self._set_head(head)
                return None
            off = head - (head // self.cap) * self.cap
            room = self.cap - off
            if room < _REC.size:
                head += room  # implicit skip, mirrored from the writer
                continue
            n, check = _REC.unpack_from(self._mm, self._data + off)
            if n == _WRAP:
                if check != head & 0xFFFFFFFF:
                    raise TransportError(
                        f"shm ring corruption: wrap marker check "
                        f"{check:#x} != position {head & 0xFFFFFFFF:#x}"
                    )
                head += room
                continue
            if check != head & 0xFFFFFFFF or n > self.max_frame:
                window = bytes(
                    self._mm[self._data + off : self._data + off + 32]
                ).hex()
                raise TransportError(
                    f"shm ring corruption at position {head}: "
                    f"len={n} check={check:#x} "
                    f"expected check {head & 0xFFFFFFFF:#x} "
                    f"(tail={self._tail()} cap={self.cap} base={self._base} "
                    f"bytes@head={window})"
                )
            p = self._data + off + _REC.size
            payload = bytes(self._mm[p : p + n])
            head += _REC.size + ((n + 7) & ~7)
            self._set_head(head)
            return payload


# ---------------------------------------------------------------------------
# Page pool: refcounted large-payload pages in the owner's segment
# ---------------------------------------------------------------------------


class PagePool:
    """First-fit allocator over the owner's pool region.

    All metadata (free list, refcounts) lives in the *owner's process
    memory* — peers never allocate or free directly, they send ``pfree``
    control frames back to the owner, so no cross-process atomics are
    needed.  Offsets are pool-relative and 4 KiB aligned.
    """

    def __init__(self, mm: mmap.mmap, base: int, size: int):
        self._mm = mm
        self._base = base
        self.size = size
        self._lock = threading.Lock()
        self._free: List[tuple] = [(0, size)]  # (off, len), sorted by off
        self._refs: Dict[int, list] = {}  # off -> [refcount, reserved]
        # holder rank -> {off: hold count}: which *peer* each receiver
        # reference was taken for, so a peer that retires (and whose
        # pfree frames will therefore never arrive) can be force-released
        self._holds: Dict[int, Dict[int, int]] = {}

    def alloc(self, nbytes: int) -> Optional[int]:
        """Reserve a page run for *nbytes*; returns its offset with one
        reference held, or ``None`` when the pool is exhausted."""
        need = max((nbytes + _PAGE - 1) & ~(_PAGE - 1), _PAGE)
        with self._lock:
            for i, (off, ln) in enumerate(self._free):
                if ln >= need:
                    if ln == need:
                        del self._free[i]
                    else:
                        self._free[i] = (off + need, ln - need)
                    self._refs[off] = [1, need]
                    return off
        return None

    def write(self, off: int, data) -> None:
        """Copy *data* into the allocated run at pool offset *off*."""
        p = self._base + off
        self._mm[p : p + len(data)] = data

    def add_ref(self, off: int, holder: Optional[int] = None) -> None:
        """Take one extra reference on the run at *off* (fan-out reuse).

        With *holder*, the reference is tagged as held on behalf of that
        peer rank — reclaimable via :meth:`release_holder` should the
        peer retire before sending its ``pfree``.
        """
        with self._lock:
            self._refs[off][0] += 1
            if holder is not None:
                self._record_hold(off, holder)

    def note_hold(self, off: int, holder: int) -> None:
        """Tag an already-held reference (e.g. the one :meth:`alloc`
        returned) as belonging to peer rank *holder*."""
        with self._lock:
            self._record_hold(off, holder)

    def _record_hold(self, off: int, holder: int) -> None:
        holds = self._holds.setdefault(holder, {})
        holds[off] = holds.get(off, 0) + 1

    def release(self, off: int, holder: Optional[int] = None) -> None:
        """Drop one reference; frees (and coalesces) the run at zero.

        With *holder*, the drop is on behalf of that peer (a ``pfree``
        frame): if the peer's hold was already force-released by
        :meth:`release_holder` — it retired, then a straggler ``pfree``
        arrived over a cross-node socket — the drop is a no-op instead
        of an over-release.
        """
        with self._lock:
            if holder is not None and not self._drop_hold(off, holder):
                return
            self._release_locked(off)

    def _drop_hold(self, off: int, holder: int) -> bool:
        holds = self._holds.get(holder)
        if holds is None or off not in holds:
            return False
        if holds[off] <= 1:
            del holds[off]
            if not holds:
                del self._holds[holder]
        else:
            holds[off] -= 1
        return True

    def release_holder(self, holder: int) -> int:
        """Force-release every reference held on behalf of peer rank
        *holder* (it retired; its ``pfree`` frames will never come).
        Returns the number of references dropped."""
        with self._lock:
            holds = self._holds.pop(holder, None)
            if not holds:
                return 0
            dropped = 0
            for off, count in holds.items():
                for _ in range(count):
                    self._release_locked(off)
                    dropped += 1
            return dropped

    def _release_locked(self, off: int) -> None:
        ent = self._refs.get(off)
        if ent is None:
            return
        ent[0] -= 1
        if ent[0] > 0:
            return
        del self._refs[off]
        ln = ent[1]
        i = bisect.bisect_left(self._free, (off, 0))
        # merge with the successor run, then the predecessor
        if i < len(self._free) and self._free[i][0] == off + ln:
            ln += self._free[i][1]
            del self._free[i]
        if i > 0 and self._free[i - 1][0] + self._free[i - 1][1] == off:
            prev_off, prev_ln = self._free[i - 1]
            self._free[i - 1] = (prev_off, prev_ln + ln)
        else:
            self._free.insert(i, (off, ln))

    @property
    def pages_in_use(self) -> int:
        with self._lock:
            return len(self._refs)

    @property
    def bytes_free(self) -> int:
        with self._lock:
            return sum(ln for _, ln in self._free)


# ---------------------------------------------------------------------------
# The transport
# ---------------------------------------------------------------------------


@dataclass
class ShmStats:
    """Shared-memory-path counters of one :class:`ShmTransport`."""

    ring_frames_sent: int = 0
    ring_frames_received: int = 0
    ring_bytes_sent: int = 0
    ring_bytes_received: int = 0
    pages_published: int = 0
    pages_mapped: int = 0
    page_bytes_mapped: int = 0
    copies_avoided: int = 0
    kicks_sent: int = 0
    kicks_received: int = 0
    #: counter stores re-asserted after a mapped word diverged from its
    #: owner's shadow (lost store under kernel page migration)
    ring_heals: int = 0


class ShmTransport(SocketTransport):
    """Per-pair protocol selection: shm rings same-node, sockets across.

    Subclasses :class:`SocketTransport` so the bootstrap handshake,
    cross-node sends, abort broadcast, and sync-ack machinery are
    inherited unchanged; only same-node envelope traffic is rerouted
    through the rings and the page pool.  Doorbell kicks and
    cross-node frames ride the inherited sockets, which is what plugs
    ring delivery into the progress engine: a kick wakes a reader
    thread, the reader drains the rings into the mailbox, and the
    mailbox signals the parked completions.
    """

    def __init__(
        self,
        rank: int,
        nprocs: int,
        listener,
        peers: dict,
        *,
        config,
        prefix: str,
        topology: Optional[Topology] = None,
        directory: Optional[str] = None,
    ):
        super().__init__(rank, nprocs, listener, peers)
        self.kind = "shm"
        self._topology = topology or Topology.from_config(nprocs, config)
        self._prefix = prefix
        self._dir = directory or segment_dir()
        self._inline_max = config.shm_inline_max
        #: Poll window the progress engine grants a blocked rank before
        #: parking it on the doorbell (seconds; see WorldConfig.shm_spin_us).
        self.progress_poll_s = _resolve_spin_us(
            getattr(config, "shm_spin_us", None), nprocs
        ) / 1e6
        self._seg = ShmSegment.create(
            prefix,
            rank,
            nprocs,
            config.shm_ring_bytes,
            config.shm_pool_bytes,
            self._dir,
        )
        self._pool = PagePool(self._seg.mm, self._seg.pool_off, self._seg.pool_size)
        #: Inbound rings in *our* segment, one per same-node sender.
        self._rings_in = {
            r: ShmRing(self._seg.mm, self._seg.ring_off(r), self._seg.ring_bytes)
            for r in range(nprocs)
            if r != rank and self._topology.same_node(rank, r)
        }
        self._peer_segs: Dict[int, ShmSegment] = {}
        self._peer_rings: Dict[int, ShmRing] = {}
        self._ring_locks: Dict[int, threading.Lock] = {}
        self._attach_lock = threading.Lock()
        self._drain_lock = threading.Lock()
        # blob -> pool offset of its already-published page (fan-out dedup)
        self._page_cache = weakref.WeakKeyDictionary()
        self._cache_lock = threading.Lock()
        # (owner_rank, off) release requests; finalizers may only
        # *append* (atomic, lock-free) — flushing happens on transport
        # threads, never in GC context, so no reentrant-lock deadlock.
        self._release_q: deque = deque()
        self._shm = ShmStats()

    # -- routing ------------------------------------------------------------

    def _use_shm(self, dest: int) -> bool:
        return (
            dest != self.rank
            and dest in self._rings_in  # same-node by construction
        )

    def send_envelope(self, dest: int, env: Envelope) -> None:
        if dest == self.rank:
            self.deliver_local(env)
            return
        self._flush_releases()
        if not self._use_shm(dest):
            super().send_envelope(dest, env)
            return
        sync_id = self._register_sync(env)
        try:
            self._ring_send(dest, self._encode_shm(env, sync_id, dest))
        except TransportError:
            self._unregister_sync(sync_id)
            raise

    def send_control(self, dest: int, fields: tuple) -> None:
        # Acks and aborts to same-node peers take the ring too (lower
        # latency and they ride the same FIFO); kicks must NOT — they
        # are the wakeup mechanism itself, so _kick calls the socket
        # path directly.
        if self._use_shm(dest) and not self._closed.is_set():
            self._ring_send(
                dest, pickle.dumps(fields, protocol=WIRE_PICKLE_PROTOCOL)
            )
            return
        super().send_control(dest, fields)

    # -- shm send path ------------------------------------------------------

    def _encode_shm(self, env: Envelope, sync_id: int, dest: int) -> bytes:
        payload = env.payload
        if isinstance(payload, Blob) and payload.nbytes >= self._inline_max:
            desc = self._publish_blob(payload, dest)
            return pickle.dumps(
                (
                    "msgp",
                    env.context,
                    env.source,
                    env.tag,
                    env.kind,
                    env.count,
                    env.op,
                    sync_id,
                    self.rank,
                    desc,
                ),
                protocol=WIRE_PICKLE_PROTOCOL,
            )
        if (
            isinstance(payload, np.ndarray)
            and payload.nbytes >= self._inline_max
        ):
            desc = self._publish_array(payload, dest)
            return pickle.dumps(
                (
                    "msgp",
                    env.context,
                    env.source,
                    env.tag,
                    env.kind,
                    env.count,
                    env.op,
                    sync_id,
                    self.rank,
                    desc,
                ),
                protocol=WIRE_PICKLE_PROTOCOL,
            )
        return encode_envelope(env, sync_id, self.rank)

    def _publish_blob(self, blob: Blob, dest: int) -> tuple:
        """Write *blob* into our pool (once — fan-outs reuse the page)
        and return its wire descriptor with one receiver hold taken."""
        if blob.kind == "array":
            raw = memoryview(blob.data).cast("B")
            meta = (str(blob.data.dtype), blob.data.shape)
            dkind = "array"
        else:
            raw = blob.data
            meta = None
            dkind = "pickle"
        n = len(raw)
        with self._cache_lock:
            off = self._page_cache.get(blob)
        if off is None:
            off = self._alloc_blocking(n)
            self._pool.write(off, raw)
            with self._cache_lock:
                self._page_cache[blob] = off
            # the pool ref taken by alloc() is the *sender's* hold,
            # dropped when the blob itself is garbage collected
            weakref.finalize(blob, self._release_q.append, (self.rank, off))
            with self._stats_lock:
                self._shm.pages_published += 1
        else:
            with self._stats_lock:
                self._shm.copies_avoided += 1
        # the receiver's hold, dropped via pfree (or force-released
        # should the receiver retire before sending it)
        self._pool.add_ref(off, holder=dest)
        return (dkind, off, n, meta)

    def _publish_array(self, arr: np.ndarray, dest: int) -> tuple:
        """Page path for a buffer-mode ndarray payload (no dedup: the
        envelope owns a private snapshot, sent exactly once)."""
        a = np.ascontiguousarray(arr)
        n = a.nbytes
        off = self._alloc_blocking(n)  # alloc's ref is the receiver hold
        self._pool.note_hold(off, dest)
        self._pool.write(off, memoryview(a).cast("B"))
        with self._stats_lock:
            self._shm.pages_published += 1
        return ("nd", off, n, (str(a.dtype), a.shape))

    def _alloc_blocking(self, nbytes: int, timeout: float = 60.0) -> int:
        if nbytes > self._pool.size:
            raise TransportError(
                f"payload of {nbytes} bytes exceeds the shm page pool "
                f"({self._pool.size} bytes; raise WorldConfig.shm_pool_bytes)"
            )
        deadline = time.monotonic() + timeout
        delay = 0.0005
        while True:
            off = self._pool.alloc(nbytes)
            if off is not None:
                return off
            # Space frees when receivers' pfree frames reach our rings
            # and when our own dead-blob releases flush — drive both.
            self._drain()
            self._flush_releases()
            off = self._pool.alloc(nbytes)
            if off is not None:
                return off
            if time.monotonic() > deadline:
                raise TransportError(
                    f"shm page pool exhausted for {timeout:.0f}s "
                    f"(need {nbytes} bytes)"
                )
            time.sleep(delay)
            delay = min(delay * 2, 0.02)

    def _ring_send(self, dest: int, frame: bytes) -> None:
        if dest not in self._peers:
            raise TransportError(f"no address for world rank {dest}")
        if dest in self._dead_peers:
            raise TransportError(f"world rank {dest} is dead")
        ring = self._peer_ring(dest)
        lock = self._ring_locks.setdefault(dest, threading.Lock())
        deadline = None
        next_force = 0.0
        delay = 0.0002
        with lock:
            while not ring.try_write(frame):
                # Full ring: the receiver frees space by draining, so
                # make sure it is awake, then back off.  Every 50 ms of
                # sustained fullness the kick is *forced* down the
                # socket regardless of the doorbell flag — that both
                # self-heals a lost-wakeup race and probes liveness (a
                # failed kick marks the peer dead, breaking this loop
                # instead of spinning against a corpse's ring).
                now = time.monotonic()
                self._kick(dest, force=now >= next_force)
                if now >= next_force:
                    next_force = now + 0.05
                if deadline is None:
                    deadline = now + 60.0
                elif now > deadline:
                    raise TransportError(
                        f"shm ring to world rank {dest} stayed full for 60s"
                    )
                if dest in self._dead_peers:
                    raise TransportError(f"world rank {dest} is dead")
                time.sleep(delay)
                delay = min(delay * 2, 0.005)
        with self._stats_lock:
            self._shm.ring_frames_sent += 1
            self._shm.ring_bytes_sent += len(frame)
            self._stats.frames_sent += 1
            self._stats.bytes_sent += len(frame)
        self.on_wire(len(frame), 0)
        self._kick(dest)

    def _kick(self, dest: int, force: bool = False) -> None:
        """Doorbell: wake *dest* if (and only if) it is parked.

        Clearing the flag before sending makes the first kicker
        responsible for the wakeup and lets every other concurrent
        sender skip theirs — the frame-batching half of the design.
        With *force*, the socket kick goes out even when the flag says
        awake (used as a liveness probe from the backpressure loop).
        """
        seg = self._peer_segs.get(dest)
        if seg is None:  # pragma: no cover - ring exists, so seg does
            return
        _membarrier()  # our tail publish must precede the flag read
        if not seg.sleeping():
            if not force:
                return
        else:
            seg.set_sleeping(False)
        try:
            SocketTransport.send_control(self, dest, ("kick", self.rank))
            with self._stats_lock:
                self._shm.kicks_sent += 1
        except TransportError:
            pass  # peer unreachable: its death surfaces elsewhere

    def _peer_ring(self, dest: int) -> ShmRing:
        ring = self._peer_rings.get(dest)
        if ring is None:
            seg = self._attach_peer(dest)
            ring = ShmRing(seg.mm, seg.ring_off(self.rank), seg.ring_bytes)
            self._peer_rings[dest] = ring
        return ring

    def _attach_peer(self, peer: int) -> ShmSegment:
        seg = self._peer_segs.get(peer)
        if seg is not None:
            return seg
        with self._attach_lock:
            seg = self._peer_segs.get(peer)
            if seg is None:
                try:
                    seg = ShmSegment.attach(self._prefix, peer, self._dir)
                except TransportError:
                    # segment never appeared (or vanished): the peer is
                    # gone before we ever spoke to it
                    self._dead_peers.add(peer)
                    raise
                if seg.nprocs != self.nprocs or seg.owner != peer:
                    seg.close()
                    raise TransportError(
                        f"shm segment of rank {peer} has mismatched "
                        f"geometry (owner={seg.owner} nprocs={seg.nprocs})"
                    )
                self._peer_segs[peer] = seg
        return seg

    # -- shm receive path ---------------------------------------------------

    def _drain(self, rearm: bool = True) -> None:
        """Drain every inbound ring into the local mailbox.

        Runs on whichever thread got the kick, a sender blocked on the
        pool, or a blocked rank polling via :meth:`poll`; serialised by
        ``_drain_lock``.  The re-arm protocol (set ``sleeping``, fence,
        re-check) pairs with the sender's publish-fence-read so a frame
        published during re-arm is either seen by the final pass here
        or triggers a fresh kick there.  With ``rearm=False`` (the poll
        path) the doorbell stays disarmed — the caller promises to keep
        polling, so senders can skip their kicks meanwhile.
        """
        if not self._rings_in or self._closed.is_set():
            return
        with self._drain_lock:
            if self._closed.is_set():
                return
            seg = self._seg
            try:
                while True:
                    seg.set_sleeping(False)
                    progressed = True
                    while progressed:
                        progressed = False
                        for ring in self._rings_in.values():
                            while True:
                                payload = ring.try_read()
                                if payload is None:
                                    break
                                progressed = True
                                with self._stats_lock:
                                    self._shm.ring_frames_received += 1
                                    self._shm.ring_bytes_received += len(
                                        payload
                                    )
                                    self._stats.frames_received += 1
                                    self._stats.bytes_received += len(payload)
                                self.on_wire(0, len(payload))
                                self._dispatch(pickle.loads(payload))
                    if not rearm:
                        return
                    seg.set_sleeping(True)
                    _membarrier()  # re-arm must precede the final check
                    if not any(
                        r.readable() for r in self._rings_in.values()
                    ):
                        return
            except TransportError as exc:
                self._debug_dump(exc)
                self.on_error(exc)

    def _debug_dump(self, exc: Exception) -> None:
        """Write a forensic segment snapshot when REPRO_SHM_DEBUG is set
        (diagnosis aid for ring-corruption reports; no-op otherwise)."""
        path = os.environ.get("REPRO_SHM_DEBUG")
        if not path:
            return
        try:
            seg = self._seg
            with open(f"{path}.rank{self.rank}.{os.getpid()}", "w") as fh:
                fh.write(f"error: {exc}\nsegment: {seg.path}\n")
                fh.write(f"stat: {os.stat(seg.path)}\n")
                fh.write(f"fstat: {os.fstat(seg._fd)}\n")
                fh.write(f"header: {bytes(seg.mm[:128]).hex()}\n")
                for r, ring in self._rings_in.items():
                    b = ring._base
                    fh.write(
                        f"ring[{r}] base={b} head={ring._head()} "
                        f"tail={ring._tail()}\n"
                        f"  ctrl:  {bytes(seg.mm[b : b + 128]).hex()}\n"
                        f"  data0: {bytes(seg.mm[b + 128 : b + 384]).hex()}\n"
                    )
                    h = ring._head()
                    off = h - (h // ring.cap) * ring.cap
                    p = b + 128 + (off & ~63)
                    fh.write(f"  @head({h}): {bytes(seg.mm[p : p + 256]).hex()}\n")
        except Exception:
            pass

    # -- progress-engine integration ---------------------------------------

    def poll(self) -> None:
        """One non-blocking progress step from a blocked rank's thread.

        The progress engine calls this in a bounded loop (the
        ``shm_spin_us`` window) before parking a rank: the rank drains
        its own rings on *its own* thread, so in steady-state exchange
        a message and its reply never pay the socket-doorbell round
        trip or a reader-thread wakeup.  The doorbell stays disarmed
        between polls; :meth:`prepare_park` re-arms it.
        """
        self._drain(rearm=False)
        self._flush_releases()

    def prepare_park(self) -> None:
        """Re-arm the doorbell after a poll window, before the rank
        parks: set ``sleeping``, fence, and take a final drain pass so
        a frame that raced the re-arm is not stranded until timeout."""
        self._drain(rearm=True)

    def _dispatch(self, fields: tuple) -> None:
        tag = fields[0]
        if tag == "kick":
            with self._stats_lock:
                self._shm.kicks_received += 1
            self._drain()
        elif tag == "pfree":
            for off in fields[2]:
                self._pool.release(off, holder=fields[1])
        elif tag == "msgp":
            env, sync_id, from_rank = self._decode_page_msg(fields)
            if sync_id:
                env.sync_event = _SyncAck(self, from_rank, sync_id)
            self.deliver_local(env)
        else:
            super()._dispatch(fields)

    def _decode_page_msg(self, fields: tuple):
        """Rebuild an envelope whose payload lives in the sender's pool.

        The payload is *mapped*, not copied: a read-only view into the
        sender's segment.  A finalizer on the mapped object queues a
        ``pfree`` back to the owner when the receiver drops it — the
        refcounted-page half of the zero-copy design.  Mutation safety
        comes from read-only views plus copy-on-read in
        :meth:`Blob.decode` (and the buffer-delivery copy in the comm
        layer).
        """
        (_, context, source, tag, kind, count, op,
         sync_id, from_rank, desc) = fields
        dkind, off, nbytes, meta = desc
        seg = self._attach_peer(from_rank)
        abs_off = seg.pool_off + off
        if dkind == "pickle":
            holder = payload = Blob(
                "pickle", memoryview(seg.mm)[abs_off : abs_off + nbytes], nbytes
            )
        else:
            dt = np.dtype(meta[0])
            arr = np.frombuffer(
                seg.mm, dtype=dt, count=nbytes // dt.itemsize, offset=abs_off
            ).reshape(meta[1])
            arr.flags.writeable = False
            if dkind == "array":
                holder = payload = Blob("array", arr, nbytes)
            else:  # "nd": buffer-mode ndarray payload
                holder = payload = arr
        weakref.finalize(holder, self._release_q.append, (from_rank, off))
        with self._stats_lock:
            self._shm.pages_mapped += 1
            self._shm.page_bytes_mapped += nbytes
        env = Envelope(context, source, tag, payload, kind, count, op=op)
        return env, sync_id, from_rank

    def _flush_releases(self) -> None:
        """Turn queued finalizer releases into pool frees / pfree frames."""
        q = self._release_q
        if not q:
            return
        remote: Dict[int, list] = {}
        while True:
            try:
                owner, off = q.popleft()
            except IndexError:
                break
            if owner == self.rank:
                self._pool.release(off)
            else:
                remote.setdefault(owner, []).append(off)
        for owner, offs in remote.items():
            try:
                self._ring_send(
                    owner,
                    pickle.dumps(
                        ("pfree", self.rank, offs),
                        protocol=WIRE_PICKLE_PROTOCOL,
                    ),
                )
            except TransportError:
                pass  # owner is gone; its segment dies with it

    # -- failure detection --------------------------------------------------

    def _frame_origin(self, fields: tuple) -> int:
        t = fields[0]
        if t in ("kick", "pfree"):
            return fields[1]
        if t == "msgp":
            return fields[8]
        return super()._frame_origin(fields)

    # -- lifecycle / introspection ------------------------------------------

    def forget_peer(self, peer: int) -> None:
        """Invalidate every cached resource of a *retired* peer.

        On top of the socket-side cleanup (connection, send lock,
        address), a same-node peer leaves behind: its inbound ring in
        our segment, our cached mapping of *its* segment (outbound ring
        + mapped pages), and pool references we hold on its behalf for
        pages it never ``pfree``'d.  All of it must go — the rank is
        gone by agreement, so nothing will ever arrive from it, and
        keeping its holds would leak pool space for the rest of the job.
        """
        super().forget_peer(peer)
        with self._drain_lock:
            self._rings_in.pop(peer, None)
            self._peer_rings.pop(peer, None)
            self._ring_locks.pop(peer, None)
            seg = self._peer_segs.pop(peer, None)
            if seg is not None:
                # close() tolerates still-exported buffers (a received
                # blob the program kept); the mapping then lives until
                # those views die, but we stop routing through it now.
                seg.close()
        self._pool.release_holder(peer)
        # Queued releases owed to the departed owner would ring-send
        # into nothing; its whole pool dies with its segment, so just
        # drop them.  Bounded pass: finalizers may append concurrently,
        # and both ends of a deque are safe against that.
        q = self._release_q
        for _ in range(len(q)):
            try:
                ent = q.popleft()
            except IndexError:
                break
            if ent[0] != peer:
                q.append(ent)

    def close(self) -> None:
        """Flush page releases, close sockets, unmap and unlink segments."""
        if self._closed.is_set():
            return
        try:
            self._flush_releases()
        except TransportError:  # pragma: no cover - peers already gone
            pass
        super().close()
        # Serialise against an in-flight _drain (a late kick may still
        # be dispatching on a reader thread): the lock plus the closed
        # flag guarantee no one touches the maps after they're gone.
        with self._drain_lock:
            for seg in self._peer_segs.values():
                seg.close()
            self._seg.close(unlink=True)

    def shm_stats(self) -> ShmStats:
        """Snapshot of ring/pool counters (plus live ring heal totals)."""
        with self._stats_lock:
            stats = ShmStats(**vars(self._shm))
        stats.ring_heals = sum(
            r.heals for r in self._rings_in.values()
        ) + sum(r.heals for r in self._peer_rings.values())
        return stats

    @property
    def pool(self) -> PagePool:
        """The owner-side page pool (test/bench introspection)."""
        return self._pool
