"""Simulated MPI substrate: threads as processes, mpi4py-style API.

This package provides everything MPH needs from an MPI library —
``COMM_WORLD``, tagged point-to-point messaging with wildcards, the full
collective suite, groups, and above all ``Comm.split`` — implemented over
per-process mailboxes with MPI matching semantics.  See
:mod:`repro.mpi.world` for the safety nets (abort propagation and deadlock
detection) and :mod:`repro.mpi.collectives` for the algorithm menu.

Typical SPMD use::

    from repro import mpi

    def main(comm):
        data = comm.allgather(comm.rank ** 2)
        return data

    results = mpi.run_spmd(4, main)
"""

from repro.mpi.cartesian import CartComm, create_cart, dims_create
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL, TAG_UB, UNDEFINED
from repro.mpi.group import Group
from repro.mpi.intercomm import InterComm, create_intercomm
from repro.mpi.comm import Comm, make_world_comm
from repro.mpi.executor import ProcResult, run_spmd, run_world
from repro.mpi.faults import FaultSchedule, SimulatedCrash, random_schedule
from repro.mpi.reduce_ops import (
    BAND,
    BOR,
    BXOR,
    LAND,
    LOR,
    LXOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    PROD,
    SUM,
    Op,
)
from repro.mpi.persistent import PersistentRecv, PersistentSend, Prequest
from repro.mpi.sched import (
    ExplorationReport,
    MatchSchedule,
    MatchTrace,
    SeedOutcome,
    TraceRecorder,
    explore,
    minimize,
    parse_repro_command,
    repro_command,
)
from repro.mpi.procbackend import ProcessWorld, run_exec_job, run_procs
from repro.mpi.progress import Completion, ProgressEngine, RankProgress, Waitset
from repro.mpi.request import Request
from repro.mpi.serialization import Blob, payload_nbytes
from repro.mpi.shm import PagePool, ShmRing, ShmSegment, ShmStats, ShmTransport
from repro.mpi.status import Status
from repro.mpi.topology import CommHierarchy, Topology
from repro.mpi.transport import (
    FrameDecoder,
    SocketTransport,
    ThreadTransport,
    Transport,
    TransportStats,
    pack_frame,
)
from repro.mpi.world import TrafficStats, World, WorldConfig

__all__ = [
    "CartComm",
    "create_cart",
    "dims_create",
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "TAG_UB",
    "UNDEFINED",
    "Group",
    "InterComm",
    "create_intercomm",
    "Comm",
    "make_world_comm",
    "ProcResult",
    "run_spmd",
    "run_world",
    "FaultSchedule",
    "SimulatedCrash",
    "random_schedule",
    "Op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "LXOR",
    "BAND",
    "BOR",
    "BXOR",
    "MAXLOC",
    "MINLOC",
    "Prequest",
    "PersistentSend",
    "PersistentRecv",
    "MatchSchedule",
    "MatchTrace",
    "TraceRecorder",
    "ExplorationReport",
    "SeedOutcome",
    "explore",
    "minimize",
    "repro_command",
    "parse_repro_command",
    "Blob",
    "payload_nbytes",
    "Completion",
    "ProgressEngine",
    "RankProgress",
    "Waitset",
    "ProcessWorld",
    "run_procs",
    "run_exec_job",
    "Transport",
    "ThreadTransport",
    "SocketTransport",
    "ShmTransport",
    "ShmSegment",
    "ShmRing",
    "PagePool",
    "ShmStats",
    "Topology",
    "CommHierarchy",
    "TransportStats",
    "FrameDecoder",
    "pack_frame",
    "Request",
    "Status",
    "TrafficStats",
    "World",
    "WorldConfig",
]
