"""Nonblocking communication requests (the ``MPI_Request`` analogue).

``isend`` in this substrate is *eager*: the message is delivered into the
destination mailbox before the call returns, so send requests are born
complete (real MPI behaves this way for small messages).  ``irecv`` posts a
receive immediately — matching order is the MPI posted-receive order — and
the request completes when a matching envelope arrives.

``waitany``/``waitsome`` aggregate mixed request lists through the world's
:class:`~repro.mpi.progress.ProgressEngine`: in event mode the caller
parks on one waitset subscribed to every incomplete request's completion
token and is woken exactly once per relevant event (completion, abort,
deadlock).  Under the legacy polling engine they keep the short-sleep
retry loop, but now abort-aware even when no incomplete request is a
receive.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from repro.errors import CommError
from repro.mpi.mailbox import Envelope, Mailbox, PostedRecv
from repro.mpi.progress import Completion
from repro.mpi.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import World

#: Polling-engine retry sleep for ``waitany``/``waitsome`` (seconds).
_POLL_BACKOFF = 0.0005


def _check_no_duplicates(requests: Sequence["Request"], what: str) -> None:
    """The same request handle twice in one wait list would hand out the
    same completion twice; MPI calls this erroneous, we raise."""
    seen: set[int] = set()
    for req in requests:
        if id(req) in seen:
            raise CommError(f"duplicate request handle in {what} list")
        seen.add(id(req))


def _progress_site(requests: Sequence["Request"]):
    """The ``(world, rank)`` to block on, from the first request that has
    one (``None`` for lists of detached/complete requests)."""
    for req in requests:
        site = req._site()
        if site is not None:
            return site
    return None


def _sched_site(requests: Sequence["Request"]):
    """``(match_schedule, rank)`` when the requests' world has one armed,
    else ``None`` (the disabled hook is this one lookup + branch)."""
    site = _progress_site(requests)
    if site is None:
        return None
    world, rank = site
    sched = world.config.match_schedule
    if sched is None:
        return None
    return sched, rank


def _park_any(requests: Sequence["Request"], what: str) -> bool:
    """Block until some incomplete request *may* have completed.

    Returns True when the caller should re-test (event park or abort
    check done), False when it should sleep-and-retry (no world found or
    some incomplete request cannot signal a completion).  Raises on abort
    or deadlock either way when a world is known.
    """
    site = _progress_site(requests)
    if site is None:
        return False
    world, rank = site
    if not world.progress.event_mode:
        # Polling engine: stay on the short-sleep loop, but never spin
        # past an abort (this is what makes all-send lists abort-aware).
        world.check_abort()
        world.maybe_detect_deadlock()
        return False
    completions = []
    for req in requests:
        token = req.completion()
        if token is not None:
            completions.append(token)
    if not completions:
        world.check_abort()
        return False
    world.progress.wait(completions, rank, what)
    return True


class Request:
    """Base class for nonblocking-operation handles."""

    def wait(self, status: Optional[Status] = None) -> Any:
        """Block until the operation completes; return its value (the
        received object for receives, ``None`` for sends)."""
        raise NotImplementedError

    def test(self, status: Optional[Status] = None) -> tuple[bool, Any]:
        """Nonblocking completion check: ``(done, value)``.  ``value`` is
        meaningful only when ``done`` is true."""
        raise NotImplementedError

    def cancel(self) -> bool:
        """Attempt to cancel; returns True on success.  Only unmatched
        receives can be cancelled."""
        return False

    def completion(self) -> Optional[Completion]:
        """The token signalled when this request completes, or ``None``
        when the request has no pending completion to park on (eager
        sends, inactive persistent requests)."""
        return None

    def _site(self) -> Optional[tuple["World", int]]:
        """The ``(world, rank)`` this request blocks on, if any."""
        return None

    # mpi4py-style aliases -------------------------------------------------

    def Wait(self, status: Optional[Status] = None) -> Any:
        """Alias of :meth:`wait` (mpi4py naming)."""
        return self.wait(status)

    def Test(self, status: Optional[Status] = None) -> tuple[bool, Any]:
        """Alias of :meth:`test` (mpi4py naming)."""
        return self.test(status)

    @staticmethod
    def waitall(requests: Sequence["Request"]) -> list[Any]:
        """Wait for every request; return their values in order."""
        return [req.wait() for req in requests]

    @staticmethod
    def testall(requests: Sequence["Request"]) -> tuple[bool, list[Any]]:
        """Test all requests; ``(all_done, values)`` with values meaningful
        only when ``all_done``.  Does not consume incomplete requests."""
        results = [req.test() for req in requests]
        done = all(flag for flag, _ in results)
        return done, ([value for _, value in results] if done else [])

    @staticmethod
    def waitany(requests: Sequence["Request"]) -> tuple[int, Any]:
        """Block until any request completes; ``(index, value)``
        (``MPI_Waitany``).  Event mode parks on one waitset over every
        incomplete request; polling mode retries with a short back-off.
        Under an armed :class:`~repro.mpi.sched.MatchSchedule` the
        returned request is schedule-chosen among everything already
        complete (the index MPI leaves unspecified when several are).
        Raises :class:`CommError` on duplicate handles in the list."""
        if not requests:
            raise ValueError("waitany needs at least one request")
        _check_no_duplicates(requests, "waitany")
        sched_site = _sched_site(requests)
        if sched_site is not None:
            done = Request._await_some(requests, "waitany")
            if len(done) == 1:
                return done[0]
            sched, rank = sched_site
            idx = sched.choose_wait("waitany", rank, tuple(i for i, _ in done))
            return done[idx]
        while True:
            for i, req in enumerate(requests):
                done, value = req.test()
                if done:
                    return i, value
            if not _park_any(requests, f"waitany({len(requests)} requests)"):
                _time.sleep(_POLL_BACKOFF)

    @staticmethod
    def waitsome(requests: Sequence["Request"]) -> list[tuple[int, Any]]:
        """Block until at least one request completes; return every
        completed ``(index, value)`` (``MPI_Waitsome``).  Under an armed
        :class:`~repro.mpi.sched.MatchSchedule` the returned list is
        rotated to a schedule-chosen head — the completion *order* is
        exactly what MPI leaves unspecified.  Raises :class:`CommError`
        on duplicate handles in the list."""
        if not requests:
            raise ValueError("waitsome needs at least one request")
        _check_no_duplicates(requests, "waitsome")
        sched_site = _sched_site(requests)
        if sched_site is not None:
            done = Request._await_some(requests, "waitsome")
            if len(done) == 1:
                return done
            sched, rank = sched_site
            idx = sched.choose_wait("waitsome", rank, tuple(i for i, _ in done))
            return done[idx:] + done[:idx]
        while True:
            done = [
                (i, value)
                for i, (flag, value) in enumerate(req.test() for req in requests)
                if flag
            ]
            if done:
                return done
            if not _park_any(requests, f"waitsome({len(requests)} requests)"):
                _time.sleep(_POLL_BACKOFF)

    @staticmethod
    def _await_some(
        requests: Sequence["Request"], what: str
    ) -> list[tuple[int, Any]]:
        """Scheduled-mode helper: block until at least one request is
        complete, then return *every* completed ``(index, value)`` —
        the full choice set the schedule picks from."""
        while True:
            done = [
                (i, value)
                for i, (flag, value) in enumerate(req.test() for req in requests)
                if flag
            ]
            if done:
                return done
            if not _park_any(requests, f"{what}({len(requests)} requests)"):
                _time.sleep(_POLL_BACKOFF)


class SendRequest(Request):
    """A completed (eager) send."""

    __slots__ = ()

    def wait(self, status: Optional[Status] = None) -> None:
        return None

    def test(self, status: Optional[Status] = None) -> tuple[bool, Any]:
        return True, None


class RecvRequest(Request):
    """A posted receive awaiting its match."""

    __slots__ = ("_mailbox", "_posted", "_finish", "_what", "_value", "_done")

    def __init__(
        self,
        mailbox: Mailbox,
        posted: PostedRecv,
        finish: Callable[[Envelope], Any],
        what: str,
    ):
        self._mailbox = mailbox
        self._posted = posted
        #: Decodes the envelope into the user-visible value (unpickle for
        #: object mode, buffer copy for buffer mode).
        self._finish = finish
        self._what = what
        self._value: Any = None
        self._done = False

    def _complete(self, env: Envelope, status: Optional[Status]) -> Any:
        if not self._done:
            self._value = self._finish(env)
            self._done = True
        if status is not None:
            status.source = env.source
            status.tag = env.tag
            status.count = env.count
        return self._value

    def _check_cancelled(self) -> None:
        if self._posted.cancelled:
            raise CommError(
                f"request was cancelled, its message can never arrive: {self._what}"
            )

    def wait(self, status: Optional[Status] = None) -> Any:
        if self._done:
            env = self._posted.envelope
            assert env is not None
            return self._complete(env, status)
        self._check_cancelled()
        env = self._mailbox.wait(self._posted, self._what)
        return self._complete(env, status)

    def test(self, status: Optional[Status] = None) -> tuple[bool, Any]:
        self._mailbox.check_abort()
        self._check_cancelled()
        env = self._posted.envelope
        if env is None:
            # A receive doomed by a dead sender or a revoked communicator
            # must raise here, not report "incomplete" forever.
            Mailbox._check_doomed(self._posted, self._what)
            return False, None
        return True, self._complete(env, status)

    def cancel(self) -> bool:
        return self._mailbox.cancel(self._posted)

    def completion(self) -> Optional[Completion]:
        return self._posted.completion

    def _site(self) -> Optional[tuple["World", int]]:
        return self._mailbox.world, self._mailbox.owner
