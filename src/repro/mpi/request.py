"""Nonblocking communication requests (the ``MPI_Request`` analogue).

``isend`` in this substrate is *eager*: the message is delivered into the
destination mailbox before the call returns, so send requests are born
complete (real MPI behaves this way for small messages).  ``irecv`` posts a
receive immediately — matching order is the MPI posted-receive order — and
the request completes when a matching envelope arrives.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.mpi.mailbox import Envelope, Mailbox, PostedRecv
from repro.mpi.status import Status


class Request:
    """Base class for nonblocking-operation handles."""

    def wait(self, status: Optional[Status] = None) -> Any:
        """Block until the operation completes; return its value (the
        received object for receives, ``None`` for sends)."""
        raise NotImplementedError

    def test(self, status: Optional[Status] = None) -> tuple[bool, Any]:
        """Nonblocking completion check: ``(done, value)``.  ``value`` is
        meaningful only when ``done`` is true."""
        raise NotImplementedError

    def cancel(self) -> bool:
        """Attempt to cancel; returns True on success.  Only unmatched
        receives can be cancelled."""
        return False

    # mpi4py-style aliases -------------------------------------------------

    def Wait(self, status: Optional[Status] = None) -> Any:
        """Alias of :meth:`wait` (mpi4py naming)."""
        return self.wait(status)

    def Test(self, status: Optional[Status] = None) -> tuple[bool, Any]:
        """Alias of :meth:`test` (mpi4py naming)."""
        return self.test(status)

    @staticmethod
    def waitall(requests: Sequence["Request"]) -> list[Any]:
        """Wait for every request; return their values in order."""
        return [req.wait() for req in requests]

    @staticmethod
    def testall(requests: Sequence["Request"]) -> tuple[bool, list[Any]]:
        """Test all requests; ``(all_done, values)`` with values meaningful
        only when ``all_done``.  Does not consume incomplete requests."""
        results = [req.test() for req in requests]
        done = all(flag for flag, _ in results)
        return done, ([value for _, value in results] if done else [])

    @staticmethod
    def waitany(requests: Sequence["Request"]) -> tuple[int, Any]:
        """Block until any request completes; ``(index, value)``
        (``MPI_Waitany``).  Polls with a short back-off, abort-aware
        through the underlying receives."""
        import time as _time

        if not requests:
            raise ValueError("waitany needs at least one request")
        while True:
            for i, req in enumerate(requests):
                done, value = req.test()
                if done:
                    return i, value
            _time.sleep(0.0005)

    @staticmethod
    def waitsome(requests: Sequence["Request"]) -> list[tuple[int, Any]]:
        """Block until at least one request completes; return every
        completed ``(index, value)`` (``MPI_Waitsome``)."""
        import time as _time

        if not requests:
            raise ValueError("waitsome needs at least one request")
        while True:
            done = [
                (i, value)
                for i, (flag, value) in enumerate(req.test() for req in requests)
                if flag
            ]
            if done:
                return done
            _time.sleep(0.0005)


class SendRequest(Request):
    """A completed (eager) send."""

    __slots__ = ()

    def wait(self, status: Optional[Status] = None) -> None:
        return None

    def test(self, status: Optional[Status] = None) -> tuple[bool, Any]:
        return True, None


class RecvRequest(Request):
    """A posted receive awaiting its match."""

    __slots__ = ("_mailbox", "_posted", "_finish", "_what", "_value", "_done")

    def __init__(
        self,
        mailbox: Mailbox,
        posted: PostedRecv,
        finish: Callable[[Envelope], Any],
        what: str,
    ):
        self._mailbox = mailbox
        self._posted = posted
        #: Decodes the envelope into the user-visible value (unpickle for
        #: object mode, buffer copy for buffer mode).
        self._finish = finish
        self._what = what
        self._value: Any = None
        self._done = False

    def _complete(self, env: Envelope, status: Optional[Status]) -> Any:
        if not self._done:
            self._value = self._finish(env)
            self._done = True
        if status is not None:
            status.source = env.source
            status.tag = env.tag
            status.count = env.count
        return self._value

    def wait(self, status: Optional[Status] = None) -> Any:
        if self._done:
            env = self._posted.envelope
            assert env is not None
            return self._complete(env, status)
        env = self._mailbox.wait(self._posted, self._what)
        return self._complete(env, status)

    def test(self, status: Optional[Status] = None) -> tuple[bool, Any]:
        self._mailbox.check_abort()
        env = self._posted.envelope
        if env is None:
            return False, None
        return True, self._complete(env, status)

    def cancel(self) -> bool:
        return self._mailbox.cancel(self._posted)
