"""The shared state of one simulated MPI job: the *world*.

A :class:`World` owns the mailboxes of all processes, allocates communicator
context ids, records per-process liveness and blocking state, and implements
the two safety nets real MPI lacks:

* **abort propagation** — when any process raises, every blocked sibling is
  woken with :class:`~repro.errors.AbortError` instead of hanging the job;
* **deadlock detection** — when every live process is blocked and no message
  has moved for a grace period, the world declares deadlock and reports what
  each rank was blocked on.

Algorithm selection for the collectives lives in :class:`WorldConfig` so
benchmarks can ablate (e.g. linear vs binomial-tree broadcast).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import AbortError, DeadlockError
from repro.mpi.mailbox import Mailbox


@dataclass
class TrafficStats:
    """Aggregate message-traffic counters of one world.

    ``messages``/``payload_bytes`` count every delivered envelope;
    ``by_kind`` splits by transport ("object" = pickled, "buffer" =
    point-to-point numpy, "bufcoll" = buffer-mode collective).
    ``copy_avoided_bytes`` counts payload bytes delivered by *reusing* an
    existing encoding instead of producing a fresh one — the savings of
    the zero-copy serialization fast path (pickle-once fan-outs and
    relay-without-reencode forwards; see :mod:`repro.mpi.serialization`).
    The counters make algorithmic message complexity *testable* — e.g. a
    linear broadcast on P ranks must deliver exactly P-1 messages.
    """

    messages: int = 0
    payload_bytes: int = 0
    by_kind: dict = field(default_factory=dict)
    copy_avoided_bytes: int = 0

    def snapshot(self) -> "TrafficStats":
        """A copy safe to compare against later counts."""
        return TrafficStats(
            self.messages, self.payload_bytes, dict(self.by_kind), self.copy_avoided_bytes
        )

    def since(self, earlier: "TrafficStats") -> "TrafficStats":
        """Traffic recorded after *earlier* was snapshotted."""
        kinds = {
            k: self.by_kind.get(k, 0) - earlier.by_kind.get(k, 0)
            for k in set(self.by_kind) | set(earlier.by_kind)
        }
        return TrafficStats(
            self.messages - earlier.messages,
            self.payload_bytes - earlier.payload_bytes,
            {k: v for k, v in kinds.items() if v},
            self.copy_avoided_bytes - earlier.copy_avoided_bytes,
        )


@dataclass
class WorldConfig:
    """Tunable behaviour of a simulated world.

    Attributes
    ----------
    bcast_algorithm :
        ``"binomial"`` (tree, O(log P) rounds) or ``"linear"`` (root sends
        to every rank).  Ablation target for the substrate benchmarks.
    reduce_algorithm :
        ``"binomial"`` or ``"linear"``.
    allreduce_algorithm :
        ``"recursive_doubling"`` or ``"reduce_bcast"``.
    allgather_algorithm :
        ``"ring"`` or ``"gather_bcast"``.
    barrier_algorithm :
        ``"dissemination"`` or ``"linear"``.
    validate_collectives :
        When true, every collective message carries an operation header that
        is checked on receipt; mismatched collective calls across ranks then
        raise :class:`~repro.errors.CollectiveMismatchError` instead of
        producing garbage.
    serialization_fastpath :
        Enable the zero-copy serialization fast path
        (:mod:`repro.mpi.serialization`): objects are encoded **once** per
        collective fan-out and the bytes shared across all destination
        envelopes, tree relays forward received bytes verbatim instead of
        unpickling and re-pickling at every hop, and contiguous numpy
        arrays travel as read-only snapshots with copy-on-final-delivery
        instead of pickles.  Observable results are identical either way
        (value semantics are preserved); the flag exists so benchmarks can
        ablate the legacy pickle-per-destination cost model.
    rearranger_fastpath :
        Route :class:`repro.core.rearranger.Rearranger` traffic over the
        buffer-mode hot path: persistent ``Send_init``/``Recv_init``
        requests bound to preallocated staging buffers, with the
        ``(lo, hi)`` row header packed as a fixed-size prefix instead of a
        pickled tuple.  Off reproduces the object-mode pickled path.
    deadlock_detection :
        Enable the all-blocked watchdog.
    deadlock_grace :
        Seconds of global inactivity with every process blocked before
        deadlock is declared.
    wait_slice :
        Poll interval (seconds) of blocked waiters — how often a blocked
        receive wakes to re-check for aborts and run the deadlock
        watchdog.  Lower values propagate aborts faster at the cost of
        more wakeups; benchmarks ablate the trade-off.
    max_components_per_executable :
        The paper's Section 4.3 limit ("Each executable could contain up to
        10 components") — consulted by MPH, carried here so one config object
        travels with the job.
    """

    bcast_algorithm: str = "binomial"
    reduce_algorithm: str = "binomial"
    allreduce_algorithm: str = "recursive_doubling"
    allgather_algorithm: str = "ring"
    barrier_algorithm: str = "dissemination"
    validate_collectives: bool = True
    serialization_fastpath: bool = True
    rearranger_fastpath: bool = True
    deadlock_detection: bool = True
    deadlock_grace: float = 1.0
    wait_slice: float = 0.05
    max_components_per_executable: int = 10


class World:
    """Shared infrastructure for ``nprocs`` simulated MPI processes."""

    def __init__(self, nprocs: int, config: WorldConfig | None = None):
        if nprocs < 1:
            raise ValueError(f"world size must be >= 1, got {nprocs}")
        #: Number of processes in the world (never changes).
        self.nprocs = nprocs
        #: Behaviour knobs shared by every communicator of this world.
        self.config = config or WorldConfig()
        #: One mailbox per process, indexed by world rank.
        self.mailboxes = [Mailbox(self, r) for r in range(nprocs)]

        # Context ids: 0/1 are reserved for COMM_WORLD's p2p/collective
        # traffic; communicator-creating operations allocate pairs above.
        self._ctx_lock = threading.Lock()
        self._next_ctx = 2

        self._state_lock = threading.Lock()
        self._alive: set[int] = set(range(nprocs))
        self._blocked: dict[int, str] = {}
        self._activity = 0
        self._last_activity = time.monotonic()

        self._abort_lock = threading.Lock()
        self._abort_exc: AbortError | None = None

        self._traffic_lock = threading.Lock()
        #: Aggregate traffic counters (read via :meth:`traffic_snapshot`).
        self.traffic = TrafficStats()

    # -- context ids --------------------------------------------------------

    def alloc_context_pair(self) -> tuple[int, int]:
        """Allocate a fresh ``(p2p, collective)`` context-id pair.

        Allocation is done by a single agreeing process (e.g. the root of a
        ``Split``) and distributed to the members, so ids are consistent
        across a new communicator by construction.
        """
        with self._ctx_lock:
            pair = (self._next_ctx, self._next_ctx + 1)
            self._next_ctx += 2
            return pair

    # -- traffic accounting ---------------------------------------------------

    def record_traffic(self, kind: str, nbytes: int, copy_avoided: int = 0) -> None:
        """Count one delivered envelope (called by the mailboxes).

        *copy_avoided* is the number of payload bytes this delivery reused
        from an already-existing encoding (zero-copy fast path).
        """
        with self._traffic_lock:
            self.traffic.messages += 1
            self.traffic.payload_bytes += nbytes
            self.traffic.by_kind[kind] = self.traffic.by_kind.get(kind, 0) + 1
            self.traffic.copy_avoided_bytes += copy_avoided

    def traffic_snapshot(self) -> TrafficStats:
        """A consistent copy of the traffic counters."""
        with self._traffic_lock:
            return self.traffic.snapshot()

    # -- activity / liveness tracking ----------------------------------------

    def note_activity(self) -> None:
        """Record message movement (delivery or match) for the watchdog."""
        with self._state_lock:
            self._activity += 1
            self._last_activity = time.monotonic()

    def block_enter(self, rank: int, what: str) -> None:
        """Mark *rank* as blocked in the call described by *what*."""
        with self._state_lock:
            self._blocked[rank] = what

    def block_exit(self, rank: int) -> None:
        """Mark *rank* as running again."""
        with self._state_lock:
            self._blocked.pop(rank, None)

    def proc_done(self, rank: int) -> None:
        """Mark *rank* as finished (returned or raised)."""
        with self._state_lock:
            self._alive.discard(rank)
            self._blocked.pop(rank, None)

    # -- abort handling -------------------------------------------------------

    def abort(self, exc: AbortError) -> None:
        """Abort the world: record *exc* (first abort wins) and wake every
        blocked process so it can observe the abort and unwind."""
        with self._abort_lock:
            if self._abort_exc is None:
                self._abort_exc = exc
        for mb in self.mailboxes:
            mb.wake()

    @property
    def aborted(self) -> bool:
        """Whether the world has been aborted."""
        return self._abort_exc is not None

    def check_abort(self) -> None:
        """Raise the recorded :class:`AbortError` if the world aborted."""
        exc = self._abort_exc
        if exc is not None:
            raise AbortError(str(exc), origin_rank=exc.origin_rank)

    def wait_event(self, event: threading.Event, rank: int, what: str) -> None:
        """Abort-aware, deadlock-detecting wait on a plain event (used by
        synchronous sends, which block until their message is matched)."""
        self.block_enter(rank, what)
        try:
            while not event.wait(timeout=self.config.wait_slice):
                self.check_abort()
                self.maybe_detect_deadlock()
        finally:
            self.block_exit(rank)

    # -- deadlock detection ----------------------------------------------------

    def maybe_detect_deadlock(self) -> None:
        """Declare deadlock if every live process is blocked and nothing has
        moved for the configured grace period.

        Called by blocked waiters on each wait-slice wakeup.  Safe against
        false positives: a waiter whose wake condition became true exits its
        wait (and the blocked set) within one slice, and any message movement
        refreshes the activity clock.
        """
        if not self.config.deadlock_detection:
            return
        if self.aborted:
            # Another process already declared the failure; let the caller's
            # next check_abort unwind this one quietly.
            self.check_abort()
        with self._state_lock:
            alive = len(self._alive)
            if alive == 0 or len(self._blocked) < alive:
                return
            if time.monotonic() - self._last_activity < self.config.deadlock_grace:
                return
            blocked = dict(self._blocked)
        detail = "; ".join(f"rank {r}: {w}" for r, w in sorted(blocked.items()))
        err = DeadlockError(
            f"deadlock detected: all {alive} live processes blocked ({detail})",
            blocked_on=blocked,
        )
        self.abort(AbortError(str(err)))
        raise err

    # -- diagnostics -------------------------------------------------------------

    def snapshot(self) -> dict:
        """A diagnostic snapshot of liveness, blocking and queue depths."""
        with self._state_lock:
            alive = sorted(self._alive)
            blocked = dict(self._blocked)
        return {
            "alive": alive,
            "blocked": blocked,
            "queues": {r: mb.stats() for r, mb in enumerate(self.mailboxes)},
        }
