"""The shared state of one simulated MPI job: the *world*.

A :class:`World` owns the mailboxes of all processes, allocates communicator
context ids, records per-process liveness and blocking state, and implements
the two safety nets real MPI lacks:

* **abort propagation** — when any process raises, every blocked sibling is
  woken with :class:`~repro.errors.AbortError` instead of hanging the job;
* **deadlock detection** — when every live process is blocked and no message
  has moved for a grace period, the world declares deadlock and reports what
  each rank was blocked on.

Algorithm selection for the collectives lives in :class:`WorldConfig` so
benchmarks can ablate (e.g. linear vs binomial-tree broadcast).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import AbortError, DeadlockError, ProcessFailedError
from repro.mpi.mailbox import Mailbox
from repro.mpi.progress import Completion, ProgressEngine, RankProgress, blocked_bucket

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.faults import FaultSchedule
    from repro.mpi.sched import MatchSchedule


@dataclass
class TrafficStats:
    """Aggregate message-traffic counters of one world.

    ``messages``/``payload_bytes`` count every delivered envelope;
    ``by_kind`` splits by transport ("object" = pickled, "buffer" =
    point-to-point numpy, "bufcoll" = buffer-mode collective).
    ``copy_avoided_bytes`` counts payload bytes delivered by *reusing* an
    existing encoding instead of producing a fresh one — the savings of
    the zero-copy serialization fast path (pickle-once fan-outs and
    relay-without-reencode forwards; see :mod:`repro.mpi.serialization`).
    The counters make algorithmic message complexity *testable* — e.g. a
    linear broadcast on P ranks must deliver exactly P-1 messages.

    ``wakeups``/``blocked_seconds``/``blocked_hist`` aggregate the
    blocking ledger from :meth:`World.record_block_episode`: how many
    times blocked waiters woke, how long they were parked, and a
    log-bucket histogram of episode durations.  They make the progress
    engine's claim testable — an idle blocked rank records O(1) wakeups
    in event mode versus one per wait slice under polling.
    """

    messages: int = 0
    payload_bytes: int = 0
    by_kind: dict = field(default_factory=dict)
    copy_avoided_bytes: int = 0
    wakeups: int = 0
    blocked_seconds: float = 0.0
    blocked_hist: dict = field(default_factory=dict)
    #: Socket-transport wire bytes (length prefix + encoded envelope)
    #: this world's rank pushed onto / pulled off its peer connections.
    #: Zero on the thread backend, where no wire exists.
    wire_bytes_sent: int = 0
    wire_bytes_received: int = 0

    def snapshot(self) -> "TrafficStats":
        """A copy safe to compare against later counts."""
        return TrafficStats(
            self.messages,
            self.payload_bytes,
            dict(self.by_kind),
            self.copy_avoided_bytes,
            self.wakeups,
            self.blocked_seconds,
            dict(self.blocked_hist),
            self.wire_bytes_sent,
            self.wire_bytes_received,
        )

    def since(self, earlier: "TrafficStats") -> "TrafficStats":
        """Traffic recorded after *earlier* was snapshotted."""
        kinds = {
            k: self.by_kind.get(k, 0) - earlier.by_kind.get(k, 0)
            for k in set(self.by_kind) | set(earlier.by_kind)
        }
        hist = {
            k: self.blocked_hist.get(k, 0) - earlier.blocked_hist.get(k, 0)
            for k in set(self.blocked_hist) | set(earlier.blocked_hist)
        }
        return TrafficStats(
            self.messages - earlier.messages,
            self.payload_bytes - earlier.payload_bytes,
            {k: v for k, v in kinds.items() if v},
            self.copy_avoided_bytes - earlier.copy_avoided_bytes,
            self.wakeups - earlier.wakeups,
            self.blocked_seconds - earlier.blocked_seconds,
            {k: v for k, v in hist.items() if v},
            self.wire_bytes_sent - earlier.wire_bytes_sent,
            self.wire_bytes_received - earlier.wire_bytes_received,
        )


@dataclass
class WorldConfig:
    """Tunable behaviour of a simulated world.

    Attributes
    ----------
    bcast_algorithm :
        ``"binomial"`` (tree, O(log P) rounds) or ``"linear"`` (root sends
        to every rank).  Ablation target for the substrate benchmarks.
    reduce_algorithm :
        ``"binomial"`` or ``"linear"``.
    allreduce_algorithm :
        ``"recursive_doubling"`` or ``"reduce_bcast"``.
    allgather_algorithm :
        ``"ring"`` or ``"gather_bcast"``.
    barrier_algorithm :
        ``"dissemination"`` or ``"linear"``.
    validate_collectives :
        When true, every collective message carries an operation header that
        is checked on receipt; mismatched collective calls across ranks then
        raise :class:`~repro.errors.CollectiveMismatchError` instead of
        producing garbage.
    serialization_fastpath :
        Enable the zero-copy serialization fast path
        (:mod:`repro.mpi.serialization`): objects are encoded **once** per
        collective fan-out and the bytes shared across all destination
        envelopes, tree relays forward received bytes verbatim instead of
        unpickling and re-pickling at every hop, and contiguous numpy
        arrays travel as read-only snapshots with copy-on-final-delivery
        instead of pickles.  Observable results are identical either way
        (value semantics are preserved); the flag exists so benchmarks can
        ablate the legacy pickle-per-destination cost model.
    rearranger_fastpath :
        Route :class:`repro.core.rearranger.Rearranger` traffic over the
        buffer-mode hot path: persistent ``Send_init``/``Recv_init``
        requests bound to preallocated staging buffers, with the
        ``(lo, hi)`` row header packed as a fixed-size prefix instead of a
        pickled tuple.  Off reproduces the object-mode pickled path.
    deadlock_detection :
        Enable the all-blocked watchdog.
    deadlock_grace :
        Seconds of global inactivity with every process blocked before
        deadlock is declared.
    progress_engine :
        ``"event"`` (default) parks every blocked path on the
        :class:`~repro.mpi.progress.ProgressEngine` — woken exactly once
        by delivery, abort, or the watchdog, with deadlock detection in
        a dedicated lazily-started watchdog thread.  ``"polling"`` is
        the legacy engine: blocked waiters wake every ``wait_slice`` to
        re-check aborts and run the detector inline, and
        ``waitany``/``waitsome`` busy-poll.  Kept for ablation
        (``benchmarks/compare.py`` writes ``BENCH_progress.json``).
    watchdog_period :
        Event engine only: how often (seconds) the watchdog thread runs
        the all-blocked-and-idle deadlock scan while someone is blocked.
        Bounds deadlock-detection and thereby abort-propagation latency.
    wait_slice :
        Polling engine only: poll interval (seconds) of blocked waiters —
        how often a blocked receive wakes to re-check for aborts and run
        the deadlock watchdog.  Lower values propagate aborts faster at
        the cost of more wakeups; benchmarks ablate the trade-off.
    max_components_per_executable :
        The paper's Section 4.3 limit ("Each executable could contain up to
        10 components") — consulted by MPH, carried here so one config object
        travels with the job.
    fault_schedule :
        A :class:`repro.mpi.faults.FaultSchedule` of injected failures
        (rank crashes, message drop/delay/duplication/corruption,
        slow-rank jitter), or ``None`` (the default) for a fault-free
        world.  When ``None`` the hooks cost one ``is None`` branch per
        operation and per delivery (``benchmarks/bench_faults.py``
        verifies the overhead stays under 2%).
    match_schedule :
        A :class:`repro.mpi.sched.MatchSchedule` deciding every legal
        nondeterministic choice of the substrate — wildcard match order,
        probe visibility, ``waitany``/``waitsome`` completion order, and
        bounded delivery holds — from a seed, so schedule-dependent bugs
        become replayable.  ``None`` (the default) keeps the historical
        earliest-first behaviour; the hooks then cost one ``is None``
        branch per choice point (``benchmarks/bench_sched.py``).
    backend :
        Execution substrate of the job.  ``"thread"`` (default) runs each
        rank as a thread in this process sharing one :class:`World` — the
        historical simulator.  ``"process"`` spawns each rank as a real
        OS process (:mod:`repro.mpi.procbackend`) with its own world
        replica, wired together over a :class:`~repro.mpi.transport.SocketTransport`
        by a rank-bootstrap handshake — the paper's genuine
        multi-executable setting.
    transport :
        Which :class:`~repro.mpi.transport.Transport` moves envelopes
        between ranks.  ``"auto"`` (default): direct mailbox delivery for
        the thread backend (no transport object at all — the historical
        zero-overhead path), Unix-domain sockets for the process backend.
        ``"thread"`` forces the explicit
        :class:`~repro.mpi.transport.ThreadTransport` indirection on the
        thread backend (ablation: one extra branch+call per message);
        ``"unix"``/``"tcp"`` select the socket family of the process
        backend; ``"shm"`` forces the shared-memory transport
        (:class:`~repro.mpi.shm.ShmTransport`) for every same-node peer
        pair of the process backend.  On the process backend ``"auto"``
        selects shm for same-node pairs and Unix sockets otherwise —
        MPICH-G2-style per-pair protocol selection.
    nodes :
        Number of simulated nodes the ranks are block-distributed over
        (see :class:`~repro.mpi.topology.Topology`), or ``None`` (the
        default) for a single node.  Cross-node peer pairs never use
        shared memory, and hierarchical collectives split into
        intra-node + inter-node phases along this boundary.
    hierarchical_collectives :
        Whether collectives use two-level (intra-node leader + inter-node
        tree) algorithms when the communicator spans multiple simulated
        nodes.  On by default; turn off to ablate against the flat
        algorithms.
    shm_ring_bytes :
        Capacity of each per-peer-pair shared-memory ring buffer
        (default 1 MiB).  Frames larger than half the ring are rejected
        by the transport (large payloads travel via the page pool
        instead).
    shm_pool_bytes :
        Capacity of each rank's shared-memory page pool for zero-copy
        ``Blob`` payloads (default 64 MiB; the backing file is sparse,
        so untouched pool pages cost no memory).
    shm_inline_max :
        Payload size (bytes) above which a blob payload is written to
        the page pool and passed by reference instead of inline in the
        ring frame (default 32 KiB).
    shm_spin_us :
        How long (microseconds) a rank's ring reader keeps polling for
        new frames after draining before re-arming its doorbell and
        parking.  In steady-state message exchange the peer's next
        frame lands inside this window, so neither side pays the
        socket doorbell round trip; 0 always parks immediately
        (lowest idle cost, highest per-message latency).  The default
        ``None`` resolves per job: 200 when every rank can have its
        own core, 0 when ranks oversubscribe the host — a spinning
        reader on an oversubscribed box steals the very cycles the
        sender needs to produce the frame it is waiting for.
    bootstrap :
        Rank-rendezvous scheme of the process backend (see
        :mod:`repro.mpi.bootstrap`).  ``"tree"`` (default): children
        relay hellos and welcomes through a *fanout*-ary tree over
        deterministic control sockets, so the launcher handles O(fanout)
        connections and pickles the shared welcome payload **once**
        instead of once per rank.  ``"flat"``: every child talks to the
        launcher directly (the historical O(nprocs) accept loop; kept
        for ablation — ``benchmarks/bench_init.py`` writes
        ``BENCH_init.json``).  TCP jobs always use the flat scheme:
        the tree needs path-addressable (Unix) control sockets.
    bootstrap_fanout :
        Arity of the bootstrap relay tree (default 8).
    """

    bcast_algorithm: str = "binomial"
    reduce_algorithm: str = "binomial"
    allreduce_algorithm: str = "recursive_doubling"
    allgather_algorithm: str = "ring"
    barrier_algorithm: str = "dissemination"
    validate_collectives: bool = True
    serialization_fastpath: bool = True
    rearranger_fastpath: bool = True
    deadlock_detection: bool = True
    deadlock_grace: float = 1.0
    progress_engine: str = "event"
    watchdog_period: float = 0.05
    wait_slice: float = 0.05
    max_components_per_executable: int = 10
    fault_schedule: Optional["FaultSchedule"] = None
    match_schedule: Optional["MatchSchedule"] = None
    backend: str = "thread"
    transport: str = "auto"
    nodes: Optional[int] = None
    hierarchical_collectives: bool = True
    shm_ring_bytes: int = 1 << 20
    shm_pool_bytes: int = 1 << 26
    shm_inline_max: int = 1 << 15
    shm_spin_us: Optional[int] = None
    bootstrap: str = "tree"
    bootstrap_fanout: int = 8

    def __post_init__(self) -> None:
        if self.progress_engine not in ("event", "polling"):
            raise ValueError(
                f"progress_engine must be 'event' or 'polling', "
                f"got {self.progress_engine!r}"
            )
        if self.backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', got {self.backend!r}"
            )
        if self.transport not in ("auto", "thread", "unix", "tcp", "shm"):
            raise ValueError(
                f"transport must be 'auto', 'thread', 'unix', 'tcp' or "
                f"'shm', got {self.transport!r}"
            )
        if self.backend == "thread" and self.transport in (
            "unix",
            "tcp",
            "shm",
        ):
            raise ValueError(
                f"transport {self.transport!r} requires backend='process'"
            )
        if self.backend == "process" and self.transport == "thread":
            raise ValueError("transport 'thread' requires backend='thread'")
        if self.nodes is not None and self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.shm_ring_bytes < (1 << 12):
            raise ValueError(
                f"shm_ring_bytes must be >= 4096, got {self.shm_ring_bytes}"
            )
        if self.shm_pool_bytes < self.shm_ring_bytes:
            raise ValueError(
                "shm_pool_bytes must be >= shm_ring_bytes, got "
                f"{self.shm_pool_bytes}"
            )
        if not (0 < self.shm_inline_max <= self.shm_ring_bytes // 4):
            raise ValueError(
                "shm_inline_max must be in (0, shm_ring_bytes // 4], got "
                f"{self.shm_inline_max}"
            )
        if self.shm_spin_us is not None and self.shm_spin_us < 0:
            raise ValueError(
                f"shm_spin_us must be >= 0 or None (auto), got {self.shm_spin_us}"
            )
        if self.bootstrap not in ("tree", "flat"):
            raise ValueError(
                f"bootstrap must be 'tree' or 'flat', got {self.bootstrap!r}"
            )
        if self.bootstrap_fanout < 2:
            raise ValueError(
                f"bootstrap_fanout must be >= 2, got {self.bootstrap_fanout}"
            )


class World:
    """Shared infrastructure for ``nprocs`` simulated MPI processes."""

    def __init__(self, nprocs: int, config: WorldConfig | None = None):
        if nprocs < 1:
            raise ValueError(f"world size must be >= 1, got {nprocs}")
        #: Number of processes in the world (never changes).
        self.nprocs = nprocs
        #: Behaviour knobs shared by every communicator of this world.
        self.config = config or WorldConfig()
        #: Simulated node topology (ranks → nodes) — consulted by the
        #: process backend's per-pair transport selection and by the
        #: hierarchical collective algorithms (lazy import breaks the
        #: module cycle).
        from repro.mpi.topology import Topology

        self.topology = Topology.from_config(nprocs, self.config)
        #: One mailbox per process, indexed by world rank.
        self.mailboxes = [Mailbox(self, r) for r in range(nprocs)]
        #: The :class:`~repro.mpi.transport.Transport` carrying remote
        #: deliveries, or ``None`` for the historical direct-mailbox path
        #: (thread backend default).  Every remote send funnels through
        #: :meth:`deliver`, which dispatches on this attribute.
        self.transport = None
        if self.config.transport == "thread":
            # Explicit in-memory transport indirection (ablation of the
            # transport seam's cost; lazy import breaks the module cycle).
            from repro.mpi.transport import ThreadTransport

            self.transport = ThreadTransport(self)

        # Context ids: 0/1 are reserved for COMM_WORLD's p2p/collective
        # traffic; communicator-creating operations allocate pairs above.
        self._ctx_lock = threading.Lock()
        self._next_ctx = 2

        self._state_lock = threading.Lock()
        #: Notified on block_enter so tests can wait for a rank to park
        #: (:meth:`wait_until_blocked`) instead of sleeping wall-clock.
        self._state_cond = threading.Condition(self._state_lock)
        self._alive: set[int] = set(range(nprocs))
        self._blocked: dict[int, str] = {}
        self._activity = 0
        self._last_activity = time.monotonic()

        # ULFM-style failure state: ranks dead by fail-stop crash (the
        # world keeps running), a monotonic pulse bumped whenever the
        # failure detector finds survivors stalled on a dead rank, and
        # the context ids of revoked communicators.
        self._failed: set[int] = set()
        self._failure_pulse = 0
        self._revoked_ctxs: set[int] = set()

        self._abort_lock = threading.Lock()
        self._abort_exc: AbortError | None = None
        self._deadlock_exc: DeadlockError | None = None

        self._traffic_lock = threading.Lock()
        #: Aggregate traffic counters (read via :meth:`traffic_snapshot`).
        self.traffic = TrafficStats()
        self._rank_progress: dict[int, RankProgress] = {}

        #: The completion/waitset layer every blocking path parks on in
        #: event mode (and the owner of the deadlock watchdog thread).
        self.progress = ProgressEngine(self)

    # -- context ids --------------------------------------------------------

    def alloc_context_pair(self) -> tuple[int, int]:
        """Allocate a fresh ``(p2p, collective)`` context-id pair.

        Allocation is done by a single agreeing process (e.g. the root of a
        ``Split``) and distributed to the members, so ids are consistent
        across a new communicator by construction.
        """
        with self._ctx_lock:
            pair = (self._next_ctx, self._next_ctx + 1)
            self._next_ctx += 2
            return pair

    # -- envelope delivery ---------------------------------------------------

    def deliver(self, dest: int, env) -> None:
        """Deliver *env* to world rank *dest* — the single seam every
        remote send crosses.

        With no transport selected (thread backend default) this is a
        direct call into the destination mailbox, identical to the
        historical path; otherwise the envelope goes to the configured
        :class:`~repro.mpi.transport.Transport` (in-memory indirection or
        framed socket I/O to another OS process).
        """
        transport = self.transport
        if transport is None:
            self.mailboxes[dest].deliver(env)
        else:
            transport.send_envelope(dest, env)

    # -- traffic accounting ---------------------------------------------------

    def record_traffic(self, kind: str, nbytes: int, copy_avoided: int = 0) -> None:
        """Count one delivered envelope (called by the mailboxes).

        *copy_avoided* is the number of payload bytes this delivery reused
        from an already-existing encoding (zero-copy fast path).
        """
        with self._traffic_lock:
            self.traffic.messages += 1
            self.traffic.payload_bytes += nbytes
            self.traffic.by_kind[kind] = self.traffic.by_kind.get(kind, 0) + 1
            self.traffic.copy_avoided_bytes += copy_avoided

    def traffic_snapshot(self) -> TrafficStats:
        """A consistent copy of the traffic counters."""
        with self._traffic_lock:
            return self.traffic.snapshot()

    def record_wire(self, sent: int = 0, received: int = 0) -> None:
        """Count socket-transport wire bytes (called by the transport's
        send path and reader threads on the process backend)."""
        with self._traffic_lock:
            self.traffic.wire_bytes_sent += sent
            self.traffic.wire_bytes_received += received

    def record_block_episode(self, rank: int, seconds: float, wakeups: int) -> None:
        """Account one completed blocked episode of *rank*: *seconds*
        parked, woken *wakeups* times.  Called by every blocking path in
        both engine modes; feeds :class:`TrafficStats` and the per-rank
        ledger read by :meth:`progress_stats`."""
        bucket = blocked_bucket(seconds)
        with self._traffic_lock:
            self.traffic.wakeups += wakeups
            self.traffic.blocked_seconds += seconds
            self.traffic.blocked_hist[bucket] = (
                self.traffic.blocked_hist.get(bucket, 0) + 1
            )
            rp = self._rank_progress.setdefault(rank, RankProgress())
            rp.episodes += 1
            rp.wakeups += wakeups
            rp.blocked_seconds += seconds

    def progress_stats(self, rank: int | None = None) -> RankProgress | dict[int, RankProgress]:
        """Per-rank blocking statistics: episodes, wakeups, blocked time.

        With *rank*, that rank's :class:`RankProgress` (zeros if it never
        blocked); without, a copy of the whole ledger.
        """
        with self._traffic_lock:
            if rank is not None:
                rp = self._rank_progress.get(rank, RankProgress())
                return RankProgress(rp.episodes, rp.wakeups, rp.blocked_seconds)
            return {
                r: RankProgress(rp.episodes, rp.wakeups, rp.blocked_seconds)
                for r, rp in self._rank_progress.items()
            }

    # -- activity / liveness tracking ----------------------------------------

    def note_activity(self) -> None:
        """Record message movement (delivery or match) for the watchdog."""
        with self._state_lock:
            self._activity += 1
            self._last_activity = time.monotonic()

    def block_enter(self, rank: int, what: str) -> None:
        """Mark *rank* as blocked in the call described by *what*."""
        with self._state_lock:
            self._blocked[rank] = what
            self._state_cond.notify_all()

    def block_exit(self, rank: int) -> None:
        """Mark *rank* as running again."""
        with self._state_lock:
            self._blocked.pop(rank, None)

    def proc_done(self, rank: int) -> None:
        """Mark *rank* as finished (returned or raised)."""
        with self._state_lock:
            self._alive.discard(rank)
            self._blocked.pop(rank, None)
            self._state_cond.notify_all()

    def wait_until_blocked(
        self, ranks=None, timeout: float = 5.0
    ) -> bool:
        """Testing hook: block until every rank in *ranks* (default: all
        currently-alive ranks) sits inside a blocking call.

        Replaces the "sleep long enough and hope the peer has parked"
        idiom in timing-sensitive tests with an event: returns ``True``
        as soon as the ranks are blocked, ``False`` on timeout (e.g. a
        rank finished instead of blocking).  Purely observational — it
        takes no locks a blocked rank holds and never wakes anyone.
        """
        deadline = time.monotonic() + timeout
        with self._state_cond:
            while True:
                want = set(ranks) if ranks is not None else set(self._alive)
                if want and want <= set(self._blocked):
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._state_cond.wait(remaining)

    # -- process failure (ULFM semantics) -----------------------------------

    def proc_failed(self, rank: int) -> None:
        """Record the fail-stop death of *rank*.

        Unlike :meth:`abort` the world keeps running: survivors proceed,
        and only operations that involve the dead rank raise
        :class:`~repro.errors.ProcessFailedError` — receives posted
        against it fail immediately, deliveries into its mailbox fail the
        sender, and survivors stalled *indirectly* are released by the
        watchdog's failure pulse (see :meth:`scan_deadlock`).
        """
        with self._state_lock:
            if rank in self._failed:
                return
            self._failed.add(rank)
            self._alive.discard(rank)
            self._blocked.pop(rank, None)
        for mb in self.mailboxes:
            mb.fail_posted_from(rank)
        for mb in self.mailboxes:
            mb.wake()
        self.progress.wake_all()

    def rank_failed(self, rank: int) -> bool:
        """Whether *rank* died by fail-stop failure."""
        return bool(self._failed) and rank in self._failed

    @property
    def failed_ranks(self) -> frozenset[int]:
        """World ranks dead by fail-stop failure."""
        with self._state_lock:
            return frozenset(self._failed)

    @property
    def failure_pulse(self) -> int:
        """Monotonic counter bumped each time the failure detector finds
        every survivor blocked with dead ranks present; parked waiters
        compare it against their entry value to learn of the stall."""
        return self._failure_pulse

    # -- communicator revocation (ULFM semantics) ---------------------------

    def revoke_contexts(self, ctxs, comm_name: str) -> None:
        """Revoke the communicator owning context ids *ctxs*: pending
        receives and probes on those contexts fail with
        :class:`~repro.errors.RevokedError`, and ``Comm._check`` fails
        all future operations.  Idempotent."""
        ctxs = tuple(ctxs)
        with self._state_lock:
            if all(c in self._revoked_ctxs for c in ctxs):
                return
            self._revoked_ctxs.update(ctxs)
        ctx_set = set(ctxs)
        for mb in self.mailboxes:
            mb.revoke_ctxs(ctx_set, comm_name)
        for mb in self.mailboxes:
            mb.wake()
        self.progress.wake_all()

    def ctx_revoked(self, ctx: int) -> bool:
        """Whether context id *ctx* belongs to a revoked communicator."""
        return bool(self._revoked_ctxs) and ctx in self._revoked_ctxs

    def blocked_count(self) -> int:
        """Number of ranks currently inside a blocking call (watchdog
        arming / diagnostics)."""
        with self._state_lock:
            return len(self._blocked)

    # -- abort handling -------------------------------------------------------

    def abort(self, exc: AbortError) -> None:
        """Abort the world: record *exc* (first abort wins) and wake every
        blocked process so it can observe the abort and unwind."""
        with self._abort_lock:
            if self._abort_exc is None:
                self._abort_exc = exc
        for mb in self.mailboxes:
            mb.wake()
        self.progress.wake_all()

    @property
    def aborted(self) -> bool:
        """Whether the world has been aborted."""
        return self._abort_exc is not None

    @property
    def deadlock_exc(self) -> DeadlockError | None:
        """The declared deadlock, if the watchdog (or a polling waiter)
        found one — parked event-mode waiters re-raise it as the root
        cause instead of a secondary :class:`AbortError`."""
        return self._deadlock_exc

    def check_abort(self) -> None:
        """Raise the recorded :class:`AbortError` if the world aborted.

        Each raising rank gets its own exception instance (a shared one
        would interleave tracebacks across threads), chained to the
        originating rank's real exception via ``__cause__`` so failure
        diagnostics survive propagation to sibling ranks.
        """
        exc = self._abort_exc
        if exc is not None:
            sibling = AbortError(str(exc), origin_rank=exc.origin_rank)
            sibling.__cause__ = exc.__cause__
            raise sibling

    def wait_event(self, event: threading.Event | Completion, rank: int, what: str) -> None:
        """Abort-aware, deadlock-detecting wait on a sync token (used by
        synchronous sends, which block until their message is matched).

        In event mode a :class:`~repro.mpi.progress.Completion` token
        parks on the progress engine (one wakeup); otherwise — polling
        mode, or a plain :class:`threading.Event` — the legacy wait-slice
        loop runs.
        """
        if self.progress.event_mode and isinstance(event, Completion):
            self.progress.wait((event,), rank, what)
            return
        self.block_enter(rank, what)
        wakeups = 0
        start = time.monotonic()
        try:
            while not event.wait(timeout=self.config.wait_slice):
                wakeups += 1
                self.check_abort()
                self.maybe_detect_deadlock()
        finally:
            self.block_exit(rank)
            self.record_block_episode(rank, time.monotonic() - start, wakeups)

    # -- deadlock detection ----------------------------------------------------

    def scan_deadlock(self) -> DeadlockError | ProcessFailedError | None:
        """Run the all-blocked-and-idle check once; on detection record
        the :class:`DeadlockError`, abort the world, and return the error
        (without raising — the caller decides who surfaces it).

        When dead ranks are present the same stall is a *process-failure*
        stall, not a deadlock: survivors are waiting (directly or
        transitively) on ranks that can never answer.  The scan then
        bumps the failure pulse and wakes everyone — each parked waiter
        raises :class:`~repro.errors.ProcessFailedError` for itself — and
        the world is **not** aborted, so survivors that handle the error
        keep running (ULFM semantics).

        Called by the event engine's watchdog thread and by polling
        waiters via :meth:`maybe_detect_deadlock`.  Safe against false
        positives: a waiter whose wake condition became true exits its
        wait (and the blocked set) promptly, and any message movement
        refreshes the activity clock.
        """
        if not self.config.deadlock_detection or self.aborted:
            return None
        with self._state_lock:
            alive = len(self._alive)
            failed = frozenset(self._failed)
            if alive == 0 or len(self._blocked) < alive:
                return None
            if time.monotonic() - self._last_activity < self.config.deadlock_grace:
                return None
            blocked = dict(self._blocked)
        detail = "; ".join(f"rank {r}: {w}" for r, w in sorted(blocked.items()))
        if failed:
            err: DeadlockError | ProcessFailedError = ProcessFailedError(
                f"process failure stalled the job: rank(s) {sorted(failed)} dead, "
                f"all {alive} survivors blocked ({detail})",
                failed_ranks=failed,
            )
            with self._state_lock:
                self._failure_pulse += 1
                self._last_activity = time.monotonic()
            for mb in self.mailboxes:
                mb.wake()
            self.progress.wake_all()
            return err
        err = DeadlockError(
            f"deadlock detected: all {alive} live processes blocked ({detail})",
            blocked_on=blocked,
        )
        with self._abort_lock:
            if self._deadlock_exc is None:
                self._deadlock_exc = err
        self.abort(AbortError(str(err)))
        return err

    def maybe_detect_deadlock(self) -> None:
        """Polling-engine hook: declare deadlock if every live process is
        blocked and nothing has moved for the configured grace period.

        Called by blocked waiters on each wait-slice wakeup; raises the
        :class:`DeadlockError` — or, when dead ranks are present,
        :class:`~repro.errors.ProcessFailedError` — in the detecting
        waiter.  (The event engine runs the same scan from its watchdog
        thread instead.)
        """
        if not self.config.deadlock_detection:
            return
        if self.aborted:
            # Another process already declared the failure; let the caller's
            # next check_abort unwind this one quietly.
            self.check_abort()
        err = self.scan_deadlock()
        if err is not None:
            raise err

    # -- diagnostics -------------------------------------------------------------

    def snapshot(self) -> dict:
        """A diagnostic snapshot of liveness, blocking and queue depths."""
        with self._state_lock:
            alive = sorted(self._alive)
            blocked = dict(self._blocked)
            failed = sorted(self._failed)
        return {
            "alive": alive,
            "blocked": blocked,
            "failed": failed,
            "queues": {r: mb.stats() for r, mb in enumerate(self.mailboxes)},
        }
