"""Process groups: ordered sets of world process ids (``MPI_Group``).

A :class:`Group` is an immutable value object.  Rank *r* of the group is the
process whose world id is ``group.members[r]``.  The set algebra follows the
MPI semantics exactly:

* ``union(a, b)`` — all of *a* in order, then members of *b* not in *a*;
* ``intersection(a, b)`` — members of *a* also in *b*, in *a*'s order;
* ``difference(a, b)`` — members of *a* not in *b*, in *a*'s order.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.mpi.constants import UNDEFINED


class Group:
    """An immutable ordered group of world process ids."""

    __slots__ = ("_members", "_index")

    def __init__(self, members: Iterable[int]):
        members = tuple(int(m) for m in members)
        if len(set(members)) != len(members):
            raise ValueError(f"group members must be distinct, got {members}")
        if any(m < 0 for m in members):
            raise ValueError(f"group members must be non-negative, got {members}")
        self._members = members
        self._index = {m: r for r, m in enumerate(members)}

    # -- basic accessors -----------------------------------------------------

    @property
    def members(self) -> tuple[int, ...]:
        """World ids of the members, in rank order."""
        return self._members

    @property
    def size(self) -> int:
        """Number of members (``MPI_Group_size``)."""
        return len(self._members)

    def rank_of(self, world_id: int) -> int:
        """Rank of *world_id* in this group, or ``UNDEFINED`` if absent."""
        return self._index.get(world_id, UNDEFINED)

    def world_id(self, rank: int) -> int:
        """World id of group rank *rank*."""
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range for group of size {self.size}")
        return self._members[rank]

    def __contains__(self, world_id: int) -> bool:
        return world_id in self._index

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self._members == other._members

    def __hash__(self) -> int:
        return hash(self._members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Group{self._members}"

    # -- derivation ------------------------------------------------------------

    def incl(self, ranks: Sequence[int]) -> "Group":
        """New group containing the given ranks of this group, in the given
        order (``MPI_Group_incl``)."""
        return Group(self.world_id(r) for r in ranks)

    def excl(self, ranks: Sequence[int]) -> "Group":
        """New group with the given ranks of this group removed
        (``MPI_Group_excl``)."""
        drop = set(ranks)
        for r in drop:
            if not 0 <= r < self.size:
                raise IndexError(f"rank {r} out of range for group of size {self.size}")
        return Group(m for r, m in enumerate(self._members) if r not in drop)

    def range_incl(self, ranges: Sequence[tuple[int, int, int]]) -> "Group":
        """New group from ``(first, last, stride)`` triples
        (``MPI_Group_range_incl``; *last* is inclusive, as in MPI)."""
        ranks: list[int] = []
        for first, last, stride in ranges:
            if stride == 0:
                raise ValueError("stride must be nonzero")
            stop = last + (1 if stride > 0 else -1)
            ranks.extend(range(first, stop, stride))
        return self.incl(ranks)

    # -- set algebra -------------------------------------------------------------

    def union(self, other: "Group") -> "Group":
        """MPI union: this group's members in order, then *other*'s members
        not already present, in *other*'s order."""
        extra = [m for m in other._members if m not in self._index]
        return Group(self._members + tuple(extra))

    def intersection(self, other: "Group") -> "Group":
        """MPI intersection: members of this group also in *other*, in this
        group's order."""
        return Group(m for m in self._members if m in other._index)

    def difference(self, other: "Group") -> "Group":
        """MPI difference: members of this group not in *other*, in this
        group's order."""
        return Group(m for m in self._members if m not in other._index)

    def translate_ranks(self, ranks: Sequence[int], other: "Group") -> list[int]:
        """For each of this group's *ranks*, the corresponding rank in
        *other* (``UNDEFINED`` where the process is not a member)."""
        return [other.rank_of(self.world_id(r)) for r in ranks]
