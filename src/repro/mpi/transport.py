"""The pluggable transport layer: how envelopes move between ranks.

MPICH-G2 (Karonis et al.) demonstrated that one MPI surface can run over
radically different substrates when delivery is hidden behind a
multi-protocol transport layer.  This module is that layer for the
simulated substrate: every remote delivery funnels through
:meth:`~repro.mpi.world.World.deliver`, which hands the envelope to the
world's :class:`Transport` (or straight to the destination mailbox when
no transport is selected — the historical zero-overhead path).

Two implementations:

* :class:`ThreadTransport` — the existing in-memory thread mailbox behind
  the interface.  ``send_envelope`` is a direct call into the destination
  mailbox, so selecting it changes no behaviour and costs one branch plus
  one indirection per message (``benchmarks/bench_backend.py`` pins the
  overhead inside the established <1% noise floor).
* :class:`SocketTransport` — localhost TCP or Unix-domain sockets with
  length-prefixed framing and per-peer connection caching; the substrate
  of the **process backend** (:mod:`repro.mpi.procbackend`), where every
  rank is a real OS process.  Envelopes are encoded with
  :func:`encode_envelope` (the payload crosses the wire as the
  :class:`~repro.mpi.serialization.Blob` bytes it was already encoded
  into), synchronous sends are completed by an ``ack`` frame from the
  receiver, and abort notifications ride the same connections.

The wire format is deliberately simple and *testable*: a frame is a
4-byte big-endian length followed by that many payload bytes
(:func:`pack_frame` / :class:`FrameDecoder`).  A declared length beyond
:data:`MAX_FRAME_BYTES` and a stream that ends mid-frame both raise a
clean :class:`~repro.errors.TransportError` instead of hanging — the
property tests in ``tests/mpi/test_transport.py`` fuzz exactly these
edges (empty, 1-byte, multi-MiB, split reads, torn frames).
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.errors import TransportError
from repro.mpi.mailbox import Envelope
from repro.mpi.progress import Completion
from repro.mpi.serialization import Blob, payload_nbytes

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import World

#: Pickle protocol for wire frames (control tuples and envelope payloads).
WIRE_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Hard ceiling on one frame's payload size.  A length prefix beyond this
#: is treated as stream corruption (a torn or misaligned frame), never as
#: a buffer to allocate — the difference between a clean
#: :class:`TransportError` and an out-of-memory hang.
MAX_FRAME_BYTES = 1 << 30

_LEN = struct.Struct("!I")


# ---------------------------------------------------------------------------
# Framing: length-prefixed byte frames
# ---------------------------------------------------------------------------


def pack_frame(payload: bytes) -> bytes:
    """Wrap *payload* in the wire framing (4-byte big-endian length)."""
    n = len(payload)
    if n > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {n} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    return _LEN.pack(n) + payload


def sendall_vectored(sock: socket.socket, parts: list) -> None:
    """``sendall`` of several buffers without concatenating them.

    The writev-style path of :meth:`SocketTransport._send_bytes`: the
    4-byte length header and the (possibly multi-MiB) payload go down in
    one ``sendmsg`` call instead of being copied into a single ``bytes``
    first.  Partial sends are resumed with zero-copy memoryview slices.
    """
    views = [memoryview(p) for p in parts if len(p)]
    while views:
        sent = sock.sendmsg(views)
        while sent:
            head = len(views[0])
            if sent >= head:
                sent -= head
                del views[0]
            else:
                views[0] = views[0][sent:]
                sent = 0


class FrameDecoder:
    """Incremental decoder of the length-prefixed wire format.

    Feed it byte chunks exactly as they come off a socket — any split is
    legal, including mid-header — and it yields complete frames in order.
    :meth:`finish` declares end-of-stream: leftover bytes mean the peer
    died mid-frame (a *torn frame*) and raise :class:`TransportError`.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._need: Optional[int] = None  # payload length of the frame in progress

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb *data*; return every frame completed by it."""
        self._buf.extend(data)
        frames: list[bytes] = []
        while True:
            if self._need is None:
                if len(self._buf) < _LEN.size:
                    break
                (self._need,) = _LEN.unpack(bytes(self._buf[: _LEN.size]))
                del self._buf[: _LEN.size]
                if self._need > MAX_FRAME_BYTES:
                    raise TransportError(
                        f"corrupt stream: declared frame length {self._need} "
                        f"exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
                    )
            if len(self._buf) < self._need:
                break
            frames.append(bytes(self._buf[: self._need]))
            del self._buf[: self._need]
            self._need = None
        return frames

    @property
    def partial(self) -> bool:
        """Whether a frame is in progress (header or payload incomplete)."""
        return self._need is not None or bool(self._buf)

    def finish(self) -> None:
        """Declare end-of-stream; raise on a torn frame."""
        if self.partial:
            got = len(self._buf)
            want = self._need if self._need is not None else _LEN.size
            raise TransportError(
                f"torn frame: stream ended with {got} of {want} expected bytes"
            )


def send_frame(sock: socket.socket, obj) -> int:
    """Pickle *obj* and send it as one frame; returns bytes written."""
    frame = pack_frame(pickle.dumps(obj, protocol=WIRE_PICKLE_PROTOCOL))
    sock.sendall(frame)
    return len(frame)


def recv_frame(sock: socket.socket, timeout: Optional[float] = None):
    """Receive exactly one pickled frame from *sock* (blocking).

    Returns the unpickled object, or ``None`` on a clean EOF before any
    byte.  A stream that ends mid-frame raises :class:`TransportError`.
    """
    sock.settimeout(timeout)
    decoder = FrameDecoder()
    while True:
        try:
            data = sock.recv(65536)
        except socket.timeout:
            raise TransportError("timed out waiting for a frame") from None
        if not data:
            if decoder.partial:
                decoder.finish()
            return None
        frames = decoder.feed(data)
        if frames:
            if len(frames) > 1 or decoder.partial:  # pragma: no cover - misuse
                raise TransportError("recv_frame got more than one frame")
            return pickle.loads(frames[0])


# ---------------------------------------------------------------------------
# Envelope wire encoding
# ---------------------------------------------------------------------------


def encode_envelope(env: Envelope, sync_id: int = 0, from_rank: int = -1) -> bytes:
    """Encode an envelope for the wire.

    A :class:`Blob` payload crosses as its already-encoded bytes (pickle
    blobs are *not* re-pickled into a nested pickle; the array snapshot
    of an array blob is carried as-is), a buffer-mode numpy payload as
    the array.  *sync_id* is nonzero for synchronous sends: the receiver
    acks it when the message is matched.  *from_rank* is the sender's
    **world** rank — ``env.source`` is comm-local, so the ack route must
    travel explicitly.
    """
    payload = env.payload
    if isinstance(payload, Blob):
        data = payload.data
        if type(data) is memoryview:
            # A blob mapped zero-copy from a shm page holds a memoryview;
            # relaying it over a socket must materialise the bytes
            # (memoryviews don't pickle).
            data = data.tobytes()
        wire_payload = ("blob", payload.kind, data, payload.nbytes)
    else:
        wire_payload = ("raw", payload)
    return pickle.dumps(
        (
            "msg",
            env.context,
            env.source,
            env.tag,
            env.kind,
            env.count,
            env.op,
            sync_id,
            from_rank,
            wire_payload,
        ),
        protocol=WIRE_PICKLE_PROTOCOL,
    )


def decode_envelope(fields: tuple) -> tuple[Envelope, int, int]:
    """Rebuild ``(envelope, sync_id, from_rank)`` from a ``"msg"`` frame."""
    _, context, source, tag, kind, count, op, sync_id, from_rank, wire_payload = fields
    if wire_payload[0] == "blob":
        _, blob_kind, data, nbytes = wire_payload
        if blob_kind == "array" and isinstance(data, np.ndarray):
            data.flags.writeable = False  # restore the snapshot invariant
        payload = Blob(blob_kind, data, nbytes)
    else:
        payload = wire_payload[1]
    env = Envelope(context, source, tag, payload, kind, count, op=op)
    return env, sync_id, from_rank


# ---------------------------------------------------------------------------
# The transport interface
# ---------------------------------------------------------------------------


@dataclass
class TransportStats:
    """Wire-level counters of one transport endpoint."""

    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class Transport(ABC):
    """How one rank's envelopes reach its peers.

    Implementations must be safe to call from any thread: collectives and
    the progress engine's reader threads send concurrently.
    """

    #: Short name for diagnostics ("thread", "unix", "tcp").
    kind: str = "?"

    @abstractmethod
    def send_envelope(self, dest: int, env: Envelope) -> None:
        """Deliver *env* to world rank *dest* (eager: buffered at the
        destination before returning)."""

    @abstractmethod
    def alive(self, peer: int) -> bool:
        """Whether *peer* is believed reachable."""

    @abstractmethod
    def close(self) -> None:
        """Tear the endpoint down (idempotent)."""

    def forget_peer(self, peer: int) -> None:
        """Invalidate every cached resource tied to *peer*, which has
        left the job *on purpose* (``Session.retire``).

        Unlike a crash (``on_peer_lost``) this is not a failure: the
        peer's connection teardown must not be reported as a lost rank,
        and later sends to it are misuse, not bad luck.  The base
        implementation is a no-op — the thread backend caches nothing
        per peer."""

    def stats(self) -> TransportStats:
        """A snapshot of the wire-level counters."""
        return TransportStats()


class ThreadTransport(Transport):
    """The in-memory thread mailbox behind the :class:`Transport`
    interface — zero behaviour change, one indirection per message.

    Exists so the thread backend can be driven through exactly the same
    seam the process backend uses, which is what makes the backend
    ablation (``BENCH_backend.json``) a fair comparison.
    """

    kind = "thread"

    def __init__(self, world: "World"):
        self._world = world
        self._stats = TransportStats()
        self._stats_lock = threading.Lock()

    def send_envelope(self, dest: int, env: Envelope) -> None:
        self._world.mailboxes[dest].deliver(env)
        with self._stats_lock:
            self._stats.frames_sent += 1
            self._stats.bytes_sent += payload_nbytes(env.payload)

    def alive(self, peer: int) -> bool:
        return 0 <= peer < self._world.nprocs and not self._world.rank_failed(peer)

    def close(self) -> None:
        pass

    def stats(self) -> TransportStats:
        with self._stats_lock:
            return TransportStats(
                self._stats.frames_sent,
                self._stats.frames_received,
                self._stats.bytes_sent,
                self._stats.bytes_received,
            )


class _SyncAck:
    """The receiver-side stand-in for a synchronous send's completion
    token: ``set()`` (called by the mailbox at match time) sends an
    ``ack`` frame back to the sender instead of signalling locally."""

    __slots__ = ("_transport", "_source", "_sync_id", "_fired")

    def __init__(self, transport: "SocketTransport", source: int, sync_id: int):
        self._transport = transport
        self._source = source
        self._sync_id = sync_id
        self._fired = False

    def set(self) -> None:
        if self._fired:
            return
        self._fired = True
        try:
            self._transport.send_control(self._source, ("ack", self._sync_id))
        except TransportError:
            # The sender is gone; nobody is left to wake.
            pass


class SocketTransport(Transport):
    """Framed envelope delivery over localhost sockets.

    Parameters
    ----------
    rank, nprocs :
        This endpoint's world rank and the world size.
    listener :
        A bound, listening socket owned by this rank (created during the
        bootstrap handshake, *before* any peer learns its address, so a
        connecting sender can never race the listener into existence).
    peers :
        ``world rank -> address`` map from the rendezvous (an address is
        ``("unix", path)`` or ``("tcp", host, port)``).

    Outbound connections are cached per peer and serialized by a per-peer
    lock (frames from concurrent senders interleave at frame granularity,
    never inside one).  Inbound connections are served by one reader
    thread each; decoded envelopes are injected through
    :attr:`deliver_local`, acks complete the registered synchronous
    sends, and ``abort`` frames are routed to :attr:`on_abort`.
    """

    def __init__(
        self,
        rank: int,
        nprocs: int,
        listener: socket.socket,
        peers: dict[int, tuple],
    ):
        self.rank = rank
        self.nprocs = nprocs
        self._listener = listener
        self._peers = dict(peers)
        self.kind = "tcp" if self._peers and next(iter(self._peers.values()))[0] == "tcp" else "unix"
        #: Injects an inbound envelope into the local mailbox.  Bound by
        #: the process backend after the world exists.
        self.deliver_local: Callable[[Envelope], None] = lambda env: None
        #: Called with ``(origin_rank, message)`` on an inbound abort.
        self.on_abort: Callable[[int, str], None] = lambda origin, msg: None
        #: Called with the :class:`TransportError` when a reader stream
        #: tears mid-frame.
        self.on_error: Callable[[TransportError], None] = lambda exc: None
        #: Called with ``(sent_bytes, received_bytes)`` per wire transfer;
        #: the process backend binds this to ``World.record_wire`` so the
        #: socket path shows up in :class:`~repro.mpi.world.TrafficStats`.
        self.on_wire: Callable[[int, int], None] = lambda sent, received: None
        #: Called with the world rank of a peer whose connection died
        #: while the transport was still open (crash detection seam; the
        #: process backend binds this to ``World.proc_failed`` on the
        #: shm transport so receives posted against the dead rank raise
        #: instead of hanging).
        self.on_peer_lost: Callable[[int], None] = lambda peer: None

        self._conns: dict[int, socket.socket] = {}
        self._send_locks: dict[int, threading.Lock] = {}
        self._conns_lock = threading.Lock()
        self._dead_peers: set[int] = set()
        #: Peers removed on purpose (``forget_peer``) — distinct from
        #: ``_dead_peers``: their EOFs are expected, not failures.
        self._departed: set[int] = set()

        self._sync_lock = threading.Lock()
        self._next_sync_id = 1
        self._sync_waiters: dict[int, Completion] = {}

        self._stats = TransportStats()
        self._stats_lock = threading.Lock()
        self._closed = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin accepting inbound connections."""
        t = threading.Thread(
            target=self._serve, name=f"transport-accept-{self.rank}", daemon=True
        )
        t.start()
        self._threads.append(t)

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        # shutdown() before close(): close() alone does not interrupt an
        # accept() blocked in another thread, and the kernel keeps
        # completing handshakes on the listener's behalf until that call
        # returns — a sender could still "successfully" connect to a
        # closed endpoint.  shutdown() revokes the listen state at once.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - defensive
            pass
        with self._conns_lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass

    # -- outbound ----------------------------------------------------------

    def send_envelope(self, dest: int, env: Envelope) -> None:
        if dest == self.rank:
            self.deliver_local(env)
            return
        sync_id = self._register_sync(env)
        try:
            self._send_bytes(dest, encode_envelope(env, sync_id, self.rank))
        except TransportError:
            self._unregister_sync(sync_id)
            raise

    def _register_sync(self, env: Envelope) -> int:
        """Register a synchronous send's completion token; returns its
        ack id (0 for a plain send)."""
        if env.sync_event is None:
            return 0
        with self._sync_lock:
            sync_id = self._next_sync_id
            self._next_sync_id += 1
            self._sync_waiters[sync_id] = env.sync_event
        return sync_id

    def _unregister_sync(self, sync_id: int) -> None:
        if sync_id:
            with self._sync_lock:
                self._sync_waiters.pop(sync_id, None)

    def send_control(self, dest: int, fields: tuple) -> None:
        """Send a non-envelope control frame (``ack``/``abort``)."""
        self._send_bytes(dest, pickle.dumps(fields, protocol=WIRE_PICKLE_PROTOCOL))

    def broadcast_abort(self, origin: int, message: str) -> None:
        """Best-effort abort notification to every peer (unreachable
        peers are skipped: they are either already dead or will be torn
        down by the launcher)."""
        for peer in self._peers:
            if peer == self.rank:
                continue
            try:
                self.send_control(peer, ("abort", origin, message))
            except TransportError:
                continue

    def forget_peer(self, peer: int) -> None:
        self._departed.add(peer)
        self._drop_conn(peer)
        with self._conns_lock:
            self._send_locks.pop(peer, None)
            self._peers.pop(peer, None)

    def _send_bytes(self, dest: int, payload: bytes) -> None:
        if dest in self._departed:
            raise TransportError(
                f"world rank {dest} retired from the job; no messages can "
                "reach it"
            )
        if dest not in self._peers:
            raise TransportError(f"no address for world rank {dest}")
        n = len(payload)
        if n > MAX_FRAME_BYTES:
            raise TransportError(
                f"frame of {n} bytes exceeds MAX_FRAME_BYTES "
                f"({MAX_FRAME_BYTES})"
            )
        lock = self._send_locks.setdefault(dest, threading.Lock())
        with lock:
            sock = self._connect(dest)
            try:
                # Header and payload go down in one vectored send: no
                # pack_frame concatenation, so a multi-MiB payload is
                # never copied just to prepend its 4-byte length.
                sendall_vectored(sock, [_LEN.pack(n), payload])
            except OSError as exc:
                self._drop_conn(dest)
                self._dead_peers.add(dest)
                raise TransportError(
                    f"send to world rank {dest} failed: {exc}"
                ) from exc
        with self._stats_lock:
            self._stats.frames_sent += 1
            self._stats.bytes_sent += n + _LEN.size
        self.on_wire(n + _LEN.size, 0)

    def _connect(self, dest: int) -> socket.socket:
        with self._conns_lock:
            sock = self._conns.get(dest)
        if sock is not None:
            return sock
        addr = self._peers[dest]
        try:
            if addr[0] == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.connect(addr[1])
            else:
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.connect((addr[1], addr[2]))
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            self._dead_peers.add(dest)
            raise TransportError(
                f"cannot connect to world rank {dest} at {addr!r}: {exc}"
            ) from exc
        with self._conns_lock:
            self._conns[dest] = sock
        return sock

    def _drop_conn(self, dest: int) -> None:
        with self._conns_lock:
            sock = self._conns.pop(dest, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - defensive
                pass

    # -- inbound -----------------------------------------------------------

    def _serve(self) -> None:
        try:
            self._listener.settimeout(0.2)
        except OSError:  # closed before the thread got scheduled
            return
        while not self._closed.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            if conn.family == socket.AF_INET:
                # Acks and small envelopes flow back over accepted
                # connections too; without NODELAY they eat Nagle's 40ms.
                try:
                    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                except OSError:  # pragma: no cover - defensive
                    pass
            t = threading.Thread(
                target=self._read_conn,
                args=(conn,),
                name=f"transport-read-{self.rank}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)

    def _read_conn(self, conn: socket.socket) -> None:
        decoder = FrameDecoder()
        origin = -1  # world rank speaking on this connection, once known
        try:
            while not self._closed.is_set():
                try:
                    data = conn.recv(65536)
                except OSError:
                    return
                if not data:
                    if decoder.partial and not self._closed.is_set():
                        decoder.finish()  # raises TransportError
                    return
                with self._stats_lock:
                    self._stats.bytes_received += len(data)
                self.on_wire(0, len(data))
                for frame in decoder.feed(data):
                    with self._stats_lock:
                        self._stats.frames_received += 1
                    fields = pickle.loads(frame)
                    peer = self._frame_origin(fields)
                    if peer >= 0:
                        origin = peer
                    self._dispatch(fields)
        except TransportError as exc:
            self.on_error(exc)
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._conn_closed(origin)

    def _frame_origin(self, fields: tuple) -> int:
        """World rank that sent this frame, or -1 if it doesn't say."""
        if fields[0] == "msg":
            return fields[8]
        return -1

    def _conn_closed(self, origin: int) -> None:
        """An inbound connection from world rank *origin* (or -1 if it
        never identified itself) ended while we are still open.

        On the process backend that means the peer's process is gone
        (children only close after the parent's shutdown broadcast,
        which only happens after every result arrived), so surface it
        through ``on_peer_lost`` — receives posted against the dead
        rank then raise instead of blocking forever.

        A *departed* peer (``forget_peer``) closing its side is the
        expected end of a planned retirement — silently ignored."""
        if (
            origin < 0
            or self._closed.is_set()
            or origin in self._dead_peers
            or origin in self._departed
        ):
            return
        self._dead_peers.add(origin)
        self.on_peer_lost(origin)

    def _dispatch(self, fields: tuple) -> None:
        tag = fields[0]
        if tag == "msg":
            env, sync_id, from_rank = decode_envelope(fields)
            if sync_id:
                env.sync_event = _SyncAck(self, from_rank, sync_id)
            self.deliver_local(env)
        elif tag == "ack":
            with self._sync_lock:
                waiter = self._sync_waiters.pop(fields[1], None)
            if waiter is not None:
                waiter.set()
        elif tag == "abort":
            self.on_abort(fields[1], fields[2])
        else:  # pragma: no cover - future protocol versions
            raise TransportError(f"unknown wire frame {tag!r}")

    # -- introspection -----------------------------------------------------

    def alive(self, peer: int) -> bool:
        return (
            not self._closed.is_set()
            and peer in self._peers
            and peer not in self._dead_peers
        )

    def stats(self) -> TransportStats:
        with self._stats_lock:
            return TransportStats(
                self._stats.frames_sent,
                self._stats.frames_received,
                self._stats.bytes_sent,
                self._stats.bytes_received,
            )


# ---------------------------------------------------------------------------
# Listener construction (shared by bootstrap and tests)
# ---------------------------------------------------------------------------


def make_listener(family: str, path_hint: str) -> tuple[socket.socket, tuple]:
    """Create a bound, listening socket; return ``(socket, address)``.

    *family* is ``"unix"`` or ``"tcp"``; *path_hint* is the filesystem
    path for Unix-domain sockets (ignored for TCP, which binds an
    ephemeral localhost port).
    """
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(path_hint)
        sock.listen(64)
        return sock, ("unix", path_hint)
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    sock.listen(64)
    host, port = sock.getsockname()
    return sock, ("tcp", host, port)
