"""The event-driven progress engine: one completion/waitset layer for
every blocking path of the simulated substrate.

The polling substrate this replaces woke every blocked waiter once per
``wait_slice`` (50 ms by default) just to re-check for aborts and run the
deadlock watchdog, and ``Request.waitany``/``waitsome`` busy-spun at
2 kHz.  MPICH-G2 showed that a *single unified progress engine* under
heterogeneous communication methods is what makes a multi-method MPI
both fast and correct; this module is that layer for the threads-as-ranks
substrate.  Three pieces:

* :class:`Completion` — a one-shot token signalled exactly once when an
  operation finishes (a receive matches, a synchronous send is claimed,
  a probe pattern becomes satisfiable).  Waiters park on it; signallers
  never block.
* :class:`Waitset` — the aggregation point one blocked thread parks on.
  It can subscribe to many completions at once (``waitany``/``waitsome``
  over mixed request lists) and is woken exactly once per relevant event:
  a completion signal, a world abort, or the watchdog declaring deadlock.
* :class:`ProgressEngine` — the per-:class:`~repro.mpi.world.World`
  owner of the active waitsets and of the **deadlock watchdog thread**.
  The watchdog is started lazily on the first blocked waiter, runs only
  while someone is blocked, and exits on abort or after a quiet period,
  so idle worlds carry no thread and blocked ranks pay zero per-slice
  wakeups.

Engine selection lives in
:attr:`repro.mpi.world.WorldConfig.progress_engine`: ``"event"`` (this
module, the default) or ``"polling"`` (the legacy wait-slice loops, kept
for ablation — ``benchmarks/compare.py`` measures the difference).  Both
modes record per-rank wakeup counts and blocked-time histograms through
:meth:`World.record_block_episode`, so the win is measurable rather than
asserted.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import World

#: Blocked-episode duration histogram buckets: ``(upper bound seconds,
#: label)``; durations past the last bound fall into ``_HIST_OVERFLOW``.
_HIST_BUCKETS = (
    (0.001, "<1ms"),
    (0.01, "1-10ms"),
    (0.1, "10-100ms"),
    (1.0, "100ms-1s"),
)
_HIST_OVERFLOW = ">=1s"


def blocked_bucket(seconds: float) -> str:
    """The histogram bucket label for a blocked episode of *seconds*."""
    for bound, label in _HIST_BUCKETS:
        if seconds < bound:
            return label
    return _HIST_OVERFLOW


class Completion:
    """A one-shot completion token.

    ``signal()`` flips it done (idempotently) and wakes every parked
    waitset; ``set()`` is a :class:`threading.Event`-compatible alias so
    the token can ride in an :class:`~repro.mpi.mailbox.Envelope`'s
    ``sync_event`` slot.  ``wait(timeout)`` offers the Event-style timed
    park the legacy polling engine uses, so one token type serves both
    engine modes.
    """

    __slots__ = ("_cond", "_done", "_waitsets")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._done = False
        self._waitsets: list["Waitset"] = []

    @property
    def done(self) -> bool:
        """Whether the token has been signalled."""
        return self._done

    def is_set(self) -> bool:
        """Event-style alias of :attr:`done`."""
        return self._done

    def signal(self) -> None:
        """Mark complete and wake every parked waitset (first call wins;
        later calls are no-ops).  Never blocks on waiter locks while
        holding its own, so signallers cannot deadlock against waiters."""
        with self._cond:
            if self._done:
                return
            self._done = True
            waitsets = self._waitsets
            self._waitsets = []
            self._cond.notify_all()
        for ws in waitsets:
            ws._notify(self)

    #: Event-compatible alias (``Envelope.sync_event.set()``).
    set = signal

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Event-style timed wait; returns the done flag (used by the
        legacy polling engine's wait-slice loop)."""
        with self._cond:
            if not self._done:
                self._cond.wait(timeout)
            return self._done

    def _subscribe(self, ws: "Waitset") -> bool:
        """Attach *ws* for a wakeup on signal.  Returns False — and does
        not attach — when already signalled (the caller is done)."""
        with self._cond:
            if self._done:
                return False
            self._waitsets.append(ws)
            return True

    def _unsubscribe(self, ws: "Waitset") -> None:
        with self._cond:
            try:
                self._waitsets.remove(ws)
            except ValueError:
                pass  # already consumed by signal()


class Waitset:
    """Where one blocked thread parks while waiting on completions.

    A waitset is woken by (a) any subscribed completion signalling, or
    (b) a :meth:`poke` from the engine (abort or deadlock declared).  It
    counts its wakeups so tests and benchmarks can pin the O(1)-wakeups
    property of the event engine.
    """

    __slots__ = ("_cond", "_fired", "wakeups")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: Completions that signalled while we were subscribed.
        self._fired: list[Completion] = []
        #: Times the parked thread was woken (delivery, abort, watchdog).
        self.wakeups = 0

    def _notify(self, completion: Completion) -> None:
        with self._cond:
            self._fired.append(completion)
            self._cond.notify_all()

    def poke(self) -> None:
        """Wake the parked thread without completing anything (abort and
        deadlock propagation)."""
        with self._cond:
            self._cond.notify_all()


@dataclass
class RankProgress:
    """Per-rank blocking statistics (event and polling modes alike)."""

    #: Number of completed blocked episodes.
    episodes: int = 0
    #: Total wakeups across all episodes.
    wakeups: int = 0
    #: Total seconds spent blocked.
    blocked_seconds: float = 0.0


class ProgressEngine:
    """Per-world completion/waitset aggregation plus the lazy watchdog.

    One engine per :class:`~repro.mpi.world.World`.  Blocking paths call
    :meth:`wait`; delivery paths signal :class:`Completion` tokens;
    :meth:`wake_all` (from ``World.abort``) pokes every parked waitset so
    abort propagation is bounded by lock handoff, not by poll slices.
    """

    #: Seconds of continuous blocked-free time after which the watchdog
    #: thread retires (it restarts lazily on the next blocked waiter).
    _IDLE_EXIT = 1.0

    def __init__(self, world: "World"):
        self._world = world
        self._reg_lock = threading.Lock()
        self._active: set[Waitset] = set()
        self._wd_cond = threading.Condition()
        self._wd_running = False
        self._wd_kick = False
        self._wd_shutdown = False

    # -- mode ----------------------------------------------------------------

    @property
    def event_mode(self) -> bool:
        """Whether the world runs the event engine (vs legacy polling)."""
        return getattr(self._world.config, "progress_engine", "event") == "event"

    # -- waiting -------------------------------------------------------------

    def wait(
        self, completions: Sequence[Completion], rank: int, what: str
    ) -> list[Completion]:
        """Park *rank* until at least one of *completions* signals.

        Returns the completions known to have fired (callers re-test their
        requests — more may fire after return).  Raises
        :class:`~repro.errors.DeadlockError` when the watchdog declared
        deadlock while we were parked,
        :class:`~repro.errors.ProcessFailedError` when the failure
        detector found the survivors stalled on dead ranks, or
        :class:`~repro.errors.AbortError` on any other world abort.  The
        episode (duration + wakeup count) is recorded on the world either
        way.
        """
        from repro.errors import CommError

        if not completions:
            raise CommError(f"progress wait with no completions: {what}")
        world = self._world
        ws = Waitset()
        start = time.monotonic()
        pulse0 = world.failure_pulse
        world.block_enter(rank, what)
        self._arm_watchdog()
        with self._reg_lock:
            self._active.add(ws)
        subscribed: list[Completion] = []
        try:
            fired: list[Completion] = []
            for c in completions:
                if c._subscribe(ws):
                    subscribed.append(c)
                else:
                    fired.append(c)  # signalled before we could park
            if fired:
                return fired
            # Transport-assisted progress: a transport that exposes a
            # poll window (the shm rings) gets a bounded chance to make
            # progress on *this* thread before we park — in steady-state
            # exchange the awaited frame lands inside the window, so no
            # doorbell round trip or reader-thread wakeup is paid.
            transport = getattr(world, "transport", None)
            window = getattr(transport, "progress_poll_s", 0.0)
            if window > 0.0:
                end = time.monotonic() + window
                while time.monotonic() < end:
                    transport.poll()
                    with ws._cond:
                        if ws._fired:
                            return list(ws._fired)
                    self._check_failure(pulse0)
                    time.sleep(0)  # yield: reply production needs the GIL
                transport.prepare_park()  # re-arm doorbell, final sweep
                with ws._cond:
                    if ws._fired:
                        return list(ws._fired)
            with ws._cond:
                while not ws._fired:
                    self._check_failure(pulse0)
                    ws._cond.wait()
                    ws.wakeups += 1
                return list(ws._fired)
        finally:
            for c in subscribed:
                c._unsubscribe(ws)
            with self._reg_lock:
                self._active.discard(ws)
            world.block_exit(rank)
            world.record_block_episode(rank, time.monotonic() - start, ws.wakeups)

    def _check_failure(self, pulse0: int = -1) -> None:
        """Raise the world's failure for a parked waiter: a
        :class:`ProcessFailedError` when the failure detector pulsed while
        we were parked (dead ranks stalled the survivors — the world is
        *not* aborted), the declared :class:`DeadlockError` when one
        exists (so the root cause survives to the driver), otherwise the
        recorded abort."""
        from repro.errors import DeadlockError, ProcessFailedError

        world = self._world
        if pulse0 >= 0 and world.failure_pulse != pulse0:
            failed = world.failed_ranks
            if failed:
                raise ProcessFailedError(
                    f"process failure: world rank(s) {sorted(failed)} died while "
                    f"this rank was blocked",
                    failed_ranks=failed,
                )
        if not world.aborted:
            return
        dl = world.deadlock_exc
        if dl is not None:
            raise DeadlockError(str(dl), blocked_on=dl.blocked_on)
        world.check_abort()

    # -- abort propagation ---------------------------------------------------

    def wake_all(self) -> None:
        """Poke every parked waitset (abort / deadlock declared)."""
        with self._reg_lock:
            waitsets = list(self._active)
        for ws in waitsets:
            ws.poke()

    # -- watchdog ------------------------------------------------------------

    def _arm_watchdog(self) -> None:
        """Ensure the watchdog thread runs while waiters are blocked
        (event mode with deadlock detection only)."""
        if not self.event_mode or not self._world.config.deadlock_detection:
            return
        with self._wd_cond:
            self._wd_kick = True
            if not self._wd_running:
                self._wd_running = True
                self._wd_shutdown = False
                threading.Thread(
                    target=self._watchdog_loop, name="mpi-watchdog", daemon=True
                ).start()
            else:
                self._wd_cond.notify_all()

    def shutdown(self) -> None:
        """Ask the watchdog to retire now (the job is over); it restarts
        lazily if the world blocks again."""
        with self._wd_cond:
            self._wd_shutdown = True
            self._wd_cond.notify_all()

    def join_watchdog(self, timeout: float = 5.0) -> bool:
        """Testing hook: block until the watchdog thread has retired.

        Returns ``True`` once no watchdog is running (immediately if one
        never started), ``False`` on timeout.  Replaces the "poll
        ``_wd_running`` with short sleeps" idiom in lifecycle tests — the
        watchdog notifies this waiter the moment it retires.
        """
        deadline = time.monotonic() + timeout
        with self._wd_cond:
            while self._wd_running:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._wd_cond.wait(remaining)
            return True

    def _watchdog_loop(self) -> None:
        """Periodically run the all-blocked-and-idle deadlock scan while
        anyone is blocked; retire on abort, shutdown, or a quiet period.

        Detection latency is bounded by ``watchdog_period`` — independent
        of every waiter's poll slice, which is the point: blocked ranks
        park unconditionally and this single thread owns the safety net.
        """
        world = self._world
        period = max(world.config.watchdog_period, 1e-3)
        idle_since: Optional[float] = None
        while True:
            with self._wd_cond:
                if not self._wd_kick:
                    self._wd_cond.wait(timeout=period)
                self._wd_kick = False
                if self._wd_shutdown:
                    self._wd_running = False
                    self._wd_shutdown = False
                    self._wd_cond.notify_all()
                    return
            if world.aborted:
                with self._wd_cond:
                    self._wd_running = False
                    self._wd_cond.notify_all()
                    return
            if world.blocked_count() == 0:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif now - idle_since >= self._IDLE_EXIT:
                    with self._wd_cond:
                        # A waiter that blocked while we were deciding to
                        # retire left a kick; honour it instead of exiting.
                        if self._wd_kick:
                            idle_since = None
                            continue
                        self._wd_running = False
                        self._wd_cond.notify_all()
                        return
                continue
            idle_since = None
            world.scan_deadlock()
