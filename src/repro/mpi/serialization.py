"""Zero-copy serialization: encode a message once, share it everywhere.

The substrate's object mode originally paid one ``pickle.dumps`` per
message per destination: a linear broadcast on *P* ranks pickled the same
object *P-1* times at the root, and a binomial-tree broadcast unpickled
and re-pickled the payload at every relay hop.  This module provides the
single abstraction that removes all of that redundant work:

:class:`Blob` — one *immutable* encoded payload.  A blob is created once
per logical message and may then be attached to any number of envelopes:

* **pickle-once fan-out** — the root of a fan-out (broadcast, the bcast
  half of ``gather_bcast`` allgather, ...) encodes the object into one
  blob and every destination envelope shares the same bytes;
* **relay-without-reencode** — a tree relay forwards the *received* blob
  verbatim to its children and decodes only if it needs the value itself
  (decode is lazy, paid only on final delivery);
* **array fast path** — a contiguous numpy array is "encoded" as a
  read-only private snapshot (one ``memcpy``, no pickling at all) and
  decoded into a writable private copy on final delivery, so the value
  semantics of distributed memory are preserved end to end.

Because a blob is immutable after construction, sharing it across
envelopes, threads, and relay hops is safe by construction: senders that
mutate their object after a send mutate *their* object, receivers that
mutate a decoded value mutate *their private copy*.

Whether the array fast path is used (and whether fan-outs share blobs at
all) is governed by :attr:`repro.mpi.world.WorldConfig.serialization_fastpath`;
with the flag off every encode is a fresh pickle, reproducing the legacy
cost model for ablation benchmarks while keeping behavior identical.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

#: Pickle protocol used for every object-mode message.
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


class Blob:
    """One immutable encoded message payload, shareable across envelopes.

    ``kind`` is ``"pickle"`` (``data`` is ``bytes``) or ``"array"``
    (``data`` is a private, read-only numpy snapshot).  ``nbytes`` is the
    encoded size, used for traffic accounting and ``Status.count``.

    Construct through :meth:`encode`; decode through :meth:`decode`.
    """

    # __weakref__ lets the shm transport key page-pool caches and
    # release-finalizers off a blob without extending its lifetime.
    __slots__ = ("kind", "data", "nbytes", "__weakref__")

    def __init__(self, kind: str, data, nbytes: int):
        self.kind = kind
        self.data = data
        self.nbytes = nbytes

    @classmethod
    def encode(cls, obj: Any, allow_array: bool = True) -> "Blob":
        """Encode *obj* into a blob.

        With *allow_array* true, a plain numpy array of a non-object dtype
        is snapshotted (one copy, made read-only) instead of pickled — the
        zero-pickle path for numerical payloads.  Everything else is
        pickled.  Either way the result is a private, immutable encoding:
        later mutation of *obj* cannot affect it.
        """
        if allow_array and type(obj) is np.ndarray and not obj.dtype.hasobject:
            snap = np.array(obj, copy=True)  # contiguous private snapshot
            snap.flags.writeable = False
            return cls("array", snap, snap.nbytes)
        data = pickle.dumps(obj, protocol=PICKLE_PROTOCOL)
        return cls("pickle", data, len(data))

    def decode(self) -> Any:
        """Materialise the payload as a private value for final delivery.

        Array blobs return a *writable* copy (receivers own their data);
        pickle blobs unpickle.  Each call returns an independent value, so
        one blob can serve many receivers.
        """
        if self.kind == "array":
            return self.data.copy()
        return pickle.loads(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Blob {self.kind} {self.nbytes}B>"


def payload_nbytes(payload: Any) -> int:
    """Wire size of an envelope payload of any supported type.

    Handles :class:`Blob`, raw pickled ``bytes`` (legacy / tests that
    build envelopes by hand), and numpy arrays (buffer-mode messages).
    """
    if isinstance(payload, Blob):
        return payload.nbytes
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    return 0
