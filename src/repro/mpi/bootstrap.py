"""Rank-rendezvous schemes for the process backend.

The original bootstrap (PR 5) was *flat*: every child connects to the
launcher's rendezvous socket, says hello, and waits for a personal
welcome frame carrying the full rank → address map.  That is the
parent-accepts-everyone pattern the MPD papers (Butler, Gropp & Lusk)
warn about: the launcher serially accepts O(N) connections, and — worse —
pickles an O(N)-entry welcome payload O(N) times, so launcher CPU grows
O(N²) with world size.

This module adds the MPD-style alternative: a *fanout*-ary relay *tree*
over deterministic control sockets.

* Child *r*'s tree parent is ``(r - 1) // fanout``; its children are
  ``fanout * r + 1 .. fanout * r + fanout``.  Rank 0 is the root and the
  only child that talks to the launcher during address exchange.
* **Upward**: each child binds its data listener *first* (so no sender
  can race it), collects one aggregated ``("hellos", {rank: addr})``
  frame per subtree from its tree children, merges in its own address,
  and sends the result up.  The launcher receives exactly one frame with
  all N addresses.
* **Downward**: the launcher pickles the shared welcome payload (peer
  map + :class:`~repro.mpi.world.WorldConfig`) **once** into an opaque
  blob and hands it to rank 0 with the per-rank launcher metadata.  Each
  relay forwards the blob bytes verbatim to its children — a memcpy, not
  a re-pickle — splitting only the metadata by subtree.
* **Register**: after decoding its welcome, every child opens a direct
  connection to the launcher and sends ``("register", rank)``.  From
  there the protocol is unchanged from the flat scheme — the direct
  connection carries the result frame, the shutdown linger, and the
  silent-death detection — so the tree replaces only the O(N²) part of
  the bootstrap, not the failure handling.

Control sockets live at deterministic paths in the job's private socket
directory (``ctrl<rank>.sock``), which is why the tree requires the Unix
socket family: a TCP child could not know its parent's ephemeral port
before the exchange it is trying to bootstrap.  TCP jobs fall back to
the flat scheme (see :func:`effective_scheme`).

A child may connect to its tree parent before the parent has bound its
control socket; :func:`connect_retry` absorbs that race with a capped
backoff.  A child that dies during the exchange stalls its subtree; the
launcher's liveness poll detects the dead process and terminates the
job exactly as in the flat scheme.

``benchmarks/bench_init.py`` drives both schemes with simulated
(threaded) ranks at 512–4096 and records the crossover in
``BENCH_init.json``; the ``init-scale`` CI job pins the 512-rank case.
"""

from __future__ import annotations

import errno
import os
import pickle
import socket
import time
from typing import Any, Optional

from repro.errors import TransportError
from repro.mpi.transport import make_listener, recv_frame, send_frame

#: How long a child keeps retrying a connect to a tree parent whose
#: control socket is not bound yet.
_CONNECT_RETRY_TIMEOUT = 60.0


# ---------------------------------------------------------------------------
# Tree shape
# ---------------------------------------------------------------------------


def tree_parent(rank: int, fanout: int) -> int:
    """Tree parent of *rank* (undefined for the root, rank 0)."""
    return (rank - 1) // fanout


def tree_children(rank: int, fanout: int, nprocs: int) -> list[int]:
    """Tree children of *rank* in a *fanout*-ary tree of *nprocs* ranks."""
    first = fanout * rank + 1
    return [r for r in range(first, min(first + fanout, nprocs))]


def subtree_ranks(rank: int, fanout: int, nprocs: int) -> list[int]:
    """All ranks of the subtree rooted at *rank* (including *rank*)."""
    out: list[int] = []
    frontier = [rank]
    while frontier:
        r = frontier.pop()
        out.append(r)
        frontier.extend(tree_children(r, fanout, nprocs))
    return out


def ctrl_path(sockdir: str, rank: int) -> str:
    """Deterministic control-socket path of *rank* — what makes the tree
    possible without any prior address exchange."""
    return os.path.join(sockdir, f"ctrl{rank}.sock")


def effective_scheme(bootstrap: str, family: str, nprocs: int) -> str:
    """The scheme a job actually runs: the tree needs path-addressable
    control sockets (Unix family) and at least one relay level."""
    if bootstrap == "tree" and family == "unix" and nprocs > 1:
        return "tree"
    return "flat"


# ---------------------------------------------------------------------------
# Sockets
# ---------------------------------------------------------------------------


def connect(addr: tuple) -> socket.socket:
    """Connect to a ``("unix", path)`` or ``("tcp", host, port)`` address."""
    if addr[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(addr[1])
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.connect((addr[1], addr[2]))
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def connect_retry(addr: tuple, timeout: float = _CONNECT_RETRY_TIMEOUT) -> socket.socket:
    """Connect, absorbing the child-before-parent race: a tree child may
    dial its parent's deterministic control path before the parent has
    bound it."""
    deadline = time.monotonic() + timeout
    delay = 0.001
    while True:
        try:
            return connect(addr)
        except OSError as exc:
            if exc.errno not in (
                errno.ENOENT,
                errno.ECONNREFUSED,
                errno.ECONNRESET,
            ):
                raise
            if time.monotonic() >= deadline:
                raise TransportError(
                    f"bootstrap connect to {addr!r} kept failing for "
                    f"{timeout:.0f}s: {exc}"
                ) from exc
            time.sleep(delay)
            delay = min(delay * 2, 0.05)


# ---------------------------------------------------------------------------
# Child side
# ---------------------------------------------------------------------------


def child_tree_exchange(
    rendezvous: tuple,
    rank: int,
    nprocs: int,
    fanout: int,
    sockdir: str,
    my_addr: tuple,
) -> tuple[dict[int, tuple], Any, Any, socket.socket]:
    """One child's half of the tree bootstrap.

    Returns ``(peers, config, meta, ctrl)`` where *ctrl* is the direct,
    already-registered launcher connection that carries the rest of the
    child's protocol (result frame, shutdown linger).
    """
    peers, config, meta = child_tree_address_exchange(
        rendezvous, rank, nprocs, fanout, sockdir, my_addr
    )

    # Register: the direct launcher connection used for everything after
    # the address exchange.
    ctrl = connect(rendezvous)
    send_frame(ctrl, ("register", rank))
    return peers, config, meta, ctrl


def child_tree_address_exchange(
    rendezvous: tuple,
    rank: int,
    nprocs: int,
    fanout: int,
    sockdir: str,
    my_addr: tuple,
    timeout: float = _CONNECT_RETRY_TIMEOUT,
) -> tuple[dict[int, tuple], Any, Any]:
    """The relay part of the child's tree bootstrap — hellos up, welcome
    down — without the follow-up launcher registration.  Returns
    ``(peers, config, meta)``.  Split out so ``bench_init`` can time the
    part the tree scheme actually changes (registration is
    scheme-agnostic, one O(1) connect per child).  *timeout* caps each
    blocking step; the default suits real per-process children —
    oversubscribed thread-simulated worlds (bench_init at 4096 ranks on
    few cores) need more headroom.
    """
    children = tree_children(rank, fanout, nprocs)

    # Bind my control socket before contacting the parent, so my own
    # children's connect_retry can only ever race the bind, not miss it.
    ctrl_listener = None
    if children:
        ctrl_listener, _ = make_listener("unix", ctrl_path(sockdir, rank))
        ctrl_listener.settimeout(timeout)

    # Upward: aggregate my subtree's addresses.  Children connect in
    # whatever order they finish their own subtrees, so the hellos frame
    # carries the sender's rank and connections are keyed by it — the
    # downward welcomes must reach the matching subtree.
    addrs: dict[int, tuple] = {rank: my_addr}
    child_conns: dict[int, socket.socket] = {}
    try:
        for _ in children:
            conn, _ = ctrl_listener.accept()
            hellos = recv_frame(conn, timeout=timeout)
            if not hellos or hellos[0] != "hellos" or hellos[1] not in children:
                raise TransportError(f"expected aggregated hellos, got {hellos!r}")
            child_conns[hellos[1]] = conn
            addrs.update(hellos[2])

        if rank == 0:
            up = connect(rendezvous)
        else:
            up = connect_retry(
                ("unix", ctrl_path(sockdir, tree_parent(rank, fanout))),
                timeout=timeout,
            )
        try:
            send_frame(up, ("hellos", rank, addrs))

            # Downward: shared blob relayed verbatim, metadata split by
            # subtree.
            welcome = recv_frame(up, timeout=timeout)
            if not welcome or welcome[0] != "welcome_tree":
                raise TransportError(f"expected tree welcome, got {welcome!r}")
            _, blob, metas = welcome
            for child, conn in child_conns.items():
                if metas is None:
                    sub = None
                else:
                    sub = {
                        r: metas[r]
                        for r in subtree_ranks(child, fanout, nprocs)
                        if r in metas
                    }
                send_frame(conn, ("welcome_tree", blob, sub))
        finally:
            up.close()
    finally:
        for conn in child_conns.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if ctrl_listener is not None:
            ctrl_listener.close()
            try:
                os.unlink(ctrl_path(sockdir, rank))
            except OSError:  # pragma: no cover - already swept
                pass

    shared = pickle.loads(blob)
    meta = None if metas is None else metas.get(rank)
    return shared["peers"], shared["config"], meta


# ---------------------------------------------------------------------------
# Launcher side
# ---------------------------------------------------------------------------


def serve_tree_rendezvous(
    listener: socket.socket,
    nprocs: int,
    config: Any,
    metas: Optional[list],
    *,
    on_tick=None,
) -> tuple[dict[int, tuple], dict[int, socket.socket]]:
    """The launcher's half of the tree bootstrap.

    Accepts the root's aggregated hellos, answers with the once-pickled
    welcome blob, then collects every child's ``("register", rank)``
    connection.  *on_tick* (if given) runs on every accept timeout — the
    process backend hooks its deadline and child-liveness checks there;
    it aborts the wait by raising.

    Returns ``(addrs, conns)``: the rank → data-address map and the
    rank → direct-connection map the result/shutdown protocol runs over.
    """
    addrs = serve_tree_address_exchange(listener, nprocs, config, metas, on_tick=on_tick)
    conns: dict[int, socket.socket] = {}
    while len(conns) < nprocs:
        try:
            conn, _ = listener.accept()
        except socket.timeout:
            if on_tick is not None:
                on_tick()
            continue
        frame = recv_frame(conn, timeout=30.0)
        if not frame or frame[0] != "register":
            raise TransportError(f"expected register frame, got {frame!r}")
        conns[frame[1]] = conn
    return addrs, conns


def serve_tree_address_exchange(
    listener: socket.socket,
    nprocs: int,
    config: Any,
    metas: Optional[list],
    *,
    on_tick=None,
) -> dict[int, tuple]:
    """The launcher's side of the tree address exchange alone: accept
    the root's aggregated hellos, answer with the once-pickled welcome
    blob.  Returns the rank → data-address map; the follow-up
    per-child registration is collected by
    :func:`serve_tree_rendezvous` (and timed separately by
    ``bench_init``, which only measures this part).
    """
    addrs: dict[int, tuple] = {}
    root_conn: Optional[socket.socket] = None
    while root_conn is None:
        try:
            conn, _ = listener.accept()
        except socket.timeout:
            if on_tick is not None:
                on_tick()
            continue
        frame = recv_frame(conn, timeout=30.0)
        if not frame or frame[0] != "hellos":
            raise TransportError(f"expected aggregated hellos, got {frame!r}")
        root_conn = conn
        addrs.update(frame[2])
    if len(addrs) != nprocs:
        raise TransportError(
            f"aggregated hellos name {len(addrs)} ranks, expected {nprocs}"
        )

    blob = pickle.dumps(
        {"peers": dict(addrs), "config": config}, protocol=pickle.HIGHEST_PROTOCOL
    )
    meta_map = None if metas is None else {r: metas[r] for r in range(nprocs)}
    send_frame(root_conn, ("welcome_tree", blob, meta_map))
    root_conn.close()
    return addrs
