"""The process backend: every MPI rank is a real OS process.

The thread backend runs every simulated rank inside one interpreter — the
one substitution that least resembles the paper's platforms, where each
MPH component is a separate executable on distributed memory.  This
module restores the real thing, following the rank-bootstrap shape of
the MPD process-management papers (Butler, Gropp & Lusk): a parent
process plays the *process manager*, children rendezvous with it over a
control socket, and the parent wires them into one world by exchanging
the rank → address map.

Bootstrap handshake (all frames use the transport's length-prefixed
pickle framing, :func:`~repro.mpi.transport.send_frame`):

1. The parent binds a rendezvous listener and spawns ``nprocs`` children
   (``fork`` for :func:`run_procs`, ``exec`` of
   ``python -m repro.tools.mphchild`` for :func:`run_exec_job`).
2. Each child binds its own *data* listener — before anyone learns its
   address, so no sender can race it — then exchanges addresses with the
   parent.  Under the default ``config.bootstrap == "tree"`` scheme the
   exchange runs through a fanout-ary relay tree
   (:mod:`repro.mpi.bootstrap`): hellos aggregate upward, the welcome
   payload is pickled once and relayed downward as opaque bytes, and
   each child then *registers* a direct parent connection.  Under the
   flat scheme (``"flat"``, or any TCP job) each child instead connects
   directly, sends ``("hello", rank, data_address)``, and waits for a
   personal ``("welcome", {nprocs, peers, config, meta})`` frame.
3. Either way every child ends up holding the full rank → address map,
   the :class:`~repro.mpi.world.WorldConfig`, its per-rank launcher
   metadata, and a direct control connection to the parent.
4. Each child builds a :class:`~repro.mpi.transport.SocketTransport` over
   the peer map, a :class:`ProcessWorld` replica, and its ``COMM_WORLD``
   handle, then runs the rank function.
5. The child reports ``("result", rank, ok, payload, traffic)`` and then
   *keeps serving inbound connections* until the parent's
   ``("shutdown",)`` frame — sent only after every result is in — so a
   fast rank can never tear down its mailbox while a slow peer still has
   eager sends in flight.

A child that dies without reporting (segfault, ``sys.exit(3)``, killed)
is detected by the parent polling process liveness; it synthesizes a
:class:`~repro.errors.LaunchError` naming the component and exit code —
nonzero component exits fail the whole job instead of being swallowed.

Every child holds its own :class:`ProcessWorld` replica.  That works for
*all* existing features (collectives, split/dup/create, intercomm,
persistent requests, ssend) because the substrate has exactly one remote
seam — :meth:`World.deliver <repro.mpi.world.World.deliver>` — and only
two kinds of cross-rank agreement: message delivery (now framed over the
socket) and context-id allocation, which is made collision-free by
giving each rank a disjoint id subspace (see
:meth:`ProcessWorld.alloc_context_pair`).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Callable, Optional, Sequence

from repro.errors import (
    AbortError,
    LaunchError,
    ReproError,
    TimeoutError_,
    TransportError,
)
from repro.mpi.bootstrap import (
    child_tree_exchange,
    effective_scheme,
    serve_tree_rendezvous,
)
from repro.mpi.comm import make_world_comm
from repro.mpi.executor import ProcResult, _raise_root_cause
from repro.mpi.transport import (
    SocketTransport,
    make_listener,
    recv_frame,
    send_frame,
)
from repro.mpi.world import World, WorldConfig

#: How long a child waits for the parent's welcome / shutdown frames.
_CHILD_CTRL_TIMEOUT = 120.0
#: Grace for siblings to unwind after a child dies without reporting.
_DEATH_GRACE = 3.0


class ChildExitError(LaunchError):
    """A child process died without reporting a result (nonzero exit,
    signal, or killed).  Preferred as the job's root cause over the
    secondary transport errors its siblings see when their connections
    to the dead rank fail."""

    def __init__(self, message: str, *, rank: int, label: str, exit_code):
        super().__init__(message)
        self.rank = rank
        self.label = label
        self.exit_code = exit_code


class ProcessWorld(World):
    """One rank's world replica on the process backend.

    Differences from the shared thread-backend :class:`World`:

    * **Disjoint context-id subspaces.**  Communicator creation allocates
      a context pair on one agreeing rank (the root of a split, the
      leader of an intercomm) and distributes it by message.  With a
      world replica per process there is no shared counter, so each rank
      allocates from its own arithmetic progression — rank *r* hands out
      pairs starting at ``2 + 2r`` with stride ``2 * nprocs``.  Any two
      ranks' allocations are disjoint by construction, and a pair stays
      consecutive ``(n, n+1)`` as the communicator code assumes.
    * **Abort broadcast.**  A local abort is forwarded to every peer as
      an ``abort`` control frame so blocked siblings unwind instead of
      hanging until the parent's wall-clock timeout; remote aborts are
      recorded without re-broadcast (no storms).
    * **Local-only deadlock scan.**  The all-blocked watchdog sees only
      this process's single rank, so for ``nprocs > 1`` it can never
      declare a (necessarily global) deadlock; the parent's timeout is
      the cross-process backstop.
    """

    def __init__(self, nprocs: int, config: Optional[WorldConfig], rank: int):
        super().__init__(nprocs, config)
        #: This process's world rank (a thread-backend World has no
        #: single rank; a process world does).
        self.my_rank = rank
        self._ctx_stride = 2 * nprocs
        self._next_ctx = 2 + 2 * rank
        self._abort_broadcast = threading.Event()

    def alloc_context_pair(self) -> tuple[int, int]:
        with self._ctx_lock:
            pair = (self._next_ctx, self._next_ctx + 1)
            self._next_ctx += self._ctx_stride
            return pair

    def abort(self, exc: AbortError) -> None:
        super().abort(exc)
        transport = self.transport
        if transport is not None and not self._abort_broadcast.is_set():
            self._abort_broadcast.set()
            transport.broadcast_abort(self.my_rank, str(exc))

    def abort_from_remote(self, origin: int, message: str) -> None:
        """Record an abort initiated by a peer (no re-broadcast)."""
        self._abort_broadcast.set()
        World.abort(self, AbortError(message, origin_rank=origin))


def rendezvous_prefix(namespace: Optional[str] = None) -> str:
    """The rendezvous-directory (and thereby shm-segment) name prefix for
    a job, optionally namespaced.

    The per-job isolation seam used by the MPH service: every job the
    service launches passes its job id as *namespace*, so its sockets and
    shared-memory segments are attributable — ``list_segments`` /
    ``sweep_segments`` with this prefix see exactly that job's leftovers
    and nothing else.  The namespace is sanitized to filesystem-safe
    characters and truncated, keeping Unix socket paths under the
    platform's ~108-byte limit.
    """
    if not namespace:
        return "repro-mpi-"
    clean = "".join(c if c.isalnum() or c in "._" else "-" for c in str(namespace))
    return f"repro-mpi-{clean[:24]}-"


def _validate_process_config(config: WorldConfig) -> None:
    if config.fault_schedule is not None:
        raise ValueError(
            "fault_schedule requires the thread backend: fault injection "
            "hooks live in the shared world, which the process backend "
            "replicates per rank"
        )
    if config.match_schedule is not None:
        raise ValueError(
            "match_schedule requires the thread backend: schedule "
            "exploration needs one shared match arbiter"
        )


def _socket_family(config: WorldConfig) -> str:
    return "tcp" if config.transport == "tcp" else "unix"


def _format_addr(addr: tuple) -> str:
    if addr[0] == "unix":
        return f"unix:{addr[1]}"
    return f"tcp:{addr[1]}:{addr[2]}"


def _parse_addr(text: str) -> tuple:
    kind, _, rest = text.partition(":")
    if kind == "unix":
        return ("unix", rest)
    host, _, port = rest.rpartition(":")
    return ("tcp", host, int(port))


def _connect(addr: tuple) -> socket.socket:
    if addr[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(addr[1])
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.connect((addr[1], addr[2]))
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


# ---------------------------------------------------------------------------
# Child side
# ---------------------------------------------------------------------------


def child_session(
    rendezvous: tuple,
    rank: int,
    family: str,
    sockdir: str,
    run: Callable[[Any, Any], Any],
    *,
    nprocs: Optional[int] = None,
    bootstrap: str = "flat",
    fanout: int = 8,
) -> None:
    """One child's whole life: handshake, run the rank, report, linger.

    *run* is called as ``run(comm_world, meta)`` where *meta* is the
    per-rank launcher metadata from the welcome frame.  Shared by the
    fork children of :func:`run_procs` (which close over the rank
    function directly) and the exec children of ``repro.tools.mphchild``
    (which resolve the function from *meta*).

    *bootstrap*/*fanout*/*nprocs* select the address-exchange scheme
    (the parent passes its resolved choice down, since a child cannot
    read the :class:`~repro.mpi.world.WorldConfig` it has yet to
    receive): ``"tree"`` relays through :mod:`repro.mpi.bootstrap`,
    ``"flat"`` is the direct hello/welcome exchange.
    """
    listener, addr = make_listener(family, os.path.join(sockdir, f"rank{rank}.sock"))
    if effective_scheme(bootstrap, family, nprocs or 1) == "tree":
        assert nprocs is not None
        peers, config, meta, ctrl = child_tree_exchange(
            rendezvous, rank, nprocs, fanout, sockdir, addr
        )
    else:
        ctrl = _connect(rendezvous)
        send_frame(ctrl, ("hello", rank, addr))
        welcome = recv_frame(ctrl, timeout=_CHILD_CTRL_TIMEOUT)
        if not welcome or welcome[0] != "welcome":
            raise TransportError(f"expected welcome frame, got {welcome!r}")
        info = welcome[1]
        nprocs = info["nprocs"]
        config = info["config"]
        peers = info["peers"]
        meta = info.get("meta")
    try:
        world = ProcessWorld(nprocs, config, rank)
        if config.transport in ("auto", "shm"):
            # MPICH-G2-style per-pair protocol selection: shm rings for
            # same-node peers, the bootstrap sockets otherwise.  The
            # segment prefix is derived from the job's private sockdir,
            # so segment names are unique per job and the parent can
            # sweep leftovers by prefix.
            from repro.mpi.shm import ShmTransport

            transport = ShmTransport(
                rank,
                nprocs,
                listener,
                peers,
                config=config,
                prefix=os.path.basename(sockdir),
                topology=world.topology,
            )
        else:
            transport = SocketTransport(rank, nprocs, listener, peers)
        # A peer dying mid-transfer must surface as a rank failure so
        # posted receives raise instead of hanging — on shm there is no
        # socket to error out of a ring read (only the doorbell conn's
        # EOF), and even on plain sockets a receive with no in-flight
        # frame would otherwise park forever.
        transport.on_peer_lost = world.proc_failed
        transport.deliver_local = world.mailboxes[rank].deliver
        transport.on_abort = world.abort_from_remote
        transport.on_error = lambda exc: world.abort(
            AbortError(f"transport stream failed on rank {rank}: {exc}")
        )
        transport.on_wire = world.record_wire
        world.transport = transport
        transport.start()

        comm = make_world_comm(world, rank)
        ok, value, exc = True, None, None
        try:
            value = run(comm, meta)
        except BaseException as e:  # noqa: BLE001 - everything is reported
            ok, exc = False, e
            if not isinstance(e, AbortError):
                abort_exc = AbortError(
                    f"world rank {rank} raised {type(e).__name__}: {e}",
                    origin_rank=rank,
                )
                abort_exc.__cause__ = e
                world.abort(abort_exc)  # broadcasts to peers
        finally:
            world.proc_done(rank)

        payload = value if ok else exc
        traffic = world.traffic_snapshot()
        frame = ("result", rank, ok, payload, traffic)
        try:
            pickle.dumps(frame)
        except Exception as pickle_exc:  # noqa: BLE001 - degrade, don't die
            what = "returned a value" if ok else "raised an exception"
            frame = (
                "result",
                rank,
                False,
                ReproError(
                    f"rank {rank} {what} that cannot cross the process "
                    f"boundary ({pickle_exc}): {payload!r}"
                ),
                traffic,
            )
        send_frame(ctrl, frame)

        # Linger until the parent has every result: a peer may still be
        # draining eager sends into our mailbox, and tearing the
        # transport down early would turn its sends into hard errors.
        try:
            recv_frame(ctrl, timeout=_CHILD_CTRL_TIMEOUT)
        except TransportError:
            pass
        transport.close()
        world.progress.shutdown()
    finally:
        try:
            ctrl.close()
        except OSError:  # pragma: no cover - defensive
            pass


def _fork_child_main(
    rendezvous: tuple,
    rank: int,
    family: str,
    sockdir: str,
    fn,
    fn_args: tuple,
    fn_kwargs: dict,
    log_path: Optional[str],
    nprocs: int,
    bootstrap: str,
    fanout: int,
) -> None:
    if log_path is not None:
        fd = os.open(log_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        os.dup2(fd, 1)
        os.dup2(fd, 2)
        os.close(fd)
    child_session(
        rendezvous,
        rank,
        family,
        sockdir,
        lambda comm, meta: fn(comm, *fn_args, **fn_kwargs),
        nprocs=nprocs,
        bootstrap=bootstrap,
        fanout=fanout,
    )


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _ChildHandle:
    """Uniform liveness/termination view over fork and exec children."""

    def __init__(self, rank: int, label: str):
        self.rank = rank
        self.label = label

    def exitcode(self) -> Optional[int]:  # pragma: no cover - interface
        raise NotImplementedError

    def terminate(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def join(self, timeout: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class _ForkHandle(_ChildHandle):
    def __init__(self, rank: int, label: str, proc: multiprocessing.process.BaseProcess):
        super().__init__(rank, label)
        self.proc = proc

    def exitcode(self) -> Optional[int]:
        return self.proc.exitcode

    def terminate(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()

    def join(self, timeout: float) -> None:
        self.proc.join(timeout)
        if self.proc.is_alive():  # pragma: no cover - stuck child
            self.proc.kill()
            self.proc.join(1.0)


class _ExecHandle(_ChildHandle):
    def __init__(self, rank: int, label: str, proc: subprocess.Popen, logfile=None):
        super().__init__(rank, label)
        self.proc = proc
        self.logfile = logfile

    def exitcode(self) -> Optional[int]:
        return self.proc.poll()

    def terminate(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()

    def join(self, timeout: float) -> None:
        try:
            self.proc.wait(timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            self.proc.kill()
            self.proc.wait(1.0)
        if self.logfile is not None:
            self.logfile.close()
            self.logfile = None


class _Rendezvous:
    """The parent half of the bootstrap: accept hellos, send welcomes,
    collect results, detect silent deaths, and shut everyone down."""

    def __init__(
        self,
        nprocs: int,
        config: WorldConfig,
        family: str,
        namespace: Optional[str] = None,
    ):
        self.nprocs = nprocs
        self.config = config
        self.family = family
        #: Resolved address-exchange scheme (TCP cannot run the tree).
        self.scheme = effective_scheme(config.bootstrap, family, nprocs)
        self.sockdir = tempfile.mkdtemp(prefix=rendezvous_prefix(namespace))
        self.listener, self.addr = make_listener(
            family, os.path.join(self.sockdir, "rendezvous.sock")
        )

    # -- lifecycle ---------------------------------------------------------

    def cleanup(self) -> None:
        try:
            self.listener.close()
        except OSError:  # pragma: no cover - defensive
            pass
        # Sweep any shm segments of this job that a crashed child never
        # unlinked itself (segment names derive from the sockdir name,
        # so the prefix is job-unique).  Runs on every exit path of
        # _finish — including ChildExitError — so /dev/shm can't leak.
        from repro.mpi.shm import sweep_segments

        sweep_segments(os.path.basename(self.sockdir))
        shutil.rmtree(self.sockdir, ignore_errors=True)

    # -- protocol ----------------------------------------------------------

    def run(
        self,
        handles: Sequence[_ChildHandle],
        metas: Optional[Sequence[Any]],
        timeout: float,
    ) -> list[ProcResult]:
        """Drive the whole parent side; returns per-rank results.

        Raises :class:`~repro.errors.TimeoutError_` if the job exceeds
        *timeout*; a child that dies without reporting becomes a
        :class:`~repro.errors.LaunchError` result for its rank.
        """
        deadline = time.monotonic() + timeout
        by_rank = {h.rank: h for h in handles}
        results: dict[int, ProcResult] = {}
        conns: dict[int, socket.socket] = {}
        try:
            try:
                if self.scheme == "tree":
                    self._gather_tree(conns, by_rank, results, metas, deadline)
                else:
                    self._gather_hellos(conns, by_rank, results, deadline)
                    for rank, conn in conns.items():
                        peers = {r: a for r, a in self._addrs.items()}
                        send_frame(
                            conn,
                            (
                                "welcome",
                                {
                                    "nprocs": self.nprocs,
                                    "peers": peers,
                                    "config": self.config,
                                    "meta": metas[rank] if metas is not None else None,
                                },
                            ),
                        )
            except _BootstrapDead:
                return [results[r] for r in sorted(results)]
            self._collect_results(conns, by_rank, results, deadline)
        except TimeoutError_:
            for h in handles:
                h.terminate()
            raise
        finally:
            for conn in conns.values():
                try:
                    send_frame(conn, ("shutdown",))
                except (TransportError, OSError):
                    pass
            for conn in conns.values():
                try:
                    conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            for h in handles:
                h.join(5.0)
        return [results[r] for r in sorted(results)]

    def _gather_hellos(self, conns, by_rank, results, deadline) -> None:
        self._addrs: dict[int, tuple] = {}
        self.listener.settimeout(0.2)
        while len(conns) < self.nprocs:
            self._check_deadline(deadline, "rank bootstrap")
            dead = self._dead_without_result(by_rank, results, conns)
            if dead:
                self._fail_bootstrap(dead, by_rank, results)
            try:
                conn, _ = self.listener.accept()
            except socket.timeout:
                continue
            hello = recv_frame(conn, timeout=10.0)
            if not hello or hello[0] != "hello":
                raise LaunchError(f"malformed hello frame: {hello!r}")
            _, rank, addr = hello
            conns[rank] = conn
            self._addrs[rank] = addr

    def _gather_tree(self, conns, by_rank, results, metas, deadline) -> None:
        """Tree-scheme bootstrap: one aggregated hellos frame from the
        relay root, one once-pickled welcome back, then a direct
        ``register`` connection per child (collected here into *conns*,
        after which the result/shutdown protocol is scheme-agnostic)."""

        def tick() -> None:
            self._check_deadline(deadline, "rank bootstrap")
            dead = self._dead_without_result(by_rank, results, conns)
            if dead:
                # A child died mid-exchange: its whole subtree stalls, so
                # nobody can form a world.  Same handling as flat.
                self._fail_bootstrap(dead, by_rank, results)

        self.listener.settimeout(0.2)
        self._addrs, registered = serve_tree_rendezvous(
            self.listener,
            self.nprocs,
            self.config,
            list(metas) if metas is not None else None,
            on_tick=tick,
        )
        conns.update(registered)

    def _fail_bootstrap(self, dead, by_rank, results) -> None:
        """A child died before the world formed: record it, terminate the
        siblings that can never proceed, and abandon the bootstrap."""
        for h in dead:
            results[h.rank] = ProcResult(rank=h.rank, exception=self._death_error(h))
        for h in by_rank.values():
            h.terminate()
        for rank in by_rank:
            if rank not in results:
                results[rank] = ProcResult(
                    rank=rank,
                    exception=LaunchError(
                        f"rank {rank} was terminated because a "
                        f"sibling died during bootstrap"
                    ),
                )
        raise _BootstrapDead()

    def _collect_results(self, conns, by_rank, results, deadline) -> None:
        inbox: queue.Queue = queue.Queue()

        def reader(rank: int, conn: socket.socket) -> None:
            try:
                frame = recv_frame(conn, timeout=None)
            except (TransportError, OSError) as exc:
                inbox.put((rank, exc))
            else:
                inbox.put((rank, frame))

        for rank, conn in conns.items():
            threading.Thread(
                target=reader, args=(rank, conn), daemon=True,
                name=f"rendezvous-reader-{rank}",
            ).start()

        death_deadline = None
        while len(results) < self.nprocs:
            now = time.monotonic()
            if death_deadline is not None and now >= death_deadline:
                # Grace expired: whoever still has no result is wedged on
                # the dead rank; terminate and synthesize.
                for rank, h in by_rank.items():
                    if rank not in results:
                        h.terminate()
                        results[rank] = ProcResult(
                            rank=rank,
                            exception=self._death_error(h)
                            if h.exitcode() not in (0, None)
                            else LaunchError(
                                f"component {h.label!r} (world rank {rank}) "
                                f"was terminated: a sibling died without "
                                f"reporting a result"
                            ),
                        )
                return
            self._check_deadline(deadline, "job")
            dead = self._dead_without_result(by_rank, results, None)
            if dead and death_deadline is None:
                death_deadline = now + _DEATH_GRACE
            try:
                rank, frame = inbox.get(timeout=0.2)
            except queue.Empty:
                continue
            if rank in results:
                continue
            if isinstance(frame, tuple) and frame and frame[0] == "result":
                _, rank_, ok, payload, traffic = frame
                results[rank] = ProcResult(
                    rank=rank,
                    value=payload if ok else None,
                    exception=None if ok else payload,
                    traffic=traffic,
                )
            # EOF (None) or a transport error: the liveness poll above
            # will classify the death on a later iteration.

    def _dead_without_result(self, by_rank, results, conns) -> list[_ChildHandle]:
        dead = []
        for rank, h in by_rank.items():
            if rank in results:
                continue
            if conns is not None and rank in conns:
                continue
            if h.exitcode() is not None:
                dead.append(h)
        return dead

    @staticmethod
    def _death_error(h: _ChildHandle) -> ChildExitError:
        return ChildExitError(
            f"component {h.label!r} (world rank {h.rank}) exited with "
            f"code {h.exitcode()} without reporting a result",
            rank=h.rank,
            label=h.label,
            exit_code=h.exitcode(),
        )

    @staticmethod
    def _check_deadline(deadline: float, what: str) -> None:
        if time.monotonic() >= deadline:
            raise TimeoutError_(f"{what} exceeded its wall-clock budget")


class _BootstrapDead(Exception):
    """Internal: bootstrap aborted because a child died before hello."""


def _finish(rendezvous, handles, metas, timeout) -> list[ProcResult]:
    try:
        results = rendezvous.run(handles, metas, timeout)
    finally:
        rendezvous.cleanup()
    # A silent child death is the root cause of whatever transport
    # fallout its siblings saw; name the dead component first.
    for r in results:
        if isinstance(r.exception, ChildExitError):
            raise r.exception
    _raise_root_cause(results)
    return results


def run_procs(
    nprocs: int,
    rank_fns: Sequence[Callable],
    *,
    fn_args: Sequence[Any] = (),
    fn_kwargs: Optional[dict] = None,
    config: Optional[WorldConfig] = None,
    timeout: float = 120.0,
    log_dir: Optional[str] = None,
    labels: Optional[Sequence[str]] = None,
    namespace: Optional[str] = None,
) -> list[ProcResult]:
    """Run one callable per rank, each as a **forked OS process**.

    The process-backend analogue of
    :func:`~repro.mpi.executor.run_world`: same contract (per-rank
    :class:`~repro.mpi.executor.ProcResult` list, root-cause exception
    re-raised), but every rank owns an interpreter, a world replica, and
    a socket transport.  Fork inheritance carries the rank functions, so
    closures work without being picklable.

    With *log_dir*, each child's stdout+stderr are redirected at the OS
    level to ``<log_dir>/<label>.log`` — real per-process log files, not
    the thread backend's ``sys.stdout`` proxy.

    *namespace* scopes the job's rendezvous directory and shm segments
    under :func:`rendezvous_prefix` (the MPH service's per-job isolation
    seam).
    """
    if len(rank_fns) != nprocs:
        raise ValueError(f"need {nprocs} rank functions, got {len(rank_fns)}")
    config = config or WorldConfig(backend="process")
    _validate_process_config(config)
    labels = list(labels) if labels is not None else [f"rank{r}" for r in range(nprocs)]
    if log_dir is not None:
        os.makedirs(log_dir, exist_ok=True)

    rendezvous = _Rendezvous(nprocs, config, _socket_family(config), namespace)
    ctx = multiprocessing.get_context("fork")
    handles: list[_ChildHandle] = []
    try:
        for r in range(nprocs):
            log_path = (
                os.path.join(log_dir, f"{labels[r]}.log") if log_dir is not None else None
            )
            proc = ctx.Process(
                target=_fork_child_main,
                args=(
                    rendezvous.addr,
                    r,
                    rendezvous.family,
                    rendezvous.sockdir,
                    rank_fns[r],
                    tuple(fn_args),
                    dict(fn_kwargs or {}),
                    log_path,
                    nprocs,
                    rendezvous.scheme,
                    config.bootstrap_fanout,
                ),
                name=f"mpi-proc-{r}",
            )
            proc.start()
            handles.append(_ForkHandle(r, labels[r], proc))
    except BaseException:
        for h in handles:
            h.terminate()
        rendezvous.cleanup()
        raise
    return _finish(rendezvous, handles, None, timeout)


def run_exec_job(
    nprocs: int,
    metas: Sequence[dict],
    *,
    config: Optional[WorldConfig] = None,
    timeout: float = 120.0,
    log_dir: Optional[str] = None,
    labels: Optional[Sequence[str]] = None,
    namespace: Optional[str] = None,
) -> list[ProcResult]:
    """Run *nprocs* ranks, each ``exec``'d as its own Python executable.

    True MIME in the paper's sense: every rank is an independent
    ``python -m repro.tools.mphchild`` process that learns *what to run*
    from its welcome frame's per-rank *meta* dict (see
    :mod:`repro.tools.mphchild` for the schema).  Used by ``mphrun
    --backend process``.
    """
    if len(metas) != nprocs:
        raise ValueError(f"need {nprocs} child metas, got {len(metas)}")
    config = config or WorldConfig(backend="process")
    _validate_process_config(config)
    labels = list(labels) if labels is not None else [f"rank{r}" for r in range(nprocs)]
    if log_dir is not None:
        os.makedirs(log_dir, exist_ok=True)

    rendezvous = _Rendezvous(nprocs, config, _socket_family(config), namespace)

    # The children must import repro regardless of how the parent got it
    # onto sys.path (installed, PYTHONPATH=src, pytest rootdir magic).
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = pkg_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    handles: list[_ChildHandle] = []
    try:
        for r in range(nprocs):
            argv = [
                sys.executable,
                "-m",
                "repro.tools.mphchild",
                "--rendezvous",
                _format_addr(rendezvous.addr),
                "--rank",
                str(r),
                "--family",
                rendezvous.family,
                "--sockdir",
                rendezvous.sockdir,
                "--nprocs",
                str(nprocs),
                "--bootstrap",
                rendezvous.scheme,
                "--fanout",
                str(config.bootstrap_fanout),
            ]
            logfile = None
            if log_dir is not None:
                logfile = open(os.path.join(log_dir, f"{labels[r]}.log"), "wb")
            proc = subprocess.Popen(
                argv,
                stdout=logfile if logfile is not None else None,
                stderr=subprocess.STDOUT if logfile is not None else None,
                env=env,
            )
            handles.append(_ExecHandle(r, labels[r], proc, logfile))
    except BaseException:
        for h in handles:
            h.terminate()
        rendezvous.cleanup()
        raise
    return _finish(rendezvous, handles, list(metas), timeout)
