"""The process engine: runs simulated MPI processes as OS threads.

One thread per MPI process.  The engine collects per-rank return values and
exceptions, propagates the *root-cause* failure (a user exception or a
detected deadlock, in preference to the secondary ``AbortError`` storms that
follow one), and enforces a wall-clock budget so a wedged job can never hang
the caller.

Because processes communicate only through pickled messages and explicit
buffer copies, running them as threads of one interpreter does not weaken
the distributed-memory discipline the paper's platforms enforce.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.errors import AbortError, DeadlockError, TimeoutError_
from repro.mpi.comm import Comm, make_world_comm
from repro.mpi.faults import SimulatedCrash
from repro.mpi.world import World, WorldConfig

#: Per-rank entry point: receives the process's ``COMM_WORLD`` handle.
RankFn = Callable[..., Any]


@dataclass
class ProcResult:
    """Outcome of one simulated process."""

    rank: int
    value: Any = None
    exception: Optional[BaseException] = None
    #: Process backend only: the child world's final traffic counters
    #: (each OS process has its own world replica, so the counters are
    #: per-rank; the thread backend reads ``world.traffic`` directly).
    traffic: Any = None


def run_world(
    world: World,
    rank_fns: Sequence[RankFn],
    *,
    fn_args: Sequence[Any] = (),
    fn_kwargs: Optional[dict] = None,
    timeout: float = 120.0,
) -> list[ProcResult]:
    """Run one callable per world rank to completion; return all outcomes.

    Parameters
    ----------
    world :
        The world to run in; ``len(rank_fns)`` must equal ``world.nprocs``.
    rank_fns :
        ``rank_fns[r]`` is invoked as ``fn(comm_world, *fn_args,
        **fn_kwargs)`` on rank *r*.
    timeout :
        Wall-clock budget in seconds.  On expiry the world is aborted and
        :class:`~repro.errors.TimeoutError_` is raised.

    Raises
    ------
    Exception
        The root-cause failure of the job, if any rank failed: a user
        exception is preferred over :class:`DeadlockError`, which is
        preferred over secondary :class:`AbortError` unwinds.
    """
    if world.config.backend == "process":
        raise ValueError(
            "run_world is the thread engine; a process-backend config must "
            "go through repro.mpi.procbackend.run_procs (or run_spmd, which "
            "dispatches on config.backend)"
        )
    if len(rank_fns) != world.nprocs:
        raise ValueError(f"need {world.nprocs} rank functions, got {len(rank_fns)}")
    fn_kwargs = fn_kwargs or {}
    results = [ProcResult(rank=r) for r in range(world.nprocs)]

    def runner(rank: int) -> None:
        comm = make_world_comm(world, rank)
        try:
            results[rank].value = rank_fns[rank](comm, *fn_args, **fn_kwargs)
        except SimulatedCrash as exc:
            # Injected fail-stop death: the rank is dead but the world
            # lives on (ULFM semantics) — survivors see ProcessFailedError
            # from operations involving this rank, never a world abort.
            results[rank].exception = exc
            world.proc_failed(rank)
        except BaseException as exc:  # noqa: BLE001 - report all failures
            results[rank].exception = exc
            if not isinstance(exc, AbortError):
                abort_exc = AbortError(
                    f"world rank {rank} raised {type(exc).__name__}: {exc}",
                    origin_rank=rank,
                )
                # Chain the real root cause so sibling ranks' AbortErrors
                # (re-raised by World.check_abort) carry it as __cause__.
                abort_exc.__cause__ = exc
                world.abort(abort_exc)
        finally:
            world.proc_done(rank)

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"mpi-rank-{r}", daemon=True)
        for r in range(world.nprocs)
    ]
    for t in threads:
        t.start()

    deadline = time.monotonic() + timeout
    timed_out = False
    try:
        for t in threads:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                timed_out = True
                break
            t.join(timeout=remaining)
            if t.is_alive():
                timed_out = True
                break
        if timed_out:
            world.abort(AbortError(f"job exceeded wall-clock budget of {timeout}s"))
            for t in threads:
                t.join(timeout=2.0)
            still = [t.name for t in threads if t.is_alive()]
            raise TimeoutError_(
                f"job exceeded {timeout}s"
                + (f"; threads still running: {still}" if still else "")
            )
    finally:
        # Retire the deadlock watchdog now instead of waiting out its idle
        # timer; it restarts lazily if the world is run again.
        world.progress.shutdown()

    _raise_root_cause(results)
    return results


def _raise_root_cause(results: Sequence[ProcResult]) -> None:
    """Re-raise the most informative failure among per-rank exceptions.

    An injected :class:`SimulatedCrash` is a *survivable* fail-stop death:
    if any rank completed normally the job as a whole succeeded in
    degraded mode, and the crash stays recorded in that rank's
    :class:`ProcResult` instead of being raised.  It is only raised when
    nobody survived and nothing more informative exists.
    """
    failures = [
        r
        for r in results
        if r.exception is not None and not isinstance(r.exception, SimulatedCrash)
    ]
    if not failures:
        crashes = [r for r in results if isinstance(r.exception, SimulatedCrash)]
        if crashes and all(r.exception is not None for r in results):
            raise crashes[0].exception
        return
    for bucket in (
        lambda e: not isinstance(e, (AbortError, DeadlockError)),
        lambda e: isinstance(e, DeadlockError),
        lambda e: True,
    ):
        chosen = next((r for r in failures if bucket(r.exception)), None)
        if chosen is not None:
            raise chosen.exception
    raise AssertionError("unreachable")


def run_spmd(
    nprocs: int,
    fn: RankFn,
    *,
    fn_args: Sequence[Any] = (),
    fn_kwargs: Optional[dict] = None,
    config: Optional[WorldConfig] = None,
    timeout: float = 120.0,
) -> list[Any]:
    """Run *fn* on every rank of a fresh *nprocs*-process world (SPMD).

    Returns the per-rank return values in rank order.

    >>> from repro.mpi import run_spmd
    >>> run_spmd(4, lambda comm: comm.allreduce(comm.rank))
    [6, 6, 6, 6]

    With ``config.backend == "process"`` the ranks run as forked OS
    processes over the socket transport instead of threads
    (:mod:`repro.mpi.procbackend`); the contract is identical.
    """
    if config is not None and config.backend == "process":
        from repro.mpi.procbackend import run_procs

        results = run_procs(
            nprocs,
            [fn] * nprocs,
            fn_args=fn_args,
            fn_kwargs=fn_kwargs,
            config=config,
            timeout=timeout,
        )
        return [r.value for r in results]
    world = World(nprocs, config)
    results = run_world(
        world, [fn] * nprocs, fn_args=fn_args, fn_kwargs=fn_kwargs, timeout=timeout
    )
    return [r.value for r in results]
