"""Deterministic schedule exploration for the simulated MPI substrate.

The threads-as-ranks world only ever exercises the interleavings the host
OS scheduler happens to produce, yet MPH's correctness claims quantify
over *every* legal interleaving — exactly the nondeterministic
control-flow hazard of wildcard receives.  This module makes the legal
nondeterminism a seeded, replayable input:

* :class:`MatchSchedule` — armed via
  :attr:`repro.mpi.world.WorldConfig.match_schedule` (one ``is None``
  branch per choice point when off, mirroring ``fault_schedule``).  It
  decides every nondeterministic choice the substrate is allowed to
  make: which candidate a wildcard (``ANY_SOURCE``/``ANY_TAG``) receive
  matches, which pending envelope a probe reports, which completed
  request ``waitany``/``waitsome`` returns first, and whether an
  arriving envelope is *held* invisible for a bounded number of
  visibility events (modelling network delay, i.e. probe visibility and
  delivery-order permutation).  Every reordering it produces is legal
  MPI: per-(source, context) FIFO — the non-overtaking guarantee — is
  enforced structurally, never decided.
* :class:`TraceRecorder` / :class:`MatchTrace` — a compact log of every
  decision, keyed so that per-rank decision streams are reproducible for
  deterministic programs; ``to_spec``/``from_spec`` round-trip like
  :class:`~repro.mpi.faults.FaultSchedule` specs, and
  :meth:`MatchSchedule.from_trace` rebuilds a schedule that replays a
  recorded trace as decision *overrides*.
* :func:`explore` — the divergence detector: run one program under N
  seeds and diff the per-rank results; differing digests mean the
  program's outcome depends on the schedule — a race.
* :meth:`MatchSchedule.shrink` / :func:`minimize` — delta-debug a
  failing schedule down to the minimal set of decision overrides that
  still triggers the bug.
* :func:`repro_command` / :func:`parse_repro_command` — the one-line
  ``pytest ... --mpi-match-seed=K`` reproduction command the test
  plugin (``tests/plugins/schedule_sweep.py``) prints on failure.

Determinism model
-----------------
Real threads cannot give a reproducible *global* interleaving, so no
decision is keyed on wall-clock or arrival order.  Instead every
decision is a pure function of ``(seed, kind, site, occurrence
counter, candidate identity)``:

* wildcard-match and probe choices rank candidates by a per-candidate
  weight ``site_rng(seed, kind, rank, seq, source, tag)`` — the chosen
  *message* depends only on which candidates exist, not on the order
  they happened to arrive or how the list was enumerated;
* hold lengths are keyed per ``(destination, source, per-stream
  delivery index)``, which is the sender's program order;
* the occurrence counters (a receive's post index, a probe's scan
  index) follow the owner rank's own program order.

Under a fixed seed, any program whose candidate sets are determined by
its own synchronization structure (sends complete before a barrier,
receives after) therefore produces a bit-identical
:meth:`MatchTrace.canonical` trace on every run.  Programs that race
unsynchronized senders against a wildcard receive retain *arrival-set*
nondeterminism — which the :func:`explore` detector treats as part of
the race surface being probed, not as something to hide.

The virtual-time clock is the recorder's logical decision counter: each
recorded decision advances it by one, so trace dumps order decisions by
causality of the schedule itself rather than by wall clock.
"""

from __future__ import annotations

import hashlib
import pickle
import shlex
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional

import threading

from repro.errors import ReproError
from repro.mpi.faults import site_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import WorldConfig

#: Decision kinds a schedule can record.  ``match`` — which candidate a
#: posted receive claimed (keyed by the receive's per-rank post index);
#: ``probe`` — which pending envelope a probe reported (per-rank scan
#: index); ``waitany``/``waitsome`` — which completed request was
#: returned first (per-rank call index); ``hold`` — the visibility delay
#: decided for one delivery (keyed ``(source, per-stream index)``).
KINDS = ("match", "probe", "waitany", "waitsome", "hold")


def _freeze(value):
    """Recursively turn lists (from JSON specs) back into tuples."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class TraceEvent:
    """One recorded schedule decision.

    ``key`` identifies the decision site deterministically within
    ``(kind, rank)``: the post index for matches, the scan index for
    probes, the call index for waits, ``(source, stream_index)`` for
    holds.  ``cands`` is the candidate tuple the decision chose from —
    ``(source, tag)`` pairs for matches/probes, request indices for
    waits, empty for holds (where ``chosen`` is the hold length).
    ``vt`` is the virtual-time stamp: the recorder's logical decision
    clock at record time (informational ordering only — it is excluded
    from :meth:`MatchTrace.canonical`, which must not depend on how two
    ranks' decision streams interleaved).
    """

    kind: str
    rank: int
    key: object
    cands: tuple
    chosen: int
    vt: int


class MatchTrace:
    """An immutable log of schedule decisions, ready to diff or replay."""

    def __init__(self, events: Iterable[TraceEvent] = ()):
        self.events: tuple[TraceEvent, ...] = tuple(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def canonical(self) -> tuple:
        """The reproducible view of the trace: every non-``hold`` event
        as ``(kind, rank, key, cands, chosen)``, sorted.

        Sorting removes the (non-reproducible) global interleaving of
        per-rank decision streams; ``hold`` events are excluded because
        whether a delivery even *reaches* the hold decision depends on
        whether a matching receive was already posted — an arrival-time
        race the canonical form must not leak.  Hold decisions still
        replay through :meth:`MatchSchedule.from_trace` overrides.
        """
        return tuple(
            sorted(
                (e.kind, e.rank, e.key, e.cands, e.chosen)
                for e in self.events
                if e.kind != "hold"
            )
        )

    def digest(self) -> str:
        """A short stable digest of :meth:`canonical` (race triage)."""
        return hashlib.sha256(repr(self.canonical()).encode()).hexdigest()[:16]

    def decisions(self) -> tuple[TraceEvent, ...]:
        """The events where a real choice existed: more than one
        candidate, or a nonzero hold."""
        return tuple(
            e
            for e in self.events
            if (e.kind == "hold" and e.chosen > 0)
            or (e.kind != "hold" and len(e.cands) > 1)
        )

    def per_rank(self) -> dict[int, tuple]:
        """Each rank's canonical decision subsequence."""
        by_rank: dict[int, list] = {}
        for e in self.events:
            if e.kind == "hold":
                continue
            by_rank.setdefault(e.rank, []).append(
                (e.kind, e.key, e.cands, e.chosen)
            )
        return {r: tuple(sorted(v)) for r, v in by_rank.items()}

    def to_spec(self) -> dict:
        """Plain-data (JSON-able) form; rebuild with :meth:`from_spec`."""
        return {
            "events": [
                [e.kind, e.rank, e.key, e.cands, e.chosen, e.vt]
                for e in self.events
            ]
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "MatchTrace":
        """Rebuild a trace serialized by :meth:`to_spec`."""
        return cls(
            TraceEvent(kind, rank, _freeze(key), _freeze(cands), chosen, vt)
            for kind, rank, key, cands, chosen, vt in spec.get("events", ())
        )

    def __repr__(self) -> str:
        return f"MatchTrace({len(self.events)} events, digest={self.digest()})"


class TraceRecorder:
    """Thread-safe decision log; owns the virtual-time clock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self._vt = 0

    def record(self, kind: str, rank: int, key, cands: tuple, chosen: int) -> None:
        """Append one decision and advance virtual time."""
        with self._lock:
            self._events.append(TraceEvent(kind, rank, key, cands, chosen, self._vt))
            self._vt += 1

    @property
    def vt(self) -> int:
        """Current virtual time (decisions recorded so far)."""
        return self._vt

    def trace(self) -> MatchTrace:
        """A consistent snapshot of everything recorded so far."""
        with self._lock:
            return MatchTrace(self._events)


class MatchSchedule:
    """A seeded, replayable schedule of match-order decisions.

    Arm one through the world config::

        schedule = MatchSchedule(seed=7)
        config = WorldConfig(match_schedule=schedule)

    Parameters
    ----------
    seed :
        Derives every decision (candidate weights, hold lengths).
    policy :
        ``"random"`` (default) — seed-derived choices and holds;
        ``"fifo"`` — always take the lowest ``(source, tag)`` candidate
        and never hold, i.e. a deterministic baseline every override
        replays against.
    hold_prob / hold_max :
        Probability that an unmatched arrival is held invisible, and the
        maximum number of visibility events (deliveries into the same
        mailbox, nonblocking probes) it stays held.  Holds model network
        delay; they are *deadlock-free by construction* — a held
        envelope is force-revealed the moment a matching receive is
        posted or a blocking probe scans for it, so no program blocks on
        a message the schedule is hiding.
    overrides :
        ``{(kind, rank, key): chosen}`` decisions pinned regardless of
        seed/policy (trace replay and :func:`minimize` shrinking).

    A schedule instance carries per-run counters and its trace; reuse it
    across worlds only after :meth:`reset` (the pytest plugin and
    :func:`explore` build a fresh instance per run instead).
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        policy: str = "random",
        hold_prob: float = 0.25,
        hold_max: int = 2,
        overrides: Optional[dict] = None,
    ):
        if policy not in ("random", "fifo"):
            raise ValueError(f"policy must be 'random' or 'fifo', got {policy!r}")
        if not 0.0 <= hold_prob <= 1.0:
            raise ValueError("hold_prob must be in [0, 1]")
        if hold_max < 0:
            raise ValueError("hold_max must be >= 0")
        self.seed = int(seed)
        self.policy = policy
        self.hold_prob = float(hold_prob)
        self.hold_max = int(hold_max)
        self.overrides: dict = dict(overrides or {})
        self._lock = threading.Lock()
        self.reset()

    # -- run state ----------------------------------------------------------

    def reset(self) -> None:
        """Clear per-run counters and start a fresh trace, so the same
        schedule replays on a fresh world exactly as built."""
        with self._lock:
            self._seq: dict[tuple[str, int], int] = {}
            self._stream_seq: dict[tuple[int, int], int] = {}
            self._recorder = TraceRecorder()

    def trace(self) -> MatchTrace:
        """The decision trace of the current (or last) run."""
        return self._recorder.trace()

    def _next_seq(self, kind: str, rank: int) -> int:
        with self._lock:
            n = self._seq.get((kind, rank), 0)
            self._seq[(kind, rank)] = n + 1
            return n

    # -- decision hooks (called from the substrate's hot paths) -------------

    def next_post_seq(self, rank: int) -> int:
        """Allocate the post index of *rank*'s next receive (its ``match``
        decision key).  Called by ``Mailbox.post_recv`` — owner-thread
        order, hence deterministic for a deterministic program."""
        return self._next_seq("match", rank)

    def _pick(self, kind: str, rank: int, key, cands: tuple) -> int:
        """One decision: override > fifo > seeded weight ranking."""
        ov = self.overrides.get((kind, rank, key))
        if ov is not None:
            return max(0, min(int(ov), len(cands) - 1))
        if self.policy == "fifo" or len(cands) == 1:
            return 0
        weights = [
            site_rng(self.seed, kind, rank, key, *(
                c if isinstance(c, tuple) else (c,)
            )).random()
            for c in cands
        ]
        return weights.index(max(weights))

    def choose_match(self, rank: int, post_seq: int, cands: tuple) -> int:
        """Pick which candidate ``(source, tag)`` the receive posted as
        *rank*'s *post_seq*-th claims.  *cands* must already be the legal
        frontier (first matching envelope per source, sorted by
        ``(source, tag)`` so the choice is independent of arrival
        order)."""
        chosen = self._pick("match", rank, post_seq, cands)
        self._recorder.record("match", rank, post_seq, cands, chosen)
        return chosen

    def record_match(self, rank: int, post_seq: int, source: int, tag: int) -> None:
        """Record a forced match (an arriving envelope claimed an
        already-posted receive — MPI mandates posted order, there is no
        choice)."""
        self._recorder.record("match", rank, post_seq, ((source, tag),), 0)

    def choose_probe(self, rank: int, cands: tuple) -> int:
        """Pick which pending envelope a probe reports, among the legal
        frontier.  Consumes one per-rank probe scan index; recorded only
        when a real choice exists."""
        seq = self._next_seq("probe", rank)
        chosen = self._pick("probe", rank, seq, cands)
        if len(cands) > 1:
            self._recorder.record("probe", rank, seq, cands, chosen)
        return chosen

    def choose_wait(self, kind: str, rank: int, cands: tuple) -> int:
        """Pick which completed request ``waitany``/``waitsome`` reports
        first (*cands* are the completed indices, ascending)."""
        seq = self._next_seq(kind, rank)
        chosen = self._pick(kind, rank, seq, cands)
        if len(cands) > 1:
            self._recorder.record(kind, rank, seq, cands, chosen)
        return chosen

    def hold_ttl(self, dest: int, source: int) -> int:
        """Decide the visibility delay of the next delivery on the
        ``source → dest`` stream (0 = visible immediately).

        Called for **every** delivery into *dest* from *source* so the
        per-stream index follows the sender's program order; the mailbox
        applies the hold only when the envelope matched no posted
        receive.  The decision is recorded either way, keyed
        ``(source, stream_index)`` — see :meth:`MatchTrace.canonical`
        for why holds are kept out of the reproducibility comparison.
        """
        with self._lock:
            n = self._stream_seq.get((dest, source), 0)
            self._stream_seq[(dest, source)] = n + 1
        key = (source, n)
        ov = self.overrides.get(("hold", dest, key))
        if ov is not None:
            ttl = max(0, int(ov))
        elif self.policy == "fifo":
            ttl = 0
        else:
            rng = site_rng(self.seed, "hold", dest, source, n)
            ttl = rng.randint(1, self.hold_max) if (
                self.hold_max > 0 and rng.random() < self.hold_prob
            ) else 0
        self._recorder.record("hold", dest, key, (), ttl)
        return ttl

    # -- replay / minimization ---------------------------------------------

    def to_spec(self) -> dict:
        """A plain-data description sufficient to rebuild this schedule
        exactly with :meth:`from_spec` (reproduce a failing seed)."""
        return {
            "seed": self.seed,
            "policy": self.policy,
            "hold_prob": self.hold_prob,
            "hold_max": self.hold_max,
            "overrides": [
                [kind, rank, key, chosen]
                for (kind, rank, key), chosen in sorted(
                    self.overrides.items(), key=repr
                )
            ],
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "MatchSchedule":
        """Rebuild a schedule serialized by :meth:`to_spec`."""
        overrides = {
            (kind, rank, _freeze(key)): chosen
            for kind, rank, key, chosen in spec.get("overrides", ())
        }
        return cls(
            seed=spec.get("seed", 0),
            policy=spec.get("policy", "random"),
            hold_prob=spec.get("hold_prob", 0.25),
            hold_max=spec.get("hold_max", 2),
            overrides=overrides,
        )

    @classmethod
    def from_trace(cls, trace: MatchTrace) -> "MatchSchedule":
        """A schedule that replays *trace*: fifo baseline plus one
        override per decision that differed from the baseline (nonzero
        choice or nonzero hold).  Replay is exact whenever the program
        presents the same candidate sets, which a deterministic program
        does."""
        overrides = {
            (e.kind, e.rank, e.key): e.chosen
            for e in trace.events
            if e.chosen != 0
        }
        return cls(seed=0, policy="fifo", hold_prob=0.0, overrides=overrides)

    def shrink(self) -> Iterator["MatchSchedule"]:
        """Yield every one-override-removed variant (fresh counters), for
        delta-debugging a failing schedule to its minimal trigger."""
        spec = self.to_spec()
        ovs = spec["overrides"]
        for i in range(len(ovs)):
            yield self.from_spec(dict(spec, overrides=ovs[:i] + ovs[i + 1:]))

    def __repr__(self) -> str:
        return (
            f"MatchSchedule(seed={self.seed}, policy={self.policy!r}, "
            f"hold_prob={self.hold_prob}, hold_max={self.hold_max}, "
            f"overrides={len(self.overrides)})"
        )


def minimize(
    schedule: MatchSchedule, failing: Callable[[MatchSchedule], bool]
) -> MatchSchedule:
    """Greedy delta-debugging: repeatedly drop any single override whose
    removal keeps *failing* true, until no single removal does.

    *failing* runs the program under the candidate schedule (fresh
    counters each time) and returns whether the bug still triggers.  The
    returned schedule is rebuilt fresh, ready to run.
    """
    current = schedule
    improved = True
    while improved and current.overrides:
        improved = False
        for cand in current.shrink():
            if failing(cand):
                current = cand
                improved = True
                break
    return MatchSchedule.from_spec(current.to_spec())


# -- divergence detection ---------------------------------------------------


@dataclass
class SeedOutcome:
    """One seed's run in an :func:`explore` sweep."""

    seed: int
    ok: bool
    #: Digest of the per-rank return values (or of the error) — the
    #: thing compared across seeds.
    digest: str
    values: Optional[list] = None
    error: Optional[str] = None
    trace: Optional[MatchTrace] = None
    schedule_spec: Optional[dict] = None


@dataclass
class ExplorationReport:
    """What :func:`explore` found across a seed sweep."""

    outcomes: list[SeedOutcome] = field(default_factory=list)

    @property
    def groups(self) -> dict[str, list[int]]:
        """Seeds grouped by outcome digest."""
        by: dict[str, list[int]] = {}
        for o in self.outcomes:
            by.setdefault(o.digest, []).append(o.seed)
        return by

    @property
    def divergent(self) -> bool:
        """Whether any two seeds produced different outcomes — i.e. the
        program's result depends on the schedule (a race)."""
        return len(self.groups) > 1

    def witnesses(self) -> tuple[SeedOutcome, SeedOutcome]:
        """Two outcomes from different groups (raises if not divergent)."""
        groups = self.groups
        if len(groups) < 2:
            raise ReproError("no divergence: all seeds agree")
        (d1, s1), (d2, s2) = list(groups.items())[:2]
        first = next(o for o in self.outcomes if o.seed == s1[0])
        second = next(o for o in self.outcomes if o.seed == s2[0])
        return first, second

    def summary(self) -> str:
        """One line per outcome group, for test failure messages."""
        return "; ".join(
            f"digest {d} ← seeds {seeds}" for d, seeds in self.groups.items()
        )


def _outcome_digest(values) -> str:
    try:
        data = pickle.dumps(values, protocol=4)
    except Exception:  # unpicklable return values: fall back to repr
        data = repr(values).encode()
    return hashlib.sha256(data).hexdigest()[:16]


def explore(
    fn,
    nprocs: int,
    *,
    seeds=10,
    config: Optional["WorldConfig"] = None,
    timeout: float = 60.0,
    hold_prob: float = 0.25,
    hold_max: int = 2,
    fn_args=(),
    fn_kwargs: Optional[dict] = None,
) -> ExplorationReport:
    """Run ``fn`` (an SPMD rank function) under many match-schedule seeds
    and diff the outcomes — the race detector.

    *seeds* is an int (``range(seeds)``) or an iterable of seeds.  Each
    seed gets a fresh world armed with a fresh
    ``MatchSchedule(seed, hold_prob=..., hold_max=...)``; a run that
    raises contributes an error outcome (deadlocks and aborts diverge
    from clean runs, which is itself a schedule-dependence witness).
    """
    from dataclasses import replace

    from repro.mpi.executor import run_spmd
    from repro.mpi.world import WorldConfig

    seed_list = list(range(seeds)) if isinstance(seeds, int) else list(seeds)
    report = ExplorationReport()
    for seed in seed_list:
        schedule = MatchSchedule(seed, hold_prob=hold_prob, hold_max=hold_max)
        cfg = (
            replace(config, match_schedule=schedule)
            if config is not None
            else WorldConfig(match_schedule=schedule)
        )
        try:
            values = run_spmd(
                nprocs, fn, config=cfg, timeout=timeout,
                fn_args=fn_args, fn_kwargs=fn_kwargs,
            )
        except Exception as exc:  # noqa: BLE001 - outcome, not crash
            err = f"{type(exc).__name__}: {exc}"
            report.outcomes.append(
                SeedOutcome(
                    seed=seed,
                    ok=False,
                    digest=_outcome_digest(("error", type(exc).__name__)),
                    error=err,
                    trace=schedule.trace(),
                    schedule_spec=schedule.to_spec(),
                )
            )
        else:
            report.outcomes.append(
                SeedOutcome(
                    seed=seed,
                    ok=True,
                    digest=_outcome_digest(values),
                    values=values,
                    trace=schedule.trace(),
                    schedule_spec=schedule.to_spec(),
                )
            )
    return report


# -- reproduction commands --------------------------------------------------


def repro_command(
    nodeid: str,
    *,
    match_seed: Optional[int] = None,
    fault_seed: Optional[int] = None,
) -> str:
    """The one-line shell command that replays a failing swept test."""
    parts = ["PYTHONPATH=src", "python", "-m", "pytest", shlex.quote(nodeid)]
    if match_seed is not None:
        parts.append(f"--mpi-match-seed={int(match_seed)}")
    if fault_seed is not None:
        parts.append(f"--mpi-fault-seed={int(fault_seed)}")
    return " ".join(parts)


def parse_repro_command(command: str) -> tuple[str, Optional[int], Optional[int]]:
    """Invert :func:`repro_command`: ``(nodeid, match_seed, fault_seed)``.

    Used by the regression test that proves the printed command really
    replays the recorded trace.
    """
    tokens = shlex.split(command)
    nodeid: Optional[str] = None
    match_seed: Optional[int] = None
    fault_seed: Optional[int] = None
    for tok in tokens:
        if tok.startswith("--mpi-match-seed="):
            match_seed = int(tok.split("=", 1)[1])
        elif tok.startswith("--mpi-fault-seed="):
            fault_seed = int(tok.split("=", 1)[1])
        elif "::" in tok or tok.endswith(".py"):
            nodeid = tok
    if nodeid is None:
        raise ReproError(f"no test nodeid in repro command: {command!r}")
    return nodeid, match_seed, fault_seed
