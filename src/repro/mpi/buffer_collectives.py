"""Buffer-mode collectives: the numpy fast path (uppercase verbs).

Same algorithms as :mod:`repro.mpi.collectives` (selected by the same
:class:`~repro.mpi.world.WorldConfig` switches), but payloads travel as
private array copies instead of pickles — the throughput path for the
large fields climate components exchange.  Semantics follow mpi4py's
uppercase methods: callers pass numpy buffers, roots provide/receive
stacked arrays with a leading rank axis.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import CommError, TruncationError
from repro.mpi.reduce_ops import Op


def _like(arr: np.ndarray) -> np.ndarray:
    return np.empty_like(np.asarray(arr))


def _check_shape(got: np.ndarray, want_shape: tuple, what: str) -> None:
    if got.shape != want_shape:
        raise TruncationError(f"{what}: buffer shape {got.shape} != expected {want_shape}")


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------


def Bcast(comm, buf: np.ndarray, root: int, tag: int) -> np.ndarray:
    """In-place broadcast of *buf* from *root* (every rank passes a buffer
    of identical shape/dtype)."""
    buf = np.asarray(buf)
    size, rank = comm.size, comm.rank
    if size == 1:
        return buf
    hier = comm._hierarchy()
    if hier is not None:
        return _Bcast_hierarchical(comm, buf, root, tag, hier)
    algo = comm._world.config.bcast_algorithm
    if algo == "linear":
        if rank == root:
            dests = [d for d in range(size) if d != root]
            # Snapshot-once fan-out: one read-only copy shared by every
            # destination on the fast path (receivers copy out of it).
            comm._coll_fanout_buffer(dests, tag, buf, "Bcast")
        else:
            _recv_into(comm, buf, root, tag, "Bcast")
        return buf
    return _members_Bcast(comm, range(size), root, buf, tag)


def _members_Bcast(comm, members, vroot: int, buf: np.ndarray, tag: int) -> np.ndarray:
    """Binomial buffer bcast over *members* rooted at virtual rank
    *vroot*.  On the fast path a relay forwards the array it *received*
    verbatim to its children (the transport already owns a private
    snapshot, so no per-child copy is needed) and copies into its own
    buffer only for final delivery."""
    n = len(members)
    if n == 1:
        return buf
    vrank = members.index(comm.rank)
    relative = (vrank - vroot) % n
    inbound = None
    mask = 1
    while mask < n:
        if relative & mask:
            inbound = comm._coll_recv_buffer(
                members[(vrank - mask) % n], tag, "Bcast"
            )
            _check_shape(inbound, buf.shape, "Bcast")
            np.copyto(buf, inbound)
            break
        mask <<= 1
    mask >>= 1
    children = []
    while mask > 0:
        if relative + mask < n:
            children.append(members[(vrank + mask) % n])
        mask >>= 1
    if children:
        if inbound is not None and comm._serialization_fastpath:
            for dst in children:
                comm._coll_forward_buffer(dst, tag, inbound, "Bcast")
        else:
            comm._coll_fanout_buffer(children, tag, buf, "Bcast")
    return buf


def _Bcast_hierarchical(comm, buf: np.ndarray, root: int, tag: int, hier) -> np.ndarray:
    """Two-level buffer broadcast: binomial tree among node leaders
    (root promoted for its node), then a binomial tree within each node."""
    rank = comm.rank
    leaders, root_pos = hier.effective_leaders(root)
    if rank in leaders:
        _members_Bcast(comm, leaders, root_pos, buf, tag)
    members = list(hier.members(rank))
    if len(members) > 1:
        rep = root if hier.same_node(rank, root) else hier.leader(rank)
        _members_Bcast(comm, members, members.index(rep), buf, tag + 1)
    return buf


def _recv_into(comm, buf: np.ndarray, source: int, tag: int, opname: str) -> None:
    arr = comm._coll_recv_buffer(source, tag, opname)
    _check_shape(arr, buf.shape, opname)
    np.copyto(buf, arr)


# ---------------------------------------------------------------------------
# gather / scatter / allgather
# ---------------------------------------------------------------------------


def Gather(comm, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray], root: int, tag: int) -> Optional[np.ndarray]:
    """Gather equal-shaped blocks to *root*; returns the stacked array
    (leading rank axis) at the root, ``None`` elsewhere."""
    sendbuf = np.asarray(sendbuf)
    if comm.rank == root:
        if recvbuf is None:
            recvbuf = np.empty((comm.size,) + sendbuf.shape, dtype=sendbuf.dtype)
        _check_shape(recvbuf, (comm.size,) + sendbuf.shape, "Gather recvbuf")
        recvbuf[root] = sendbuf
        for src in range(comm.size):
            if src != root:
                arr = comm._coll_recv_buffer(src, tag, "Gather")
                _check_shape(arr, sendbuf.shape, "Gather")
                recvbuf[src] = arr
        return recvbuf
    comm._coll_send_buffer(root, tag, sendbuf, "Gather")
    return None


def Scatter(comm, sendbuf: Optional[np.ndarray], recvbuf: np.ndarray, root: int, tag: int) -> np.ndarray:
    """Scatter the root's stacked array (leading rank axis) into each
    rank's *recvbuf*."""
    recvbuf = np.asarray(recvbuf)
    if comm.rank == root:
        if sendbuf is None:
            raise CommError("Scatter: root must supply sendbuf")
        sendbuf = np.asarray(sendbuf)
        _check_shape(sendbuf, (comm.size,) + recvbuf.shape, "Scatter sendbuf")
        for dest in range(comm.size):
            if dest != root:
                comm._coll_send_buffer(dest, tag, sendbuf[dest], "Scatter")
        np.copyto(recvbuf, sendbuf[root])
        return recvbuf
    _recv_into(comm, recvbuf, root, tag, "Scatter")
    return recvbuf


def Allgather(comm, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray], tag: int) -> np.ndarray:
    """Gather equal-shaped blocks onto every rank (leading rank axis)."""
    sendbuf = np.asarray(sendbuf)
    size, rank = comm.size, comm.rank
    if recvbuf is None:
        recvbuf = np.empty((size,) + sendbuf.shape, dtype=sendbuf.dtype)
    _check_shape(recvbuf, (size,) + sendbuf.shape, "Allgather recvbuf")
    recvbuf[rank] = sendbuf
    if size == 1:
        return recvbuf
    algo = comm._world.config.allgather_algorithm
    if algo == "gather_bcast":
        Gather(comm, sendbuf, recvbuf if rank == 0 else None, 0, tag)
        Bcast(comm, recvbuf, 0, tag + 1)
        return recvbuf
    # ring: forward the piece received last step; slot by source rank.
    # Each step pre-posts the inbound receive before sending, so the
    # rendezvous parks at most once on the progress engine.
    right, left = (rank + 1) % size, (rank - 1) % size
    piece_src = rank
    for _ in range(size - 1):
        inbound_src = (piece_src - 1) % size
        posted = comm._coll_post(left, tag)
        comm._coll_send_buffer(right, tag, recvbuf[piece_src], f"Allgather:{piece_src}")
        arr = comm._coll_complete_buffer(posted, left, f"Allgather:{inbound_src}")
        _check_shape(arr, sendbuf.shape, "Allgather")
        piece_src = inbound_src
        recvbuf[piece_src] = arr
    return recvbuf


def Gatherv(comm, sendbuf: np.ndarray, root: int, tag: int) -> Optional[tuple[np.ndarray, list[int]]]:
    """Variable-size gather: blocks (differing along axis 0) concatenate
    at *root*; returns ``(full, counts)`` there, ``None`` elsewhere.

    Unlike MPI's ``Gatherv``, counts need not be pre-agreed — each block
    carries its own shape, and the per-rank counts come back alongside the
    assembled array (the pythonic contract).
    """
    sendbuf = np.asarray(sendbuf)
    if comm.rank == root:
        blocks: list[np.ndarray] = [None] * comm.size  # type: ignore[list-item]
        blocks[root] = sendbuf
        for src in range(comm.size):
            if src != root:
                blocks[src] = comm._coll_recv_buffer(src, tag, "Gatherv")
        counts = [b.shape[0] for b in blocks]
        return np.concatenate(blocks, axis=0), counts
    comm._coll_send_buffer(root, tag, sendbuf, "Gatherv")
    return None


def Scatterv(
    comm,
    sendbuf: Optional[np.ndarray],
    counts: Optional[list[int]],
    root: int,
    tag: int,
) -> np.ndarray:
    """Variable-size scatter: the root splits *sendbuf* along axis 0 into
    ``counts[r]``-row blocks; every rank returns its block."""
    if comm.rank == root:
        if sendbuf is None or counts is None:
            raise CommError("Scatterv: root must supply sendbuf and counts")
        sendbuf = np.asarray(sendbuf)
        if len(counts) != comm.size:
            raise CommError(f"Scatterv needs {comm.size} counts, got {len(counts)}")
        if sum(counts) != sendbuf.shape[0]:
            raise CommError(
                f"Scatterv counts sum to {sum(counts)} but sendbuf has "
                f"{sendbuf.shape[0]} rows"
            )
        offsets = np.concatenate([[0], np.cumsum(counts)])
        mine: Optional[np.ndarray] = None
        for dest in range(comm.size):
            block = sendbuf[offsets[dest] : offsets[dest + 1]]
            if dest == root:
                mine = np.array(block, copy=True)
            else:
                comm._coll_send_buffer(dest, tag, block, "Scatterv")
        assert mine is not None
        return mine
    return comm._coll_recv_buffer(root, tag, "Scatterv")


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


def Reduce(comm, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray], op: Op, root: int, tag: int) -> Optional[np.ndarray]:
    """Elementwise reduction to *root* (rank-ordered combination)."""
    sendbuf = np.asarray(sendbuf)
    size, rank = comm.size, comm.rank
    if rank == root:
        if recvbuf is None:
            recvbuf = np.array(sendbuf, copy=True)
        else:
            _check_shape(np.asarray(recvbuf), sendbuf.shape, "Reduce recvbuf")
            np.copyto(recvbuf, sendbuf)
    if size == 1:
        return recvbuf if rank == root else None

    algo = comm._world.config.reduce_algorithm
    if algo == "linear" or not op.commutative:
        stacked = Gather(comm, sendbuf, None, root, tag)
        if rank != root:
            return None
        acc = np.array(stacked[0], copy=True)
        for i in range(1, size):
            acc = op(acc, stacked[i])
        np.copyto(recvbuf, acc)
        return recvbuf
    hier = comm._hierarchy()
    if hier is not None:
        return _Reduce_hierarchical(comm, sendbuf, recvbuf, op, root, tag, hier)
    acc = _members_Reduce_binomial(comm, range(size), root, sendbuf, op, tag)
    if acc is None:
        return None
    np.copyto(recvbuf, acc)
    return recvbuf


def _members_Reduce_binomial(comm, members, vroot: int, sendbuf: np.ndarray, op: Op, tag: int) -> Optional[np.ndarray]:
    """Binomial buffer reduce over *members* to virtual rank *vroot*;
    returns the accumulated (private) array there, ``None`` elsewhere."""
    n = len(members)
    acc = np.array(sendbuf, copy=True)
    if n == 1:
        return acc
    vrank = members.index(comm.rank)
    relative = (vrank - vroot) % n
    mask = 1
    while mask < n:
        if relative & mask:
            comm._coll_send_buffer(members[(vrank - mask) % n], tag, acc, "Reduce")
            return None
        src_rel = relative | mask
        if src_rel < n:
            partial = comm._coll_recv_buffer(
                members[(src_rel + vroot) % n], tag, "Reduce"
            )
            acc = op(acc, partial)
        mask <<= 1
    return acc


def _Reduce_hierarchical(
    comm, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray], op: Op, root: int, tag: int, hier
) -> Optional[np.ndarray]:
    """Two-level buffer reduce (commutative operators only): fold within
    each node to its representative, then across the node leaders to
    *root*."""
    rank = comm.rank
    members = list(hier.members(rank))
    if len(members) > 1:
        rep = root if hier.same_node(rank, root) else hier.leader(rank)
        acc = _members_Reduce_binomial(
            comm, members, members.index(rep), sendbuf, op, tag
        )
    else:
        acc = np.array(sendbuf, copy=True)
    leaders, root_pos = hier.effective_leaders(root)
    if acc is not None and rank in leaders:
        acc = _members_Reduce_binomial(comm, leaders, root_pos, acc, op, tag + 1)
    if rank != root or acc is None:
        return None
    np.copyto(recvbuf, acc)
    return recvbuf


def Allreduce(comm, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray], op: Op, tag: int) -> np.ndarray:
    """Elementwise reduction delivered to every rank."""
    sendbuf = np.asarray(sendbuf)
    if recvbuf is None:
        recvbuf = np.array(sendbuf, copy=True)
    else:
        recvbuf = np.asarray(recvbuf)
        _check_shape(recvbuf, sendbuf.shape, "Allreduce recvbuf")
        np.copyto(recvbuf, sendbuf)
    if comm.size == 1:
        return recvbuf
    algo = comm._world.config.allreduce_algorithm
    if algo == "reduce_bcast" or not op.commutative:
        Reduce(comm, sendbuf, recvbuf if comm.rank == 0 else None, op, 0, tag)
        # tag + 2: a hierarchical Reduce occupies tag .. tag + 1 (see
        # collectives.MAX_TAG_OFFSET).
        Bcast(comm, recvbuf, 0, tag + 2)
        return recvbuf
    hier = comm._hierarchy()
    if hier is not None:
        return _Allreduce_hierarchical(comm, sendbuf, recvbuf, op, tag, hier)
    acc = _members_Allreduce_rd(comm, range(comm.size), sendbuf, op, tag)
    np.copyto(recvbuf, acc)
    return recvbuf


def _members_Allreduce_rd(comm, members, sendbuf: np.ndarray, op: Op, tag: int) -> np.ndarray:
    """Recursive-doubling buffer allreduce over *members* with the
    non-power-of-two fold-in (see the object-mode twin for the
    derivation); returns the accumulated private array."""
    n = len(members)
    acc = np.array(sendbuf, copy=True)
    if n == 1:
        return acc
    vrank = members.index(comm.rank)
    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    rem = n - pof2
    if vrank < 2 * rem:
        if vrank % 2 == 0:
            comm._coll_send_buffer(members[vrank + 1], tag, acc, "Allreduce")
            newrank = -1
        else:
            partial = comm._coll_recv_buffer(members[vrank - 1], tag, "Allreduce")
            acc = op(partial, acc)
            newrank = vrank // 2
    else:
        newrank = vrank - rem
    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner_v = partner_new * 2 + 1 if partner_new < rem else partner_new + rem
            partner = members[partner_v]
            posted = comm._coll_post(partner, tag)
            comm._coll_send_buffer(partner, tag, acc, "Allreduce")
            other = comm._coll_complete_buffer(posted, partner, "Allreduce")
            acc = op(acc, other) if partner_new > newrank else op(other, acc)
            mask <<= 1
    if vrank < 2 * rem:
        if vrank % 2 == 1:
            comm._coll_send_buffer(members[vrank - 1], tag, acc, "Allreduce")
        else:
            acc = comm._coll_recv_buffer(members[vrank + 1], tag, "Allreduce")
    return acc


def _Allreduce_hierarchical(
    comm, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op, tag: int, hier
) -> np.ndarray:
    """Two-level buffer allreduce: reduce to each node leader, recursive
    doubling among the leaders (the only cross-node phase), broadcast
    back down within each node."""
    rank = comm.rank
    members = list(hier.members(rank))
    leader = hier.leader(rank)
    if len(members) > 1:
        acc = _members_Reduce_binomial(comm, members, 0, sendbuf, op, tag)
    else:
        acc = np.array(sendbuf, copy=True)
    if rank == leader:
        leaders = list(hier.leaders)
        if len(leaders) > 1:
            acc = _members_Allreduce_rd(comm, leaders, acc, op, tag + 1)
        np.copyto(recvbuf, acc)
    if len(members) > 1:
        _members_Bcast(comm, members, 0, recvbuf, tag + 2)
    return recvbuf
