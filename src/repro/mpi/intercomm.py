"""Intercommunicators: two groups, point-to-point across them.

The paper's §5.2 weighs these explicitly: "The reason we did not use an
inter-communicator is because the entire application is assumed to run on
a tightly coupled HPC computer with a single MPI_Comm_World.  An
intercommunicator would be more appropriate for a heterogeneous
client-server environment."  MPH therefore addresses peers through the
global world — but a complete MPI substrate offers the alternative, and
having both lets the test suite state the comparison concretely (see
``tests/mpi/test_intercomm.py``).

Semantics follow MPI: an :class:`InterComm` has a *local* group (where
``rank``/``size`` live) and a *remote* group; every point-to-point call
addresses ranks of the remote group.  ``merge`` flattens the pair into an
ordinary intracommunicator.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any, Optional

from repro.errors import CommError
from repro.mpi.comm import Comm, _decode_object
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, is_valid_recv_tag, is_valid_tag
from repro.mpi.group import Group
from repro.mpi.mailbox import Envelope
from repro.mpi.request import RecvRequest, Request, SendRequest
from repro.mpi.status import Status

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


class InterComm:
    """A communicator between two disjoint groups (``MPI_Comm``-with-
    remote-group).  Construct with :func:`create_intercomm`."""

    def __init__(
        self,
        local_comm: Comm,
        remote_group: Group,
        ctx_pair: tuple[int, int],
        name: str = "intercomm",
    ):
        overlap = set(local_comm.group.members) & set(remote_group.members)
        if overlap:
            raise CommError(
                f"intercommunicator groups must be disjoint; both contain {sorted(overlap)}"
            )
        self._local = local_comm
        self._remote = remote_group
        self._p2p_ctx, self._coll_ctx = ctx_pair
        self.name = name

    # -- introspection -------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank in the *local* group."""
        return self._local.rank

    @property
    def size(self) -> int:
        """Size of the local group."""
        return self._local.size

    @property
    def remote_size(self) -> int:
        """Size of the remote group (``MPI_Comm_remote_size``)."""
        return self._remote.size

    @property
    def local_comm(self) -> Comm:
        """The underlying local intracommunicator."""
        return self._local

    @property
    def remote_group(self) -> Group:
        """The remote group (``MPI_Comm_remote_group``)."""
        return self._remote

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<InterComm {self.name!r} local {self.rank}/{self.size} remote {self.remote_size}>"

    # -- point-to-point across the bridge ----------------------------------------

    @property
    def _mailbox(self):
        return self._local.world.mailboxes[self._local._my_world_id]

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send *obj* to rank *dest* of the **remote** group."""
        self._check_remote(dest)
        if not is_valid_tag(tag):
            raise CommError(f"invalid send tag {tag}")
        payload = pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)
        env = Envelope(self._p2p_ctx, self.rank, tag, payload, "object", len(payload))
        self._local.world.deliver(self._remote.world_id(dest), env)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking :meth:`send` (eager: already complete)."""
        self.send(obj, dest, tag)
        return SendRequest()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive from a **remote** rank."""
        if source != ANY_SOURCE:
            self._check_remote(source)
        if not is_valid_recv_tag(tag):
            raise CommError(f"invalid receive tag {tag}")
        posted = self._mailbox.post_recv(self._p2p_ctx, source, tag)
        what = f"intercomm recv(source={source}, tag={tag}) on {self.name}"
        return RecvRequest(self._mailbox, posted, _decode_object, what)

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, status: Optional[Status] = None
    ) -> Any:
        """Blocking receive from a **remote** rank."""
        return self.irecv(source, tag).wait(status)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Blocking probe: wait for a pending remote message and return its
        status without receiving it (parks on the progress engine)."""
        what = f"intercomm probe(source={source}, tag={tag}) on {self.name}"
        env = self._mailbox.probe(self._p2p_ctx, source, tag, block=True, what=what)
        assert env is not None
        return Status(source=env.source, tag=env.tag, count=env.count)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Nonblocking probe for a pending remote message."""
        env = self._mailbox.probe(self._p2p_ctx, source, tag, block=False, what="iprobe")
        if env is None:
            return None
        return Status(source=env.source, tag=env.tag, count=env.count)

    def _check_remote(self, rank: int) -> None:
        if not 0 <= rank < self._remote.size:
            raise CommError(
                f"remote rank {rank} out of range for {self.name!r} "
                f"(remote size {self._remote.size})"
            )

    # -- merge --------------------------------------------------------------------

    def merge(self, high: bool = False) -> Comm:
        """``MPI_Intercomm_merge``: one intracommunicator over both groups.

        Collective over both sides; all processes of one group pass the
        same *high* flag and the two groups pass opposite flags.  The
        ``high=False`` group takes the lower ranks.
        """
        flags = self._local.allgather(high)
        if len(set(flags)) != 1:
            raise CommError("all processes of one group must pass the same `high` flag")
        # Exchange flags between leaders so ordering is agreed.
        if self.rank == 0:
            self.send(("merge-flag", high), 0, tag=0)
            _, remote_high = self.recv(0, tag=0)
            if remote_high == high:
                raise CommError("the two groups must pass opposite `high` flags")
            ctxs = None
            if not high:
                ctxs = self._local.world.alloc_context_pair()
                self.send(("merge-ctxs", ctxs), 0, tag=0)
            else:
                _, ctxs = self.recv(0, tag=0)
        else:
            ctxs = None
        ctxs = self._local.bcast(ctxs, root=0)
        low_first = not high
        mine = self._local.group.members
        theirs = self._remote.members
        ordered = (mine + theirs) if low_first else (theirs + mine)
        return Comm(
            self._local.world,
            Group(ordered),
            self._local._my_world_id,
            ctxs,
            name=f"{self.name}.merged",
        )


def create_intercomm(
    local_comm: Comm,
    local_leader: int,
    bridge_comm: Comm,
    remote_leader: int,
    tag: int = 0,
) -> InterComm:
    """``MPI_Intercomm_create``: bridge two intracommunicators.

    Collective over both local communicators.  *bridge_comm* must contain
    both leaders (typically the world); *remote_leader* is the peer
    leader's rank in *bridge_comm*.
    """
    leader = local_comm.rank == local_leader
    payload = None
    if leader:
        # Leaders swap their groups; the one with the lower bridge rank
        # allocates the context pair for both sides.
        bridge_comm.send(
            ("intercomm-group", tuple(local_comm.group.members)), remote_leader, tag
        )
        _, remote_members = bridge_comm.recv(remote_leader, tag)
        if bridge_comm.rank < remote_leader:
            ctxs = bridge_comm.world.alloc_context_pair()
            bridge_comm.send(("intercomm-ctxs", ctxs), remote_leader, tag)
        else:
            _, ctxs = bridge_comm.recv(remote_leader, tag)
        payload = (remote_members, ctxs)
    remote_members, ctxs = local_comm.bcast(payload, root=local_leader)
    return InterComm(
        local_comm,
        Group(remote_members),
        ctxs,
        name=f"intercomm({local_comm.name})",
    )
