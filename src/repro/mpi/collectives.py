"""Collective-communication algorithms over the point-to-point layer.

Every algorithm here is the textbook version used by production MPI
libraries (MPICH nomenclature):

* broadcast — ``linear`` (root sends to every rank) or ``binomial`` tree
  (O(log P) rounds);
* reduce — ``linear`` (gather-and-fold at root, exact rank order, required
  for non-commutative operators) or ``binomial`` tree;
* allreduce — ``reduce_bcast`` composition or ``recursive_doubling`` with
  the non-power-of-two fold-in pre/post phases;
* allgather — ``gather_bcast`` composition or ``ring`` (P-1 neighbour
  steps);
* barrier — ``linear`` (gather + release through rank 0) or
  ``dissemination`` (O(log P) rounds).

The choice is taken from :class:`repro.mpi.world.WorldConfig`, which the
benchmark suite ablates (experiment E9 companion: substrate ablation).

All functions receive the calling process's communicator handle and use its
private collective context and per-call tag, so user point-to-point traffic
can never interfere.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import CollectiveMismatchError
from repro.mpi.reduce_ops import Op

#: Largest sub-tag offset (``tag + k``) any composed collective in this
#: module uses.  Two-level (hierarchical) collectives consume up to three
#: sub-tags (intra-node, inter-node, intra-node release), and the
#: ``reduce_bcast`` allreduce composition must start its broadcast at
#: ``tag + 2`` because a hierarchical reduce already occupies ``tag`` and
#: ``tag + 1`` — so the deepest consumer is that composition's
#: hierarchical broadcast at ``tag + 2 .. tag + 3``.
#: :meth:`repro.mpi.comm.Comm._next_coll_tag` advances base tags in
#: strides of :data:`repro.mpi.comm._COLL_TAG_STRIDE`, so back-to-back
#: collectives on one communicator cannot collide as long as
#: ``MAX_TAG_OFFSET`` stays below the stride — a regression test pins
#: both the inequality and the interleaving behaviour.
MAX_TAG_OFFSET = 3


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------


def bcast(comm, obj: Any, root: int, tag: int) -> Any:
    """Broadcast *obj* from *root* to every rank of *comm*."""
    algo = comm._world.config.bcast_algorithm
    if comm.size == 1:
        return obj
    hier = comm._hierarchy()
    if hier is not None:
        return _bcast_hierarchical(comm, obj, root, tag, hier)
    if algo == "linear":
        return _bcast_linear(comm, obj, root, tag)
    if algo == "binomial":
        return _bcast_binomial(comm, obj, root, tag)
    raise ValueError(f"unknown bcast algorithm {algo!r}")


def _bcast_linear(comm, obj: Any, root: int, tag: int) -> Any:
    if comm.rank == root:
        dests = [d for d in range(comm.size) if d != root]
        # Pickle-once fan-out: one encoding shared by every destination
        # (per-destination re-encode when the fast path is off).
        comm._coll_fanout(dests, tag, obj, "bcast")
        return obj
    return comm._coll_recv(root, tag, "bcast")


def _bcast_binomial(comm, obj: Any, root: int, tag: int) -> Any:
    return _members_bcast(comm, range(comm.size), root, obj, tag)


# The tree algorithms below are *member-list generalised*: they run over
# an arbitrary ordered subset of communicator ranks (``members``), with
# every tree position computed in the virtual rank space 0..len-1 and
# mapped back through the list for the actual sends.  The flat
# algorithms pass ``range(size)``; the two-level algorithms pass a
# node's member list or the per-node leader list.


def _members_bcast(comm, members, vroot: int, obj: Any, tag: int) -> Any:
    """Binomial broadcast over *members* rooted at virtual rank *vroot*."""
    n = len(members)
    if n == 1:
        return obj
    if comm._serialization_fastpath:
        return _members_bcast_blob(comm, members, vroot, obj, tag)
    vrank = members.index(comm.rank)
    relative = (vrank - vroot) % n
    # Receive phase: wait for the parent one tree level up.
    mask = 1
    while mask < n:
        if relative & mask:
            src = members[(vrank - mask) % n]
            obj = comm._coll_recv(src, tag, "bcast")
            break
        mask <<= 1
    # Send phase: forward to children at successively lower levels.
    mask >>= 1
    while mask > 0:
        if relative + mask < n:
            dst = members[(vrank + mask) % n]
            comm._coll_send(dst, tag, obj, "bcast")
        mask >>= 1
    return obj


def _members_bcast_blob(comm, members, vroot: int, obj: Any, tag: int) -> Any:
    """Binomial bcast on the fast path: relays forward the *received*
    blob verbatim to their children (no unpickle→repickle per hop) and
    decode it lazily, only for their own final delivery."""
    n = len(members)
    vrank = members.index(comm.rank)
    relative = (vrank - vroot) % n
    blob = None
    mask = 1
    while mask < n:
        if relative & mask:
            src = members[(vrank - mask) % n]
            blob = comm._coll_recv_blob(src, tag, "bcast")
            break
        mask <<= 1
    received = blob is not None
    if blob is None:
        blob = comm._coll_encode(obj)  # root encodes exactly once
    mask >>= 1
    fresh = not received  # the root's first child send pays the encoding
    while mask > 0:
        if relative + mask < n:
            dst = members[(vrank + mask) % n]
            comm._coll_send_blob(dst, tag, blob, "bcast", reused=not fresh)
            fresh = False
        mask >>= 1
    return blob.decode() if received else obj


def _bcast_hierarchical(comm, obj: Any, root: int, tag: int, hier) -> Any:
    """Two-level broadcast: inter-node binomial tree among the node
    leaders (with *root* promoted to represent its node), then an
    intra-node binomial tree on every node — the MPICH-G2 pattern where
    the wide fan-out happens over the fast local substrate."""
    rank = comm.rank
    leaders, root_pos = hier.effective_leaders(root)
    if rank in leaders:
        obj = _members_bcast(comm, leaders, root_pos, obj, tag)
    members = list(hier.members(rank))
    if len(members) > 1:
        rep = root if hier.same_node(rank, root) else hier.leader(rank)
        obj = _members_bcast(comm, members, members.index(rep), obj, tag + 1)
    return obj


# ---------------------------------------------------------------------------
# gather / scatter (linear; object mode makes the "v" variants identical)
# ---------------------------------------------------------------------------


def gather(comm, obj: Any, root: int, tag: int) -> Optional[list]:
    """Gather one object per rank into a rank-ordered list at *root*."""
    if comm.size == 1:
        return [obj]
    if comm.rank == root:
        out: list[Any] = [None] * comm.size
        out[root] = obj
        for src in range(comm.size):
            if src != root:
                out[src] = comm._coll_recv(src, tag, "gather")
        return out
    comm._coll_send(root, tag, obj, "gather")
    return None


def scatter(comm, objs: Optional[Sequence[Any]], root: int, tag: int) -> Any:
    """Scatter one object per rank from *root*'s sequence."""
    if comm.size == 1:
        assert objs is not None
        return objs[0]
    if comm.rank == root:
        if objs is None or len(objs) != comm.size:
            got = "None" if objs is None else str(len(objs))
            raise CollectiveMismatchError(
                f"scatter at root needs exactly {comm.size} items, got {got}"
            )
        for dest in range(comm.size):
            if dest != root:
                comm._coll_send(dest, tag, objs[dest], "scatter")
        return objs[root]
    return comm._coll_recv(root, tag, "scatter")


# ---------------------------------------------------------------------------
# allgather
# ---------------------------------------------------------------------------


def allgather(comm, obj: Any, tag: int) -> list:
    """Gather one object per rank into a rank-ordered list on every rank."""
    if comm.size == 1:
        return [obj]
    algo = comm._world.config.allgather_algorithm
    if algo == "gather_bcast":
        gathered = gather(comm, obj, 0, tag)
        return bcast(comm, gathered, 0, tag + 1)
    if algo == "ring":
        return _allgather_ring(comm, obj, tag)
    raise ValueError(f"unknown allgather algorithm {algo!r}")


def _allgather_ring(comm, obj: Any, tag: int) -> list:
    size, rank = comm.size, comm.rank
    out: list[Any] = [None] * size
    out[rank] = obj
    right = (rank + 1) % size
    left = (rank - 1) % size
    # Each step pre-posts the inbound receive before sending, so the
    # neighbour's envelope lands on a posted receive and the completion
    # wakes this rank exactly once.
    if comm._serialization_fastpath:
        # Relay-without-reencode: each hop decodes the inbound piece for
        # its own result but forwards the received blob verbatim.
        piece_blob = comm._coll_encode((rank, obj))
        fresh = True
        for _ in range(size - 1):
            posted = comm._coll_post(left, tag)
            comm._coll_send_blob(right, tag, piece_blob, "allgather", reused=not fresh)
            fresh = False
            piece_blob = comm._coll_complete(posted, left, "allgather").payload
            piece_src, piece = piece_blob.decode()
            out[piece_src] = piece
        return out
    # At step s we forward the piece originating from rank (rank - s).
    piece_src = rank
    piece = obj
    for _ in range(size - 1):
        posted = comm._coll_post(left, tag)
        comm._coll_send(right, tag, (piece_src, piece), "allgather")
        piece_src, piece = comm._coll_complete(posted, left, "allgather").payload.decode()
        out[piece_src] = piece
    return out


# ---------------------------------------------------------------------------
# alltoall
# ---------------------------------------------------------------------------


def alltoall(comm, objs: Sequence[Any], tag: int) -> list:
    """Personalised exchange: rank *i* receives ``objs[i]`` from every rank.

    Eager sends make the send-all-then-receive-all schedule deadlock-free.
    """
    if len(objs) != comm.size:
        raise CollectiveMismatchError(
            f"alltoall needs exactly {comm.size} items, got {len(objs)}"
        )
    if comm.size == 1:
        return [objs[0]]
    out: list[Any] = [None] * comm.size
    out[comm.rank] = objs[comm.rank]
    # Pre-post every inbound receive, then send: arriving envelopes match
    # posted receives directly instead of queueing as pending, and the
    # completion wait below parks at most once per missing peer.
    posted = {
        src: comm._coll_post(src, tag) for src in range(comm.size) if src != comm.rank
    }
    for dest in range(comm.size):
        if dest != comm.rank:
            comm._coll_send(dest, tag, objs[dest], "alltoall")
    for src, pr in posted.items():
        out[src] = comm._coll_complete(pr, src, "alltoall").payload.decode()
    return out


# ---------------------------------------------------------------------------
# reduce / allreduce / scan
# ---------------------------------------------------------------------------


def reduce(comm, obj: Any, op: Op, root: int, tag: int) -> Any:
    """Reduce contributions in rank order to *root* (None elsewhere)."""
    if comm.size == 1:
        return obj
    algo = comm._world.config.reduce_algorithm
    # Binomial combination reorders only across aligned contiguous blocks,
    # which is safe for associative operators; strict rank order for
    # non-commutative user operators additionally requires root rotation to
    # be avoided, so fall back to the linear algorithm for those.
    if algo == "linear" or not op.commutative:
        return _reduce_linear(comm, obj, op, root, tag)
    hier = comm._hierarchy()
    if hier is not None:
        return _reduce_hierarchical(comm, obj, op, root, tag, hier)
    if algo == "binomial":
        return _reduce_binomial(comm, obj, op, root, tag)
    raise ValueError(f"unknown reduce algorithm {algo!r}")


def _reduce_linear(comm, obj: Any, op: Op, root: int, tag: int) -> Any:
    gathered = gather(comm, obj, root, tag)
    if comm.rank != root:
        return None
    assert gathered is not None
    return op.reduce(gathered)


def _reduce_binomial(comm, obj: Any, op: Op, root: int, tag: int) -> Any:
    return _members_reduce_binomial(
        comm, range(comm.size), root, obj, op, tag
    )


def _members_reduce_binomial(
    comm, members, vroot: int, obj: Any, op: Op, tag: int
) -> Any:
    """Binomial reduce over *members* to virtual rank *vroot* (returns
    the result there, ``None`` elsewhere)."""
    n = len(members)
    if n == 1:
        return obj
    vrank = members.index(comm.rank)
    relative = (vrank - vroot) % n
    acc = obj
    mask = 1
    while mask < n:
        if relative & mask:
            dst = members[(vrank - mask) % n]
            comm._coll_send(dst, tag, acc, "reduce")
            return None
        src_rel = relative | mask
        if src_rel < n:
            src = members[(src_rel + vroot) % n]
            partial = comm._coll_recv(src, tag, "reduce")
            # acc covers relative block [relative, relative+mask); partial
            # covers the adjacent higher block — combine in that order.
            acc = op(acc, partial)
        mask <<= 1
    return acc


def _reduce_hierarchical(comm, obj: Any, op: Op, root: int, tag: int, hier) -> Any:
    """Two-level reduce (commutative operators only — the entry point
    falls back to linear otherwise): fold within each node to its
    representative, then fold the per-node partials to *root* over the
    inter-node tree."""
    rank = comm.rank
    members = list(hier.members(rank))
    acc = obj
    if len(members) > 1:
        rep = root if hier.same_node(rank, root) else hier.leader(rank)
        acc = _members_reduce_binomial(
            comm, members, members.index(rep), acc, op, tag
        )
    leaders, root_pos = hier.effective_leaders(root)
    if rank in leaders:
        acc = _members_reduce_binomial(
            comm, leaders, root_pos, acc, op, tag + 1
        )
    return acc if rank == root else None


def allreduce(comm, obj: Any, op: Op, tag: int) -> Any:
    """Reduce contributions and deliver the result to every rank."""
    if comm.size == 1:
        return obj
    algo = comm._world.config.allreduce_algorithm
    if algo == "reduce_bcast" or not op.commutative:
        result = reduce(comm, obj, op, 0, tag)
        # tag + 2: a hierarchical reduce occupies tag .. tag + 1, so the
        # broadcast half must start beyond it (see MAX_TAG_OFFSET).
        return bcast(comm, result, 0, tag + 2)
    hier = comm._hierarchy()
    if hier is not None:
        return _allreduce_hierarchical(comm, obj, op, tag, hier)
    if algo == "recursive_doubling":
        return _allreduce_recursive_doubling(comm, obj, op, tag)
    raise ValueError(f"unknown allreduce algorithm {algo!r}")


def _allreduce_recursive_doubling(comm, obj: Any, op: Op, tag: int) -> Any:
    return _members_allreduce_rd(comm, range(comm.size), obj, op, tag)


def _members_allreduce_rd(comm, members, obj: Any, op: Op, tag: int) -> Any:
    """Recursive-doubling allreduce over *members* with the MPICH
    non-power-of-two fold-in pre/post phases, in virtual rank space."""
    n = len(members)
    if n == 1:
        return obj
    vrank = members.index(comm.rank)
    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    rem = n - pof2
    acc = obj
    # Fold the surplus ranks into their even neighbours so a power-of-two
    # set remains (MPICH pre-phase).
    if vrank < 2 * rem:
        if vrank % 2 == 0:
            comm._coll_send(members[vrank + 1], tag, acc, "allreduce")
            newrank = -1
        else:
            partial = comm._coll_recv(members[vrank - 1], tag, "allreduce")
            acc = op(partial, acc)  # lower rank's contribution on the left
            newrank = vrank // 2
    else:
        newrank = vrank - rem
    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner_v = partner_new * 2 + 1 if partner_new < rem else partner_new + rem
            partner = members[partner_v]
            # Pairwise exchange: pre-post the inbound half before sending.
            posted = comm._coll_post(partner, tag)
            comm._coll_send(partner, tag, acc, "allreduce")
            other = comm._coll_complete(posted, partner, "allreduce").payload.decode()
            acc = op(acc, other) if partner_new > newrank else op(other, acc)
            mask <<= 1
    # Post-phase: hand results back to the folded-out even ranks.
    if vrank < 2 * rem:
        if vrank % 2 == 1:
            comm._coll_send(members[vrank - 1], tag, acc, "allreduce")
        else:
            acc = comm._coll_recv(members[vrank + 1], tag, "allreduce")
    return acc


def _allreduce_hierarchical(comm, obj: Any, op: Op, tag: int, hier) -> Any:
    """Two-level allreduce: reduce to each node's leader, recursive
    doubling among the leaders (the only phase that crosses node
    boundaries), then broadcast back down within each node."""
    rank = comm.rank
    members = list(hier.members(rank))
    acc = obj
    if len(members) > 1:
        acc = _members_reduce_binomial(comm, members, 0, acc, op, tag)
    if rank == hier.leader(rank):
        leaders = list(hier.leaders)
        if len(leaders) > 1:
            acc = _members_allreduce_rd(comm, leaders, acc, op, tag + 1)
    if len(members) > 1:
        acc = _members_bcast(comm, members, 0, acc, tag + 2)
    return acc


def scan(comm, obj: Any, op: Op, tag: int) -> Any:
    """Inclusive prefix reduction: rank *r* gets the fold of ranks 0..r."""
    if comm.size == 1:
        return obj
    acc = obj
    if comm.rank > 0:
        partial = comm._coll_recv(comm.rank - 1, tag, "scan")
        acc = op(partial, acc)
    if comm.rank < comm.size - 1:
        comm._coll_send(comm.rank + 1, tag, acc, "scan")
    return acc


def exscan(comm, obj: Any, op: Op, tag: int) -> Any:
    """Exclusive prefix reduction: rank *r* gets the fold of ranks 0..r-1
    (``None`` on rank 0, matching MPI's undefined value there)."""
    if comm.rank == 0:
        if comm.size > 1:
            comm._coll_send(1, tag, obj, "exscan")
        return None
    below = comm._coll_recv(comm.rank - 1, tag, "exscan")
    if comm.rank < comm.size - 1:
        comm._coll_send(comm.rank + 1, tag, op(below, obj), "exscan")
    return below


def reduce_scatter(comm, objs: Sequence[Any], op: Op, tag: int) -> Any:
    """Reduce per-slot across ranks, then deliver slot *r* to rank *r*.

    Each rank contributes a sequence of ``comm.size`` items.
    """
    if len(objs) != comm.size:
        raise CollectiveMismatchError(
            f"reduce_scatter needs exactly {comm.size} items, got {len(objs)}"
        )
    if comm.size == 1:
        return objs[0]
    gathered = gather(comm, list(objs), 0, tag)
    slots = None
    if comm.rank == 0:
        assert gathered is not None
        slots = [op.reduce([contrib[slot] for contrib in gathered]) for slot in range(comm.size)]
    return scatter(comm, slots, 0, tag + 1)


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------


def barrier(comm, tag: int) -> None:
    """Block until every rank of *comm* has entered the barrier."""
    if comm.size == 1:
        return
    hier = comm._hierarchy()
    if hier is not None:
        _barrier_hierarchical(comm, tag, hier)
        return
    algo = comm._world.config.barrier_algorithm
    if algo == "linear":
        gather(comm, None, 0, tag)
        bcast(comm, None, 0, tag + 1)
        return
    if algo == "dissemination":
        _members_barrier_dissemination(comm, range(comm.size), tag)
        return
    raise ValueError(f"unknown barrier algorithm {algo!r}")


def _members_barrier_dissemination(comm, members, tag: int) -> None:
    n = len(members)
    vrank = members.index(comm.rank)
    step = 1
    while step < n:
        # Pre-post the inbound notification before sending ours, so
        # each round's rendezvous costs at most one park.
        src = members[(vrank - step) % n]
        posted = comm._coll_post(src, tag)
        comm._coll_send(members[(vrank + step) % n], tag, None, "barrier")
        comm._coll_complete(posted, src, "barrier")
        step <<= 1


def _barrier_hierarchical(comm, tag: int, hier) -> None:
    """Two-level barrier: members report to their node leader, the
    leaders run a dissemination barrier among themselves (the only
    cross-node traffic), then each leader releases its node."""
    rank = comm.rank
    members = list(hier.members(rank))
    leader = hier.leader(rank)
    if len(members) > 1:
        if rank != leader:
            comm._coll_send(leader, tag, None, "barrier")
        else:
            for src in members:
                if src != leader:
                    comm._coll_recv(src, tag, "barrier")
    leaders = list(hier.leaders)
    if rank == leader and len(leaders) > 1:
        _members_barrier_dissemination(comm, leaders, tag + 1)
    if len(members) > 1:
        _members_bcast(comm, members, 0, None, tag + 2)
