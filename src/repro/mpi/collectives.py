"""Collective-communication algorithms over the point-to-point layer.

Every algorithm here is the textbook version used by production MPI
libraries (MPICH nomenclature):

* broadcast — ``linear`` (root sends to every rank) or ``binomial`` tree
  (O(log P) rounds);
* reduce — ``linear`` (gather-and-fold at root, exact rank order, required
  for non-commutative operators) or ``binomial`` tree;
* allreduce — ``reduce_bcast`` composition or ``recursive_doubling`` with
  the non-power-of-two fold-in pre/post phases;
* allgather — ``gather_bcast`` composition or ``ring`` (P-1 neighbour
  steps);
* barrier — ``linear`` (gather + release through rank 0) or
  ``dissemination`` (O(log P) rounds).

The choice is taken from :class:`repro.mpi.world.WorldConfig`, which the
benchmark suite ablates (experiment E9 companion: substrate ablation).

All functions receive the calling process's communicator handle and use its
private collective context and per-call tag, so user point-to-point traffic
can never interfere.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import CollectiveMismatchError
from repro.mpi.reduce_ops import Op

#: Largest sub-tag offset (``tag + k``) any composed collective in this
#: module uses: the ``gather_bcast`` allgather, the ``reduce_bcast``
#: allreduce, the linear barrier, and ``reduce_scatter`` all run their
#: second phase on ``tag + 1``.  :meth:`repro.mpi.comm.Comm._next_coll_tag`
#: advances base tags in strides of
#: :data:`repro.mpi.comm._COLL_TAG_STRIDE`, so back-to-back collectives on
#: one communicator cannot collide as long as ``MAX_TAG_OFFSET`` stays
#: below the stride — a regression test pins both the inequality and the
#: interleaving behaviour.
MAX_TAG_OFFSET = 1


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------


def bcast(comm, obj: Any, root: int, tag: int) -> Any:
    """Broadcast *obj* from *root* to every rank of *comm*."""
    algo = comm._world.config.bcast_algorithm
    if comm.size == 1:
        return obj
    if algo == "linear":
        return _bcast_linear(comm, obj, root, tag)
    if algo == "binomial":
        return _bcast_binomial(comm, obj, root, tag)
    raise ValueError(f"unknown bcast algorithm {algo!r}")


def _bcast_linear(comm, obj: Any, root: int, tag: int) -> Any:
    if comm.rank == root:
        dests = [d for d in range(comm.size) if d != root]
        # Pickle-once fan-out: one encoding shared by every destination
        # (per-destination re-encode when the fast path is off).
        comm._coll_fanout(dests, tag, obj, "bcast")
        return obj
    return comm._coll_recv(root, tag, "bcast")


def _bcast_binomial(comm, obj: Any, root: int, tag: int) -> Any:
    if comm._serialization_fastpath:
        return _bcast_binomial_blob(comm, obj, root, tag)
    size, rank = comm.size, comm.rank
    relative = (rank - root) % size
    # Receive phase: wait for the parent one tree level up.
    mask = 1
    while mask < size:
        if relative & mask:
            src = (rank - mask) % size
            obj = comm._coll_recv(src, tag, "bcast")
            break
        mask <<= 1
    # Send phase: forward to children at successively lower levels.
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            dst = (rank + mask) % size
            comm._coll_send(dst, tag, obj, "bcast")
        mask >>= 1
    return obj


def _bcast_binomial_blob(comm, obj: Any, root: int, tag: int) -> Any:
    """Binomial bcast on the fast path: relays forward the *received*
    blob verbatim to their children (no unpickle→repickle per hop) and
    decode it lazily, only for their own final delivery."""
    size, rank = comm.size, comm.rank
    relative = (rank - root) % size
    blob = None
    mask = 1
    while mask < size:
        if relative & mask:
            src = (rank - mask) % size
            blob = comm._coll_recv_blob(src, tag, "bcast")
            break
        mask <<= 1
    received = blob is not None
    if blob is None:
        blob = comm._coll_encode(obj)  # root encodes exactly once
    mask >>= 1
    fresh = not received  # the root's first child send pays the encoding
    while mask > 0:
        if relative + mask < size:
            dst = (rank + mask) % size
            comm._coll_send_blob(dst, tag, blob, "bcast", reused=not fresh)
            fresh = False
        mask >>= 1
    return blob.decode() if received else obj


# ---------------------------------------------------------------------------
# gather / scatter (linear; object mode makes the "v" variants identical)
# ---------------------------------------------------------------------------


def gather(comm, obj: Any, root: int, tag: int) -> Optional[list]:
    """Gather one object per rank into a rank-ordered list at *root*."""
    if comm.size == 1:
        return [obj]
    if comm.rank == root:
        out: list[Any] = [None] * comm.size
        out[root] = obj
        for src in range(comm.size):
            if src != root:
                out[src] = comm._coll_recv(src, tag, "gather")
        return out
    comm._coll_send(root, tag, obj, "gather")
    return None


def scatter(comm, objs: Optional[Sequence[Any]], root: int, tag: int) -> Any:
    """Scatter one object per rank from *root*'s sequence."""
    if comm.size == 1:
        assert objs is not None
        return objs[0]
    if comm.rank == root:
        if objs is None or len(objs) != comm.size:
            got = "None" if objs is None else str(len(objs))
            raise CollectiveMismatchError(
                f"scatter at root needs exactly {comm.size} items, got {got}"
            )
        for dest in range(comm.size):
            if dest != root:
                comm._coll_send(dest, tag, objs[dest], "scatter")
        return objs[root]
    return comm._coll_recv(root, tag, "scatter")


# ---------------------------------------------------------------------------
# allgather
# ---------------------------------------------------------------------------


def allgather(comm, obj: Any, tag: int) -> list:
    """Gather one object per rank into a rank-ordered list on every rank."""
    if comm.size == 1:
        return [obj]
    algo = comm._world.config.allgather_algorithm
    if algo == "gather_bcast":
        gathered = gather(comm, obj, 0, tag)
        return bcast(comm, gathered, 0, tag + 1)
    if algo == "ring":
        return _allgather_ring(comm, obj, tag)
    raise ValueError(f"unknown allgather algorithm {algo!r}")


def _allgather_ring(comm, obj: Any, tag: int) -> list:
    size, rank = comm.size, comm.rank
    out: list[Any] = [None] * size
    out[rank] = obj
    right = (rank + 1) % size
    left = (rank - 1) % size
    # Each step pre-posts the inbound receive before sending, so the
    # neighbour's envelope lands on a posted receive and the completion
    # wakes this rank exactly once.
    if comm._serialization_fastpath:
        # Relay-without-reencode: each hop decodes the inbound piece for
        # its own result but forwards the received blob verbatim.
        piece_blob = comm._coll_encode((rank, obj))
        fresh = True
        for _ in range(size - 1):
            posted = comm._coll_post(left, tag)
            comm._coll_send_blob(right, tag, piece_blob, "allgather", reused=not fresh)
            fresh = False
            piece_blob = comm._coll_complete(posted, left, "allgather").payload
            piece_src, piece = piece_blob.decode()
            out[piece_src] = piece
        return out
    # At step s we forward the piece originating from rank (rank - s).
    piece_src = rank
    piece = obj
    for _ in range(size - 1):
        posted = comm._coll_post(left, tag)
        comm._coll_send(right, tag, (piece_src, piece), "allgather")
        piece_src, piece = comm._coll_complete(posted, left, "allgather").payload.decode()
        out[piece_src] = piece
    return out


# ---------------------------------------------------------------------------
# alltoall
# ---------------------------------------------------------------------------


def alltoall(comm, objs: Sequence[Any], tag: int) -> list:
    """Personalised exchange: rank *i* receives ``objs[i]`` from every rank.

    Eager sends make the send-all-then-receive-all schedule deadlock-free.
    """
    if len(objs) != comm.size:
        raise CollectiveMismatchError(
            f"alltoall needs exactly {comm.size} items, got {len(objs)}"
        )
    if comm.size == 1:
        return [objs[0]]
    out: list[Any] = [None] * comm.size
    out[comm.rank] = objs[comm.rank]
    # Pre-post every inbound receive, then send: arriving envelopes match
    # posted receives directly instead of queueing as pending, and the
    # completion wait below parks at most once per missing peer.
    posted = {
        src: comm._coll_post(src, tag) for src in range(comm.size) if src != comm.rank
    }
    for dest in range(comm.size):
        if dest != comm.rank:
            comm._coll_send(dest, tag, objs[dest], "alltoall")
    for src, pr in posted.items():
        out[src] = comm._coll_complete(pr, src, "alltoall").payload.decode()
    return out


# ---------------------------------------------------------------------------
# reduce / allreduce / scan
# ---------------------------------------------------------------------------


def reduce(comm, obj: Any, op: Op, root: int, tag: int) -> Any:
    """Reduce contributions in rank order to *root* (None elsewhere)."""
    if comm.size == 1:
        return obj
    algo = comm._world.config.reduce_algorithm
    # Binomial combination reorders only across aligned contiguous blocks,
    # which is safe for associative operators; strict rank order for
    # non-commutative user operators additionally requires root rotation to
    # be avoided, so fall back to the linear algorithm for those.
    if algo == "linear" or not op.commutative:
        return _reduce_linear(comm, obj, op, root, tag)
    if algo == "binomial":
        return _reduce_binomial(comm, obj, op, root, tag)
    raise ValueError(f"unknown reduce algorithm {algo!r}")


def _reduce_linear(comm, obj: Any, op: Op, root: int, tag: int) -> Any:
    gathered = gather(comm, obj, root, tag)
    if comm.rank != root:
        return None
    assert gathered is not None
    return op.reduce(gathered)


def _reduce_binomial(comm, obj: Any, op: Op, root: int, tag: int) -> Any:
    size, rank = comm.size, comm.rank
    relative = (rank - root) % size
    acc = obj
    mask = 1
    while mask < size:
        if relative & mask:
            dst = (rank - mask) % size
            comm._coll_send(dst, tag, acc, "reduce")
            return None
        src_rel = relative | mask
        if src_rel < size:
            src = (src_rel + root) % size
            partial = comm._coll_recv(src, tag, "reduce")
            # acc covers relative block [relative, relative+mask); partial
            # covers the adjacent higher block — combine in that order.
            acc = op(acc, partial)
        mask <<= 1
    return acc


def allreduce(comm, obj: Any, op: Op, tag: int) -> Any:
    """Reduce contributions and deliver the result to every rank."""
    if comm.size == 1:
        return obj
    algo = comm._world.config.allreduce_algorithm
    if algo == "reduce_bcast" or not op.commutative:
        result = reduce(comm, obj, op, 0, tag)
        return bcast(comm, result, 0, tag + 1)
    if algo == "recursive_doubling":
        return _allreduce_recursive_doubling(comm, obj, op, tag)
    raise ValueError(f"unknown allreduce algorithm {algo!r}")


def _allreduce_recursive_doubling(comm, obj: Any, op: Op, tag: int) -> Any:
    size, rank = comm.size, comm.rank
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    acc = obj
    # Fold the surplus ranks into their even neighbours so a power-of-two
    # set remains (MPICH pre-phase).
    if rank < 2 * rem:
        if rank % 2 == 0:
            comm._coll_send(rank + 1, tag, acc, "allreduce")
            newrank = -1
        else:
            partial = comm._coll_recv(rank - 1, tag, "allreduce")
            acc = op(partial, acc)  # lower rank's contribution on the left
            newrank = rank // 2
    else:
        newrank = rank - rem
    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = partner_new * 2 + 1 if partner_new < rem else partner_new + rem
            # Pairwise exchange: pre-post the inbound half before sending.
            posted = comm._coll_post(partner, tag)
            comm._coll_send(partner, tag, acc, "allreduce")
            other = comm._coll_complete(posted, partner, "allreduce").payload.decode()
            acc = op(acc, other) if partner_new > newrank else op(other, acc)
            mask <<= 1
    # Post-phase: hand results back to the folded-out even ranks.
    if rank < 2 * rem:
        if rank % 2 == 1:
            comm._coll_send(rank - 1, tag, acc, "allreduce")
        else:
            acc = comm._coll_recv(rank + 1, tag, "allreduce")
    return acc


def scan(comm, obj: Any, op: Op, tag: int) -> Any:
    """Inclusive prefix reduction: rank *r* gets the fold of ranks 0..r."""
    if comm.size == 1:
        return obj
    acc = obj
    if comm.rank > 0:
        partial = comm._coll_recv(comm.rank - 1, tag, "scan")
        acc = op(partial, acc)
    if comm.rank < comm.size - 1:
        comm._coll_send(comm.rank + 1, tag, acc, "scan")
    return acc


def exscan(comm, obj: Any, op: Op, tag: int) -> Any:
    """Exclusive prefix reduction: rank *r* gets the fold of ranks 0..r-1
    (``None`` on rank 0, matching MPI's undefined value there)."""
    if comm.rank == 0:
        if comm.size > 1:
            comm._coll_send(1, tag, obj, "exscan")
        return None
    below = comm._coll_recv(comm.rank - 1, tag, "exscan")
    if comm.rank < comm.size - 1:
        comm._coll_send(comm.rank + 1, tag, op(below, obj), "exscan")
    return below


def reduce_scatter(comm, objs: Sequence[Any], op: Op, tag: int) -> Any:
    """Reduce per-slot across ranks, then deliver slot *r* to rank *r*.

    Each rank contributes a sequence of ``comm.size`` items.
    """
    if len(objs) != comm.size:
        raise CollectiveMismatchError(
            f"reduce_scatter needs exactly {comm.size} items, got {len(objs)}"
        )
    if comm.size == 1:
        return objs[0]
    gathered = gather(comm, list(objs), 0, tag)
    slots = None
    if comm.rank == 0:
        assert gathered is not None
        slots = [op.reduce([contrib[slot] for contrib in gathered]) for slot in range(comm.size)]
    return scatter(comm, slots, 0, tag + 1)


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------


def barrier(comm, tag: int) -> None:
    """Block until every rank of *comm* has entered the barrier."""
    if comm.size == 1:
        return
    algo = comm._world.config.barrier_algorithm
    if algo == "linear":
        gather(comm, None, 0, tag)
        bcast(comm, None, 0, tag + 1)
        return
    if algo == "dissemination":
        size, rank = comm.size, comm.rank
        step = 1
        while step < size:
            # Pre-post the inbound notification before sending ours, so
            # each round's rendezvous costs at most one park.
            src = (rank - step) % size
            posted = comm._coll_post(src, tag)
            comm._coll_send((rank + step) % size, tag, None, "barrier")
            comm._coll_complete(posted, src, "barrier")
            step <<= 1
        return
    raise ValueError(f"unknown barrier algorithm {algo!r}")
