"""Deterministic fault injection for the simulated MPI substrate.

MPH's motivating platforms are machines where "a single processor
failure would bring down the entire job"; to test the recovery layer
that prevents exactly that, this module injects the failures on demand.
A :class:`FaultSchedule` is a seeded, replayable list of fault events:

* **rank crash** — a chosen rank dies fail-stop at its N-th communicator
  operation or after a wall-clock delay (raises :class:`SimulatedCrash`,
  which the executor converts into ULFM-style rank death rather than a
  world abort);
* **message drop / delay / duplication / corruption** — applied to the
  N-th delivery into a chosen destination mailbox;
* **slow rank** — deterministic per-operation jitter, for exercising
  timeout and watchdog paths without nondeterminism.

The schedule is armed through
:attr:`repro.mpi.world.WorldConfig.fault_schedule`; when the field is
``None`` (the default) the substrate's only cost is one ``is None``
branch per operation and per delivery — measured by
``benchmarks/bench_faults.py``.  Schedules serialize (:meth:`to_spec` /
:meth:`from_spec`) so a failing seed can be replayed exactly, and
:meth:`shrink` yields one-event-removed variants for delta-debugging a
failing schedule down to its minimal trigger.

Determinism: every random quantity (jitter, corruption bytes) is derived
from ``(seed, site, counter)``, never from shared RNG state, so thread
scheduling cannot change what a schedule does.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.mailbox import Envelope


class SimulatedCrash(ReproError):
    """The fail-stop death of one simulated rank (injected).

    Raised inside the dying rank — by a :class:`FaultSchedule` crash
    event, or directly by test code that wants to kill a rank.  The
    executor treats it specially: the rank is marked *failed* (ULFM
    semantics, survivors keep running and get
    :class:`~repro.errors.ProcessFailedError` from operations that
    involve the dead rank) instead of aborting the whole world.
    """


#: Message-fault kinds applied at delivery time.
_MSG_KINDS = ("drop", "delay", "duplicate", "corrupt")


def site_rng(*key) -> random.Random:
    """An RNG seeded stably from *key* (CRC32 of its repr — ``hash()``
    is per-process randomized, which would break replay).  Shared with
    :mod:`repro.mpi.sched`, which derives every match-order decision the
    same way: a pure function of ``(seed, site, counter)``, never shared
    RNG state, so thread scheduling cannot change what a seed does."""
    return random.Random(zlib.crc32(repr(key).encode()))


#: Backwards-compatible private alias (pre-PR-4 name).
_site_rng = site_rng


class FaultSchedule:
    """A seeded, replayable schedule of injected faults.

    Build one with the fluent event methods, then hand it to the world::

        schedule = FaultSchedule(seed=7).crash_rank(2, at_op=40)
        config = WorldConfig(fault_schedule=schedule)

    Events
    ------
    ``crash_rank(rank, at_op=N)`` / ``crash_rank(rank, after_seconds=s)``
        Rank dies at its N-th communicator operation (deterministic) or
        once *s* seconds have elapsed since the schedule's first
        observed operation (time-based).
    ``drop_message(dest, index)`` / ``delay_message(dest, index, seconds)``
    / ``duplicate_message(dest, index)`` / ``corrupt_message(dest, index)``
        Applied to the *index*-th (0-based) envelope delivered into world
        rank *dest*'s mailbox.
    ``slow_rank(rank, max_jitter)``
        Every operation of *rank* sleeps a deterministic pseudo-random
        amount in ``[0, max_jitter)``.

    A schedule instance carries per-run counters; reuse it across worlds
    only after :meth:`reset` (or replay via ``from_spec(to_spec())``).
    """

    def __init__(self, seed: int = 0):
        #: Seed deriving all pseudo-random decisions (jitter, corruption).
        self.seed = int(seed)
        self._crashes: list[dict] = []
        self._msg_faults: dict[tuple[int, int], dict] = {}
        self._slow: dict[int, float] = {}
        self._lock = threading.Lock()
        self.reset()

    # -- event builders (fluent) -------------------------------------------

    def crash_rank(
        self,
        rank: int,
        *,
        at_op: Optional[int] = None,
        after_seconds: Optional[float] = None,
    ) -> "FaultSchedule":
        """Schedule the fail-stop death of world rank *rank*."""
        if (at_op is None) == (after_seconds is None):
            raise ValueError("crash_rank needs exactly one of at_op / after_seconds")
        if at_op is not None and at_op < 1:
            raise ValueError("at_op counts operations from 1")
        self._crashes.append(
            {"rank": int(rank), "at_op": at_op, "after_seconds": after_seconds}
        )
        return self

    def drop_message(self, dest: int, index: int) -> "FaultSchedule":
        """Silently drop the *index*-th delivery into rank *dest*."""
        return self._add_msg_fault("drop", dest, index)

    def delay_message(self, dest: int, index: int, seconds: float) -> "FaultSchedule":
        """Delay the *index*-th delivery into rank *dest* by *seconds*."""
        return self._add_msg_fault("delay", dest, index, seconds=float(seconds))

    def duplicate_message(self, dest: int, index: int) -> "FaultSchedule":
        """Deliver the *index*-th envelope into rank *dest* twice."""
        return self._add_msg_fault("duplicate", dest, index)

    def corrupt_message(self, dest: int, index: int) -> "FaultSchedule":
        """Flip payload bytes of the *index*-th delivery into rank *dest*."""
        return self._add_msg_fault("corrupt", dest, index)

    def slow_rank(self, rank: int, max_jitter: float) -> "FaultSchedule":
        """Add deterministic per-operation jitter in ``[0, max_jitter)``
        to every communicator operation of *rank*."""
        if max_jitter < 0:
            raise ValueError("max_jitter must be >= 0")
        self._slow[int(rank)] = float(max_jitter)
        return self

    def _add_msg_fault(self, kind: str, dest: int, index: int, **extra) -> "FaultSchedule":
        if kind not in _MSG_KINDS:
            raise ValueError(f"unknown message-fault kind {kind!r}")
        if index < 0:
            raise ValueError("message index counts deliveries from 0")
        key = (int(dest), int(index))
        if key in self._msg_faults:
            raise ValueError(f"delivery {index} into rank {dest} already has a fault")
        self._msg_faults[key] = {"kind": kind, "dest": key[0], "index": key[1], **extra}
        return self

    # -- run state ----------------------------------------------------------

    def reset(self) -> None:
        """Clear per-run counters so the same schedule replays on a fresh
        world exactly as it did on the last one."""
        with self._lock:
            self._op_count: dict[int, int] = {}
            self._deliver_count: dict[int, int] = {}
            self._crashed: set[int] = set()
            self._fired: list[str] = []
            self._t0: Optional[float] = None

    def fired(self) -> list[str]:
        """Human-readable log of the fault events that actually triggered
        (diagnostics; order is trigger order)."""
        with self._lock:
            return list(self._fired)

    # -- hooks (called from the substrate's hot paths) ----------------------

    def on_op(self, rank: int) -> None:
        """Per-operation hook, called by ``Comm._check`` on every
        communicator operation of *rank*.  Applies slow-rank jitter and
        raises :class:`SimulatedCrash` when a crash event is due."""
        with self._lock:
            if self._t0 is None:
                self._t0 = time.monotonic()
            ops = self._op_count.get(rank, 0) + 1
            self._op_count[rank] = ops
            due: Optional[dict] = None
            if rank not in self._crashed:
                for crash in self._crashes:
                    if crash["rank"] != rank:
                        continue
                    at_op = crash["at_op"]
                    if at_op is not None and ops >= at_op:
                        due = crash
                        break
                    after = crash["after_seconds"]
                    if after is not None and time.monotonic() - self._t0 >= after:
                        due = crash
                        break
            if due is not None:
                self._crashed.add(rank)
                self._fired.append(f"crash rank {rank} at op {ops}")
        jitter = self._slow.get(rank)
        if jitter:
            # Derived from (seed, rank, op) so thread interleaving cannot
            # change the injected delay.
            time.sleep(_site_rng(self.seed, "jitter", rank, ops).uniform(0.0, jitter))
        if due is not None:
            raise SimulatedCrash(f"injected crash of rank {rank} at op {ops}")

    def on_deliver(self, dest: int, env: "Envelope") -> list["Envelope"]:
        """Per-delivery hook, called by ``Mailbox.deliver`` on the
        sender's thread.  Returns the envelopes to actually deliver:
        ``[]`` (dropped), ``[env]`` (unchanged / delayed / corrupted), or
        ``[env, dup]`` (duplicated)."""
        with self._lock:
            index = self._deliver_count.get(dest, 0)
            self._deliver_count[dest] = index + 1
            fault = self._msg_faults.get((dest, index))
            if fault is not None:
                self._fired.append(f"{fault['kind']} delivery {index} into rank {dest}")
        if fault is None:
            return [env]
        kind = fault["kind"]
        if kind == "drop":
            return []
        if kind == "delay":
            time.sleep(fault["seconds"])
            return [env]
        if kind == "duplicate":
            return [env, _duplicate_envelope(env)]
        return [_corrupt_envelope(env, self.seed, dest, index)]

    # -- replay / minimization ---------------------------------------------

    def to_spec(self) -> dict:
        """A plain-data description of the schedule, sufficient to rebuild
        it exactly with :meth:`from_spec` (reproduce a failing seed)."""
        return {
            "seed": self.seed,
            "crashes": [dict(c) for c in self._crashes],
            "messages": [dict(m) for m in self._msg_faults.values()],
            "slow": dict(self._slow),
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultSchedule":
        """Rebuild a schedule serialized by :meth:`to_spec`."""
        fs = cls(seed=spec.get("seed", 0))
        for crash in spec.get("crashes", ()):
            fs.crash_rank(
                crash["rank"],
                at_op=crash.get("at_op"),
                after_seconds=crash.get("after_seconds"),
            )
        for msg in spec.get("messages", ()):
            extra = {k: v for k, v in msg.items() if k not in ("kind", "dest", "index")}
            fs._add_msg_fault(msg["kind"], msg["dest"], msg["index"], **extra)
        for rank, jitter in spec.get("slow", {}).items():
            fs.slow_rank(int(rank), jitter)
        return fs

    def shrink(self) -> Iterator["FaultSchedule"]:
        """Yield every one-event-removed variant of this schedule (fresh
        counters), for delta-debugging a failing schedule down to the
        minimal set of faults that still triggers the bug."""
        spec = self.to_spec()
        for i in range(len(spec["crashes"])):
            smaller = dict(spec, crashes=spec["crashes"][:i] + spec["crashes"][i + 1:])
            yield self.from_spec(smaller)
        for i in range(len(spec["messages"])):
            smaller = dict(spec, messages=spec["messages"][:i] + spec["messages"][i + 1:])
            yield self.from_spec(smaller)
        for rank in spec["slow"]:
            smaller = dict(spec, slow={r: j for r, j in spec["slow"].items() if r != rank})
            yield self.from_spec(smaller)

    def __repr__(self) -> str:
        return (
            f"FaultSchedule(seed={self.seed}, crashes={len(self._crashes)}, "
            f"messages={len(self._msg_faults)}, slow={sorted(self._slow)})"
        )


def random_schedule(
    seed: int,
    nprocs: int,
    *,
    crashes: int = 1,
    max_op: int = 60,
    spare=(),
) -> FaultSchedule:
    """A seeded random crash schedule for chaos testing: *crashes* distinct
    ranks (never those in *spare*) die at an operation count in
    ``[1, max_op]``.  Same seed → same schedule."""
    rng = _site_rng(seed, "chaos", nprocs)
    candidates = [r for r in range(nprocs) if r not in set(spare)]
    if crashes > len(candidates):
        raise ValueError(f"cannot crash {crashes} of {len(candidates)} eligible ranks")
    fs = FaultSchedule(seed=seed)
    for rank in rng.sample(candidates, crashes):
        fs.crash_rank(rank, at_op=rng.randint(1, max_op))
    return fs


def _duplicate_envelope(env: "Envelope") -> "Envelope":
    """A second delivery of *env*: same routing and payload, but no
    ``sync_event`` (a synchronous sender must not be released twice)."""
    from repro.mpi.mailbox import Envelope

    return Envelope(
        env.context,
        env.source,
        env.tag,
        env.payload,
        env.kind,
        env.count,
        sync_event=None,
        op=env.op,
        copy_avoided=env.copy_avoided,
    )


def _corrupt_envelope(env: "Envelope", seed: int, dest: int, index: int) -> "Envelope":
    """Deterministically mangle *env*'s payload (bit flips for pickled
    blobs, value garbling for array payloads) without touching the
    sender's copy."""
    from repro.mpi.mailbox import Envelope
    from repro.mpi.serialization import Blob

    rng = _site_rng(seed, "corrupt", dest, index)
    payload = env.payload
    if isinstance(payload, Blob):
        if payload.kind == "pickle":
            data = bytearray(payload.data)
            for _ in range(max(1, len(data) // 64)):
                data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
            corrupted = Blob("pickle", bytes(data), len(data))
        else:
            arr = np.array(payload.data, copy=True)
            flat = arr.reshape(-1)
            if flat.size:
                flat[rng.randrange(flat.size)] = flat[rng.randrange(flat.size)] * -3 + 1
            arr.setflags(write=False)
            corrupted = Blob("array", arr, payload.nbytes)
    else:
        arr = np.array(payload, copy=True)
        flat = arr.reshape(-1)
        if flat.size:
            flat[rng.randrange(flat.size)] = flat[rng.randrange(flat.size)] * -3 + 1
        corrupted = arr
    return Envelope(
        env.context,
        env.source,
        env.tag,
        corrupted,
        env.kind,
        env.count,
        sync_event=env.sync_event,
        op=env.op,
        copy_avoided=0,
    )
